"""Setup shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The execution environment has no `wheel` package, so PEP 660 editable installs
fail; this shim lets `setup.py develop` handle them instead.  All metadata
lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
