"""Single-agent RL recommenders: PGPR, ADAC, UCPR, ReMR, INFER and CogER.

These baselines share one technical skeleton — the PGPR recipe of training a
single path-walking agent with REINFORCE and recommending via beam search —
and differ in the specific ingredient each paper added:

* **PGPR**  (Xian et al., 2019)   — soft reward from the embedding score + degree pruning.
* **ADAC**  (Zhao et al., 2020)   — demonstration paths (BFS user→item) imitated
  with a cross-entropy warm-up before REINFORCE.
* **UCPR**  (Tai et al., 2021)    — a user-demand memory vector (mean of the
  purchased items' embeddings) appended to the state.
* **ReMR**  (Wang et al., 2022)   — multi-level reasoning: extra reward when the
  walk stays inside the abstract (category-level) region of the user's interests.
* **INFER** (Zhang et al., 2022)  — GNN-smoothed item representations feed the
  policy instead of raw TransE vectors.
* **CogER** (Bing et al., 2023)   — a fast "System 1" heuristic pre-filters the
  action space before the RL "System 2" scores it.

All of them are capped at 3-hop paths by default, which is the design decision
the path-length study (Fig. 5) probes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import nn
from ..data.schema import InteractionDataset, TrainTestSplit
from ..embeddings import TransEConfig, train_transe
from ..kg import build_knowledge_graph
from ..kg.entities import EntityType
from ..kg.pruning import Action, degree_prune, ensure_self_loop
from ..kg.relations import Relation, relation_index
from ..nn import Tensor
from ..nn import functional as F
from ..rl.reinforce import MovingBaseline, ReinforceConfig, apply_update, policy_gradient_loss
from ..rl.trajectory import RecommendationPath
from .base import BaselineRecommender


@dataclass
class SingleAgentConfig:
    """Shared hyper-parameters of the single-agent RL baselines."""

    embedding_dim: int = 32
    hidden_dim: int = 64
    max_hops: int = 3
    epochs: int = 6
    learning_rate: float = 1e-3
    gamma: float = 0.95
    max_actions: int = 60
    transe_epochs: int = 10
    soft_reward_scale: float = 0.5
    beam_width: int = 20
    expansions_per_beam: int = 4
    seed: int = 0


class _SingleAgentPolicy(nn.Module):
    """MLP policy: action scores = A · W2 ReLU(W1 [user; entity; relation; extra])."""

    def __init__(self, state_dim: int, action_dim: int, hidden_dim: int,
                 rng: np.random.Generator) -> None:
        self.input_layer = nn.Linear(state_dim, hidden_dim, rng=rng)
        self.output_layer = nn.Linear(hidden_dim, action_dim, rng=rng)

    def action_logits(self, state_vector: np.ndarray, action_matrix: np.ndarray) -> Tensor:
        query = self.output_layer(F.relu(self.input_layer(Tensor(state_vector))))
        return Tensor(action_matrix) @ query


class SingleAgentRLRecommender(BaselineRecommender):
    """The shared PGPR-style skeleton; subclasses override the hook methods."""

    name = "SingleAgentRL"

    def __init__(self, config: Optional[SingleAgentConfig] = None, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.config = config or SingleAgentConfig(seed=seed)

    # ------------------------------------------------------------------ #
    # hooks overridden by the concrete baselines
    # ------------------------------------------------------------------ #
    def _extra_state_dim(self) -> int:
        """Extra state features appended by the subclass (e.g. UCPR's demand)."""
        return 0

    def _extra_state(self, user_id: int) -> np.ndarray:
        return np.zeros(0)

    def _item_representation(self, entity_id: int) -> np.ndarray:
        """Representation of an entity used in states/actions."""
        return self._entity_table[entity_id]

    def _prune_actions(self, user_id: int, entity_id: int) -> List[Action]:
        """Candidate actions at ``entity_id`` (subclasses may pre-filter)."""
        actions = degree_prune(self._graph, entity_id, self.config.max_actions, rng=self._rng)
        return ensure_self_loop(actions, entity_id)

    def _step_reward(self, user_id: int, entity_id: int) -> float:
        """Reward shaping applied at intermediate steps (default: none)."""
        # repro: ignore[NAN001] no shaping means a real zero reward, not a missing measurement
        return 0.0

    def _terminal_reward(self, user_id: int, entity_id: int, positives: Set[int]) -> float:
        """Terminal reward: binary hit plus the PGPR soft reward for items."""
        if entity_id in positives:
            return 1.0
        if self._graph.entities.is_item(entity_id) and self.config.soft_reward_scale > 0:
            user_entity = self._builder.user_to_entity(user_id)
            score = self._transe.score(user_entity, Relation.PURCHASE, entity_id)
            return self.config.soft_reward_scale * float(1.0 / (1.0 + np.exp(-score)))
        return 0.0  # repro: ignore[NAN001] a miss earns a real zero reward

    def _pretrain(self) -> None:
        """Optional warm-up before REINFORCE (used by ADAC)."""

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        config = self.config
        self._rng = np.random.default_rng(config.seed)
        self._graph, self._category_graph, self._builder = build_knowledge_graph(
            dataset, split.train)
        self._transe, _ = train_transe(
            self._graph, TransEConfig(embedding_dim=config.embedding_dim,
                                      epochs=config.transe_epochs, seed=config.seed))
        self._entity_table = np.array(self._transe.entity_embeddings, copy=True)
        self._relation_table = np.array(self._transe.relation_embeddings, copy=True)
        self._prepare_representations()

        state_dim = 3 * config.embedding_dim + self._extra_state_dim()
        action_dim = 2 * config.embedding_dim
        self._policy = _SingleAgentPolicy(state_dim, action_dim, config.hidden_dim,
                                          np.random.default_rng(config.seed + 1))
        self._optimiser = nn.Adam(self._policy.parameters(), lr=config.learning_rate)
        self._reinforce = ReinforceConfig(gamma=config.gamma)
        self._baseline = MovingBaseline()

        self._pretrain()
        self._train_reinforce()

    def _prepare_representations(self) -> None:
        """Hook for subclasses that post-process the entity table (INFER)."""

    def _state_vector(self, user_id: int, entity_id: int, relation: Relation) -> np.ndarray:
        user_entity = self._builder.user_to_entity(user_id)
        return np.concatenate([
            self._entity_table[user_entity],
            self._item_representation(entity_id),
            self._relation_table[relation_index(relation)],
            self._extra_state(user_id),
        ])

    def _action_matrix(self, actions: Sequence[Action]) -> np.ndarray:
        return np.stack([
            np.concatenate([self._relation_table[relation_index(relation)],
                            self._item_representation(target)])
            for relation, target in actions
        ])

    def _train_reinforce(self) -> None:
        config = self.config
        users = [user for user, items in self.train_items.items() if items]
        for _ in range(config.epochs):
            order = self._rng.permutation(len(users))
            for index in order:
                user_id = users[index]
                positives = {self._builder.item_to_entity(item)
                             for item in self.train_items[user_id]}
                self._run_episode(user_id, positives)

    def _run_episode(self, user_id: int, positives: Set[int]) -> None:
        config = self.config
        entity = self._builder.user_to_entity(user_id)
        relation = Relation.SELF_LOOP
        log_probs: List[Tensor] = []
        rewards: List[float] = []
        for _ in range(config.max_hops):
            actions = self._prune_actions(user_id, entity)
            if not actions:
                break
            logits = self._policy.action_logits(self._state_vector(user_id, entity, relation),
                                                self._action_matrix(actions))
            log_distribution = F.log_softmax(logits, axis=-1)
            probabilities = np.exp(log_distribution.data)
            probabilities /= probabilities.sum()
            chosen = int(self._rng.choice(len(actions), p=probabilities))
            log_probs.append(log_distribution[chosen])
            relation, entity = actions[chosen]
            rewards.append(self._step_reward(user_id, entity))
        if rewards:
            rewards[-1] += self._terminal_reward(user_id, entity, positives)
        loss = policy_gradient_loss(log_probs, rewards, self._reinforce, self._baseline)
        apply_update(loss, self._policy.parameters(), self._optimiser, self._reinforce)

    # ------------------------------------------------------------------ #
    # inference: beam search + item scoring
    # ------------------------------------------------------------------ #
    def _beam_search(self, user_id: int) -> List[RecommendationPath]:
        config = self.config
        user_entity = self._builder.user_to_entity(user_id)
        beams: List[Tuple[float, int, Relation, Tuple[Tuple[Relation, int], ...]]] = [
            (0.0, user_entity, Relation.SELF_LOOP, ())
        ]
        collected: List[RecommendationPath] = []
        for _ in range(config.max_hops):
            expansions: List[Tuple[float, int, Relation, Tuple[Tuple[Relation, int], ...]]] = []
            for log_prob, entity, relation, hops in beams:
                actions = self._prune_actions(user_id, entity)
                if not actions:
                    continue
                logits = self._policy.action_logits(
                    self._state_vector(user_id, entity, relation),
                    self._action_matrix(actions))
                log_distribution = F.log_softmax(logits, axis=-1).data
                order = np.argsort(-log_distribution)[: config.expansions_per_beam]
                for index in order:
                    next_relation, next_entity = actions[index]
                    expansions.append((log_prob + float(log_distribution[index]), next_entity,
                                       next_relation, hops + ((next_relation, next_entity),)))
            if not expansions:
                break
            expansions.sort(key=lambda item: item[0], reverse=True)
            beams = expansions[: config.beam_width]
            for log_prob, entity, _, hops in beams:
                if len(hops) >= 2 and self._graph.entities.is_item(entity):
                    collected.append(RecommendationPath(user_entity=user_entity,
                                                        item_entity=entity, hops=hops,
                                                        score=log_prob))
        return collected

    def _score_items(self, user_id: int) -> np.ndarray:
        scores = np.full(self.dataset.num_items, -np.inf)
        for path in self._beam_search(user_id):
            item = self._builder.entity_to_item(path.item_entity)
            if item is None:
                continue
            scores[item] = max(scores[item], path.score)
        # Items never reached by any path fall back to the embedding score so the
        # ranking is total (they land after all path-reached items).
        unreached = ~np.isfinite(scores)
        if np.any(unreached):
            user_entity = self._builder.user_to_entity(user_id)
            item_entities = np.array([self._builder.item_to_entity(item)
                                      for item in range(self.dataset.num_items)])
            fallback = self._transe.score_tails(user_entity, Relation.PURCHASE, item_entities)
            scores[unreached] = -1e6 + fallback[unreached]
        return scores

    def find_paths(self, user_id: int, num_paths: int) -> List[RecommendationPath]:
        """Raw path enumeration for the efficiency study."""
        paths = self._beam_search(user_id)
        paths.sort(key=lambda path: path.score, reverse=True)
        return paths[:num_paths]


# --------------------------------------------------------------------------- #
# concrete baselines
# --------------------------------------------------------------------------- #
class PGPRRecommender(SingleAgentRLRecommender):
    """Policy-Guided Path Reasoning (the pioneering RL-over-KG recommender)."""

    name = "PGPR"


class ADACRecommender(SingleAgentRLRecommender):
    """ADAC: demonstration-guided warm-up followed by REINFORCE fine-tuning."""

    name = "ADAC"

    def __init__(self, config: Optional[SingleAgentConfig] = None, seed: int = 0,
                 demonstration_epochs: int = 2, max_demonstrations_per_user: int = 3) -> None:
        super().__init__(config=config, seed=seed)
        self.demonstration_epochs = demonstration_epochs
        self.max_demonstrations_per_user = max_demonstrations_per_user

    def _pretrain(self) -> None:
        demonstrations = self._mine_demonstrations()
        for _ in range(self.demonstration_epochs):
            self._rng.shuffle(demonstrations)
            for user_id, path in demonstrations:
                self._imitate(user_id, path)

    def _mine_demonstrations(self) -> List[Tuple[int, List[Action]]]:
        """Shortest user→purchased-item paths found by breadth-first search."""
        demonstrations: List[Tuple[int, List[Action]]] = []
        for user_id, items in self.train_items.items():
            user_entity = self._builder.user_to_entity(user_id)
            targets = {self._builder.item_to_entity(item) for item in items}
            found = 0
            queue = deque([(user_entity, [])])
            visited = {user_entity}
            while queue and found < self.max_demonstrations_per_user:
                entity, path = queue.popleft()
                if len(path) >= self.config.max_hops:
                    continue
                for relation, tail in self._graph.outgoing(entity):
                    if tail in visited:
                        continue
                    new_path = path + [(relation, tail)]
                    if tail in targets:
                        # Record multi-hop demonstrations; keep targets out of the
                        # visited set so longer alternative routes can still reach
                        # them (the 1-hop purchase edge itself is not a useful demo).
                        if len(new_path) >= 2:
                            demonstrations.append((user_id, new_path))
                            found += 1
                            if found >= self.max_demonstrations_per_user:
                                break
                        continue
                    visited.add(tail)
                    queue.append((tail, new_path))
        return demonstrations

    def _imitate(self, user_id: int, demonstration: List[Action]) -> None:
        """One cross-entropy step pushing the policy towards the demonstration."""
        entity = self._builder.user_to_entity(user_id)
        relation = Relation.SELF_LOOP
        loss: Optional[Tensor] = None
        for target_relation, target_entity in demonstration:
            actions = self._prune_actions(user_id, entity)
            try:
                target_index = actions.index((target_relation, target_entity))
            except ValueError:
                actions = actions + [(target_relation, target_entity)]
                target_index = len(actions) - 1
            logits = self._policy.action_logits(self._state_vector(user_id, entity, relation),
                                                self._action_matrix(actions))
            step_loss = F.cross_entropy_with_logits(logits, target_index)
            loss = step_loss if loss is None else loss + step_loss
            relation, entity = target_relation, target_entity
        if loss is not None:
            self._optimiser.zero_grad()
            loss.backward()
            nn.clip_grad_norm(self._policy.parameters(), 5.0)
            self._optimiser.step()


class UCPRRecommender(SingleAgentRLRecommender):
    """UCPR: user-centric path reasoning with a demand memory in the state."""

    name = "UCPR"

    def _extra_state_dim(self) -> int:
        return self.config.embedding_dim

    def _extra_state(self, user_id: int) -> np.ndarray:
        demand = self._demand_vectors.get(user_id)
        if demand is None:
            return np.zeros(self.config.embedding_dim)
        return demand

    def _prepare_representations(self) -> None:
        self._demand_vectors: Dict[int, np.ndarray] = {}
        for user_id, items in self.train_items.items():
            if not items:
                continue
            vectors = [self._entity_table[self._builder.item_to_entity(item)] for item in items]
            self._demand_vectors[user_id] = np.mean(vectors, axis=0)

    def _step_reward(self, user_id: int, entity_id: int) -> float:
        """Small shaping towards entities aligned with the user's demand vector."""
        demand = self._demand_vectors.get(user_id)
        if demand is None or not self._graph.entities.is_item(entity_id):
            return 0.0  # repro: ignore[NAN001] non-items earn a real zero shaping reward
        vector = self._entity_table[entity_id]
        denominator = (np.linalg.norm(demand) * np.linalg.norm(vector)) or 1.0
        return 0.1 * float(demand @ vector / denominator)


class ReMRRecommender(SingleAgentRLRecommender):
    """ReMR: multi-level reasoning — category-level reward shaping on top of PGPR."""

    name = "ReMR"

    def _prepare_representations(self) -> None:
        self._user_categories: Dict[int, Set[int]] = {}
        for user_id, items in self.train_items.items():
            categories = set()
            for item in items:
                category = self._graph.category_of(self._builder.item_to_entity(item))
                if category is not None:
                    categories.add(category)
            self._user_categories[user_id] = categories

    def _step_reward(self, user_id: int, entity_id: int) -> float:
        if not self._graph.entities.is_item(entity_id):
            return 0.0  # repro: ignore[NAN001] non-items earn a real zero shaping reward
        category = self._graph.category_of(entity_id)
        if category is None:
            return 0.0  # repro: ignore[NAN001] uncategorised items earn a real zero reward
        return 0.1 if category in self._user_categories.get(user_id, set()) else 0.0


class INFERRecommender(SingleAgentRLRecommender):
    """INFER: neighbour-smoothed (GNN-style) item representations feed the policy."""

    name = "INFER"

    def __init__(self, config: Optional[SingleAgentConfig] = None, seed: int = 0,
                 smoothing_hops: int = 1, smoothing_weight: float = 0.5) -> None:
        super().__init__(config=config, seed=seed)
        self.smoothing_hops = smoothing_hops
        self.smoothing_weight = smoothing_weight

    def _prepare_representations(self) -> None:
        table = self._entity_table
        for _ in range(self.smoothing_hops):
            smoothed = np.array(table, copy=True)
            for item in self._graph.entities.ids_of_type(EntityType.ITEM):
                neighbors = [tail for _, tail in self._graph.outgoing(item)
                             if not self._graph.entities.is_user(tail)]
                if not neighbors:
                    continue
                neighbour_mean = np.mean([table[n] for n in neighbors], axis=0)
                smoothed[item] = ((1.0 - self.smoothing_weight) * table[item]
                                  + self.smoothing_weight * neighbour_mean)
            table = smoothed
        self._entity_table = table


class CogERRecommender(SingleAgentRLRecommender):
    """CogER: a fast heuristic "System 1" filter narrows actions before RL scoring."""

    name = "CogER"

    def __init__(self, config: Optional[SingleAgentConfig] = None, seed: int = 0,
                 system1_keep: int = 12) -> None:
        super().__init__(config=config, seed=seed)
        self.system1_keep = system1_keep

    def _prune_actions(self, user_id: int, entity_id: int) -> List[Action]:
        actions = degree_prune(self._graph, entity_id, self.config.max_actions, rng=self._rng)
        if len(actions) > self.system1_keep:
            user_entity = self._builder.user_to_entity(user_id)
            user_vector = self._entity_table[user_entity]
            similarities = np.array([
                float(user_vector @ self._entity_table[target]) for _, target in actions
            ])
            keep = np.argsort(-similarities)[: self.system1_keep]
            actions = [actions[i] for i in keep]
        return ensure_self_loop(actions, entity_id)
