"""HeteroEmbed: heterogeneous KG embeddings with post-hoc path search (Ai et al., 2018).

HeteroEmbed learns translation-based embeddings over the heterogeneous product
graph and ranks items by the translation score ``u + r_purchase ≈ v``.  For
explanation it searches, after ranking, for a KG path connecting the user to
each recommended item — which is why its path-finding time appears in the
efficiency study (Table III) even though ranking and path-finding are separate
stages.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from ..data.schema import InteractionDataset, TrainTestSplit
from ..embeddings import TransEConfig, train_transe
from ..kg import build_knowledge_graph
from ..kg.relations import Relation
from ..rl.trajectory import RecommendationPath
from .base import BaselineRecommender


class HeteroEmbedRecommender(BaselineRecommender):
    """TransE-style ranking + breadth-first explanation path search."""

    name = "HeteroEmbed"

    def __init__(self, embedding_dim: int = 32, transe_epochs: int = 20,
                 max_path_length: int = 3, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.embedding_dim = embedding_dim
        self.transe_epochs = transe_epochs
        self.max_path_length = max_path_length

    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        graph, _, builder = build_knowledge_graph(dataset, split.train)
        self._graph = graph
        self._builder = builder
        self._transe, _ = train_transe(
            graph, TransEConfig(embedding_dim=self.embedding_dim, epochs=self.transe_epochs,
                                seed=self.seed))
        self._item_entities = np.array(
            [builder.item_to_entity(item) for item in range(dataset.num_items)], dtype=np.int64)

    def _score_items(self, user_id: int) -> np.ndarray:
        user_entity = self._builder.user_to_entity(user_id)
        return self._transe.score_tails(user_entity, Relation.PURCHASE, self._item_entities)

    # ------------------------------------------------------------------ #
    # path search (for Table III and explanation parity with RL methods)
    # ------------------------------------------------------------------ #
    def find_paths(self, user_id: int, num_paths: int) -> List[RecommendationPath]:
        """Breadth-first search for user → item paths up to ``max_path_length`` hops."""
        user_entity = self._builder.user_to_entity(user_id)
        paths: List[RecommendationPath] = []
        queue = deque([(user_entity, ())])
        visited_paths = 0
        while queue and len(paths) < num_paths:
            entity, hops = queue.popleft()
            if len(hops) >= self.max_path_length:
                continue
            for relation, tail in self._graph.outgoing(entity):
                new_hops = hops + ((relation, tail),)
                visited_paths += 1
                if self._graph.entities.is_item(tail) and len(new_hops) >= 2:
                    score = self._transe.score(user_entity, Relation.PURCHASE, tail)
                    paths.append(RecommendationPath(user_entity=user_entity, item_entity=tail,
                                                    hops=new_hops, score=score))
                    if len(paths) >= num_paths:
                        break
                if len(new_hops) < self.max_path_length:
                    queue.append((tail, new_hops))
                if visited_paths > 50 * num_paths:
                    # Safety bound: the BFS frontier of dense KGs explodes quickly.
                    return paths
        return paths
