"""Non-KG floors: popularity and item-item collaborative filtering.

These are not in the paper's tables but serve as sanity floors for tests and
for calibrating the synthetic datasets — every KG-aware method should beat
popularity, and the generator is tuned so that it does.
"""

from __future__ import annotations

import numpy as np

from ..data.schema import InteractionDataset, TrainTestSplit
from .base import BaselineRecommender


class PopularityRecommender(BaselineRecommender):
    """Rank items by their global training purchase count."""

    name = "Popularity"

    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        self._scores = self.item_popularity(dataset, split)

    def _score_items(self, user_id: int) -> np.ndarray:
        return self._scores


class ItemKNNRecommender(BaselineRecommender):
    """Item-item cosine collaborative filtering over the training matrix."""

    name = "ItemKNN"

    def __init__(self, num_neighbors: int = 20, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if num_neighbors <= 0:
            raise ValueError("num_neighbors must be positive")
        self.num_neighbors = num_neighbors

    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        matrix = self.interaction_matrix(dataset, split)
        norms = np.linalg.norm(matrix, axis=0, keepdims=True) + 1e-12
        normalised = matrix / norms
        similarity = normalised.T @ normalised
        np.fill_diagonal(similarity, 0.0)
        # Keep only the strongest neighbours per item (sparsify).
        if similarity.shape[0] > self.num_neighbors:
            threshold = np.sort(similarity, axis=1)[:, -self.num_neighbors][:, None]
            similarity = np.where(similarity >= threshold, similarity, 0.0)
        self._similarity = similarity
        self._matrix = matrix

    def _score_items(self, user_id: int) -> np.ndarray:
        return self._matrix[user_id] @ self._similarity
