"""RuleRec: rule-guided recommendation over the KG (Ma et al., 2019).

RuleRec mines relation-sequence rules ("meta-knowledge") that connect a user's
purchased items to other items — e.g. ``purchase → also_bought`` or
``purchase → produced_by → rev_produced_by`` — weighs each rule by its
confidence on the training data, and scores candidate items by the weighted
number of rule instances that reach them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..data.schema import InteractionDataset, TrainTestSplit
from ..kg import build_knowledge_graph
from ..kg.relations import Relation
from .base import BaselineRecommender

Rule = Tuple[Relation, ...]

# Item-to-item rule vocabulary (applied after the initial purchase hop).
_CANDIDATE_RULES: List[Rule] = [
    (Relation.ALSO_BOUGHT,),
    (Relation.ALSO_VIEWED,),
    (Relation.BOUGHT_TOGETHER,),
    (Relation.PRODUCED_BY, Relation.REV_PRODUCED_BY),
    (Relation.DESCRIBED_BY, Relation.REV_DESCRIBED_BY),
    (Relation.ALSO_BOUGHT, Relation.ALSO_BOUGHT),
    (Relation.ALSO_VIEWED, Relation.ALSO_BOUGHT),
    (Relation.ALSO_BOUGHT, Relation.BOUGHT_TOGETHER),
]


class RuleRecRecommender(BaselineRecommender):
    """Rule-mining recommender over item-to-item meta-paths."""

    name = "RuleRec"

    def __init__(self, max_rule_support: int = 2000, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.max_rule_support = max_rule_support
        self.rule_weights: Dict[Rule, float] = {}

    # ------------------------------------------------------------------ #
    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        graph, _, builder = build_knowledge_graph(dataset, split.train)
        self._graph = graph
        self._builder = builder

        # Confidence of each rule: among item pairs (a, b) connected by the rule
        # where `a` was purchased by some user, how often was `b` also
        # purchased by the same user?
        user_items = {user: set(items) for user, items in self.train_items.items()}
        self.rule_weights = {}
        for rule in _CANDIDATE_RULES:
            support = 0
            correct = 0
            for user_id, items in user_items.items():
                for item in items:
                    reached = self._apply_rule(builder.item_to_entity(item), rule)
                    for entity in reached:
                        target_item = builder.entity_to_item(entity)
                        if target_item is None or target_item == item:
                            continue
                        support += 1
                        if target_item in items:
                            correct += 1
                        if support >= self.max_rule_support:
                            break
                    if support >= self.max_rule_support:
                        break
                if support >= self.max_rule_support:
                    break
            self.rule_weights[rule] = correct / support if support else 0.0

    def _apply_rule(self, start_entity: int, rule: Rule) -> List[int]:
        """Entities reachable from ``start_entity`` by following ``rule`` exactly."""
        frontier = [start_entity]
        for relation in rule:
            next_frontier: List[int] = []
            for entity in frontier:
                for edge_relation, tail in self._graph.outgoing(entity):
                    if edge_relation == relation:
                        next_frontier.append(tail)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    # ------------------------------------------------------------------ #
    def _score_items(self, user_id: int) -> np.ndarray:
        scores = np.zeros(self.dataset.num_items)
        purchased = self.train_items.get(user_id, set())
        for item in purchased:
            start = self._builder.item_to_entity(item)
            for rule, weight in self.rule_weights.items():
                if weight <= 0.0:
                    continue
                for entity in self._apply_rule(start, rule):
                    target = self._builder.entity_to_item(entity)
                    if target is not None and target != item:
                        scores[target] += weight
        return scores
