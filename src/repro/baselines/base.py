"""Common interface and shared plumbing for all baseline recommenders."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Set

import numpy as np

from ..data.schema import InteractionDataset, TrainTestSplit
from ..data.splits import train_user_items


class BaselineRecommender(ABC):
    """Base class for every comparison method.

    Subclasses implement :meth:`_fit` and :meth:`_score_items`; the base class
    handles the common bookkeeping: remembering training items per user (which
    are excluded from recommendations, as in the paper's protocol) and turning
    scores into a ranked top-k list.
    """

    name = "baseline"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.dataset: Optional[InteractionDataset] = None
        self.train_items: Dict[int, Set[int]] = {}
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> "BaselineRecommender":
        """Train on the 70% split; test items are never seen here."""
        self.dataset = dataset
        self.train_items = {user: set(items)
                            for user, items in train_user_items(split).items()}
        self._fit(dataset, split)
        self._fitted = True
        return self

    def recommend_items(self, user_id: int, top_k: int = 10) -> List[int]:
        """Ranked top-k dataset item ids, excluding the user's training items."""
        if not self._fitted:
            raise RuntimeError(f"{self.name}.fit must be called before recommending")
        scores = self._score_items(user_id)
        exclude = self.train_items.get(user_id, set())
        order = np.argsort(-scores)
        ranked = [int(item) for item in order if int(item) not in exclude]
        return ranked[:top_k]

    # ------------------------------------------------------------------ #
    @abstractmethod
    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        """Model-specific training."""

    @abstractmethod
    def _score_items(self, user_id: int) -> np.ndarray:
        """Return a score for every dataset item (higher = better)."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def interaction_matrix(dataset: InteractionDataset, split: TrainTestSplit) -> np.ndarray:
        """Binary user × item matrix of the training interactions."""
        matrix = np.zeros((dataset.num_users, dataset.num_items))
        for interaction in split.train:
            matrix[interaction.user_id, interaction.item_id] = 1.0
        return matrix

    @staticmethod
    def item_popularity(dataset: InteractionDataset, split: TrainTestSplit) -> np.ndarray:
        """Training purchase counts per item."""
        counts = np.zeros(dataset.num_items)
        for interaction in split.train:
            counts[interaction.item_id] += 1.0
        return counts
