"""KG-embedding recommenders: CKE and KGAT (the first baseline group of Table I).

Both models combine collaborative filtering with structural knowledge from the
KG but remain black boxes — they produce no recommendation paths, which is
exactly the explainability gap the paper's RL methods address.

* **CKE** (Zhang et al., 2016): item representation = collaborative latent
  vector + TransE structural vector; trained with BPR.
* **KGAT** (Wang et al., 2019): TransE vectors refined with attention-weighted
  neighbour aggregation over the KG before BPR training of the user vectors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.schema import InteractionDataset, TrainTestSplit
from ..embeddings import TransEConfig, train_transe
from ..kg import build_knowledge_graph
from .base import BaselineRecommender


def _bpr_train(user_factors: np.ndarray, item_factors: np.ndarray,
               interactions: np.ndarray, item_offsets: Optional[np.ndarray],
               epochs: int, learning_rate: float, regularization: float,
               rng: np.random.Generator) -> None:
    """In-place BPR-MF training; ``item_offsets`` is a fixed additive item term."""
    num_items = item_factors.shape[0]
    users, positives = np.nonzero(interactions)
    if len(users) == 0:
        return
    for _ in range(epochs):
        order = rng.permutation(len(users))
        for index in order:
            user, positive = users[index], positives[index]
            negative = int(rng.integers(0, num_items))
            if interactions[user, negative] > 0:
                continue
            item_pos = item_factors[positive] + (item_offsets[positive]
                                                 if item_offsets is not None else 0.0)
            item_neg = item_factors[negative] + (item_offsets[negative]
                                                 if item_offsets is not None else 0.0)
            difference = float(user_factors[user] @ (item_pos - item_neg))
            sigmoid = 1.0 / (1.0 + np.exp(difference))
            user_gradient = sigmoid * (item_pos - item_neg) - regularization * user_factors[user]
            pos_gradient = sigmoid * user_factors[user] - regularization * item_factors[positive]
            neg_gradient = -sigmoid * user_factors[user] - regularization * item_factors[negative]
            user_factors[user] += learning_rate * user_gradient
            item_factors[positive] += learning_rate * pos_gradient
            item_factors[negative] += learning_rate * neg_gradient


class CKERecommender(BaselineRecommender):
    """Collaborative Knowledge-base Embedding."""

    name = "CKE"

    def __init__(self, embedding_dim: int = 32, epochs: int = 20, learning_rate: float = 0.05,
                 regularization: float = 0.01, transe_epochs: int = 10, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.transe_epochs = transe_epochs

    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        rng = np.random.default_rng(self.seed)
        graph, _, builder = build_knowledge_graph(dataset, split.train)
        transe, _ = train_transe(graph, TransEConfig(embedding_dim=self.embedding_dim,
                                                     epochs=self.transe_epochs, seed=self.seed))
        structural = np.stack([transe.entity(builder.item_to_entity(item))
                               for item in range(dataset.num_items)])

        interactions = self.interaction_matrix(dataset, split)
        self._user_factors = rng.normal(0, 0.1, size=(dataset.num_users, self.embedding_dim))
        self._item_factors = rng.normal(0, 0.1, size=(dataset.num_items, self.embedding_dim))
        self._structural = structural
        _bpr_train(self._user_factors, self._item_factors, interactions, structural,
                   self.epochs, self.learning_rate, self.regularization, rng)

    def _score_items(self, user_id: int) -> np.ndarray:
        item_matrix = self._item_factors + self._structural
        return item_matrix @ self._user_factors[user_id]


class KGATRecommender(BaselineRecommender):
    """Knowledge Graph Attention Network (attention-refined embeddings + BPR)."""

    name = "KGAT"

    def __init__(self, embedding_dim: int = 32, epochs: int = 20, learning_rate: float = 0.05,
                 regularization: float = 0.01, transe_epochs: int = 10,
                 num_hops: int = 2, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.embedding_dim = embedding_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.regularization = regularization
        self.transe_epochs = transe_epochs
        self.num_hops = num_hops

    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        rng = np.random.default_rng(self.seed)
        graph, _, builder = build_knowledge_graph(dataset, split.train)
        transe, _ = train_transe(graph, TransEConfig(embedding_dim=self.embedding_dim,
                                                     epochs=self.transe_epochs, seed=self.seed))

        # Attentive neighbour aggregation: π(h, r, t) ∝ exp(tanh(e_t + e_r)·e_h),
        # the KGAT attention, applied over the full entity table for num_hops hops.
        entity = np.array(transe.entity_embeddings, copy=True)
        for _ in range(self.num_hops):
            refined = np.array(entity, copy=True)
            for entity_id in range(graph.num_entities):
                neighbors = graph.outgoing(entity_id)
                if not neighbors:
                    continue
                neighbor_vectors = np.stack([entity[tail] for _, tail in neighbors])
                relation_vectors = np.stack([transe.relation(rel) for rel, _ in neighbors])
                attention = np.tanh(neighbor_vectors + relation_vectors) @ entity[entity_id]
                attention = np.exp(attention - attention.max())
                attention = attention / attention.sum()
                refined[entity_id] = 0.5 * entity[entity_id] + 0.5 * (attention @ neighbor_vectors)
            entity = refined

        self._item_structural = np.stack([entity[builder.item_to_entity(item)]
                                          for item in range(dataset.num_items)])
        interactions = self.interaction_matrix(dataset, split)
        self._user_factors = rng.normal(0, 0.1, size=(dataset.num_users, self.embedding_dim))
        self._item_factors = rng.normal(0, 0.1, size=(dataset.num_items, self.embedding_dim))
        _bpr_train(self._user_factors, self._item_factors, interactions, self._item_structural,
                   self.epochs, self.learning_rate, self.regularization, rng)

    def _score_items(self, user_id: int) -> np.ndarray:
        item_matrix = self._item_factors + self._item_structural
        return item_matrix @ self._user_factors[user_id]
