"""Neural-network recommenders: DeepCoNN and RippleNet (second group of Table I).

* **DeepCoNN** (Zheng et al., 2017): users and items are represented by the
  aggregated features of their reviews, each side passed through its own MLP
  before a dot-product match.  Here the "review text" is the feature
  vocabulary attached to items / mentioned by users.
* **RippleNet** (Wang et al., 2018): a user's preferences propagate through
  "ripple sets" — the multi-hop neighbourhoods of their purchased items — and
  a candidate item is scored by its attention-weighted overlap with those
  ripple sets.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from ..data.schema import InteractionDataset, TrainTestSplit
from ..embeddings import TransEConfig, train_transe
from ..kg import build_knowledge_graph
from .base import BaselineRecommender


class DeepCoNNRecommender(BaselineRecommender):
    """Cooperative neural networks over user / item feature profiles."""

    name = "DeepCoNN"

    def __init__(self, hidden_dim: int = 32, epochs: int = 15, learning_rate: float = 0.05,
                 seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate

    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        rng = np.random.default_rng(self.seed)
        num_features = max(dataset.num_features, 1)

        # Bag-of-feature profiles (the stand-in for review text).
        item_profiles = np.zeros((dataset.num_items, num_features))
        for product in dataset.products:
            for feature in product.feature_ids:
                item_profiles[product.item_id, feature] += 1.0
        user_profiles = np.zeros((dataset.num_users, num_features))
        for interaction in split.train:
            for feature in interaction.mentioned_feature_ids:
                user_profiles[interaction.user_id, feature] += 1.0
            user_profiles[interaction.user_id] += 0.2 * item_profiles[interaction.item_id]

        item_profiles /= (np.linalg.norm(item_profiles, axis=1, keepdims=True) + 1e-12)
        user_profiles /= (np.linalg.norm(user_profiles, axis=1, keepdims=True) + 1e-12)

        # One hidden layer per tower, trained with BPR on the matched outputs.
        self._user_tower = rng.normal(0, 0.1, size=(num_features, self.hidden_dim))
        self._item_tower = rng.normal(0, 0.1, size=(num_features, self.hidden_dim))
        self._user_profiles = user_profiles
        self._item_profiles = item_profiles

        interactions = self.interaction_matrix(dataset, split)
        users, positives = np.nonzero(interactions)
        for _ in range(self.epochs):
            order = rng.permutation(len(users))
            for index in order:
                user, positive = users[index], positives[index]
                negative = int(rng.integers(0, dataset.num_items))
                if interactions[user, negative] > 0:
                    continue
                user_hidden = np.tanh(user_profiles[user] @ self._user_tower)
                pos_hidden = np.tanh(item_profiles[positive] @ self._item_tower)
                neg_hidden = np.tanh(item_profiles[negative] @ self._item_tower)
                difference = float(user_hidden @ (pos_hidden - neg_hidden))
                sigmoid = 1.0 / (1.0 + np.exp(difference))
                # Gradient through tanh towers (single hidden layer).
                grad_user_hidden = sigmoid * (pos_hidden - neg_hidden)
                grad_pos_hidden = sigmoid * user_hidden
                grad_neg_hidden = -sigmoid * user_hidden
                self._user_tower += self.learning_rate * np.outer(
                    user_profiles[user], grad_user_hidden * (1 - user_hidden**2))
                self._item_tower += self.learning_rate * (
                    np.outer(item_profiles[positive], grad_pos_hidden * (1 - pos_hidden**2))
                    + np.outer(item_profiles[negative], grad_neg_hidden * (1 - neg_hidden**2)))

    def _score_items(self, user_id: int) -> np.ndarray:
        user_hidden = np.tanh(self._user_profiles[user_id] @ self._user_tower)
        item_hidden = np.tanh(self._item_profiles @ self._item_tower)
        return item_hidden @ user_hidden


class RippleNetRecommender(BaselineRecommender):
    """Preference propagation through multi-hop ripple sets."""

    name = "RippleNet"

    def __init__(self, embedding_dim: int = 32, num_hops: int = 2, max_ripple_size: int = 32,
                 transe_epochs: int = 10, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.embedding_dim = embedding_dim
        self.num_hops = num_hops
        self.max_ripple_size = max_ripple_size
        self.transe_epochs = transe_epochs

    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        rng = np.random.default_rng(self.seed)
        graph, _, builder = build_knowledge_graph(dataset, split.train)
        transe, _ = train_transe(graph, TransEConfig(embedding_dim=self.embedding_dim,
                                                     epochs=self.transe_epochs, seed=self.seed))
        self._item_vectors = np.stack([transe.entity(builder.item_to_entity(item))
                                       for item in range(dataset.num_items)])

        # Ripple sets: hop-wise neighbourhood entities of each user's purchases.
        self._ripple_vectors: Dict[int, List[np.ndarray]] = {}
        for user_id in range(dataset.num_users):
            seeds = [builder.item_to_entity(item)
                     for item in self.train_items.get(user_id, set())]
            hops: List[np.ndarray] = []
            frontier: Set[int] = set(seeds)
            visited: Set[int] = set(seeds)
            for _ in range(self.num_hops):
                next_frontier: Set[int] = set()
                for entity in frontier:
                    for _, tail in graph.outgoing(entity):
                        if tail not in visited:
                            next_frontier.add(tail)
                            visited.add(tail)
                if not next_frontier:
                    break
                sampled = list(next_frontier)
                if len(sampled) > self.max_ripple_size:
                    sampled = list(rng.choice(sampled, size=self.max_ripple_size, replace=False))
                hops.append(np.stack([transe.entity(entity) for entity in sampled]))
                frontier = set(sampled)
            if seeds:
                hops.insert(0, np.stack([transe.entity(entity) for entity in seeds]))
            self._ripple_vectors[user_id] = hops

    def _score_items(self, user_id: int) -> np.ndarray:
        hops = self._ripple_vectors.get(user_id, [])
        if not hops:
            return np.zeros(self._item_vectors.shape[0])
        scores = np.zeros(self._item_vectors.shape[0])
        decay = 1.0
        for hop_vectors in hops:
            # Attention of each candidate item over this hop's ripple entities.
            similarity = self._item_vectors @ hop_vectors.T      # (items, ripple)
            attention = np.exp(similarity - similarity.max(axis=1, keepdims=True))
            attention /= attention.sum(axis=1, keepdims=True)
            preference = attention @ hop_vectors                  # (items, dim)
            scores += decay * np.sum(preference * self._item_vectors, axis=1)
            decay *= 0.5
        return scores
