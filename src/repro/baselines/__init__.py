"""Baseline recommenders reproduced for the comparison tables (Table I and III)."""

from typing import Callable, Dict, List

from .base import BaselineRecommender
from .cafe import CAFERecommender
from .embedding_models import CKERecommender, KGATRecommender
from .heteroembed import HeteroEmbedRecommender
from .neural_models import DeepCoNNRecommender, RippleNetRecommender
from .rl_single import (
    ADACRecommender,
    CogERRecommender,
    INFERRecommender,
    PGPRRecommender,
    ReMRRecommender,
    SingleAgentConfig,
    SingleAgentRLRecommender,
    UCPRRecommender,
)
from .rulerec import RuleRecRecommender
from .simple import ItemKNNRecommender, PopularityRecommender

# Factories in the row order of Table I (plus the sanity floors at the top).
BASELINE_FACTORIES: Dict[str, Callable[[], BaselineRecommender]] = {
    "Popularity": PopularityRecommender,
    "ItemKNN": ItemKNNRecommender,
    "CKE": CKERecommender,
    "KGAT": KGATRecommender,
    "DeepCoNN": DeepCoNNRecommender,
    "RippleNet": RippleNetRecommender,
    "RuleRec": RuleRecRecommender,
    "HeteroEmbed": HeteroEmbedRecommender,
    "PGPR": PGPRRecommender,
    "ReMR": ReMRRecommender,
    "ADAC": ADACRecommender,
    "INFER": INFERRecommender,
    "CogER": CogERRecommender,
    "CAFE": CAFERecommender,
    "UCPR": UCPRRecommender,
}

TABLE1_BASELINES: List[str] = [
    "CKE", "KGAT", "DeepCoNN", "RippleNet", "RuleRec", "HeteroEmbed",
    "PGPR", "ReMR", "ADAC", "INFER", "CogER", "CAFE", "UCPR",
]

TABLE3_BASELINES: List[str] = ["PGPR", "HeteroEmbed", "UCPR", "CAFE"]


def build_baseline(name: str, **kwargs) -> BaselineRecommender:
    """Instantiate a baseline by its paper name."""
    if name not in BASELINE_FACTORIES:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINE_FACTORIES)}")
    return BASELINE_FACTORIES[name](**kwargs)


__all__ = [
    "ADACRecommender",
    "BASELINE_FACTORIES",
    "BaselineRecommender",
    "CAFERecommender",
    "CKERecommender",
    "CogERRecommender",
    "DeepCoNNRecommender",
    "HeteroEmbedRecommender",
    "INFERRecommender",
    "ItemKNNRecommender",
    "KGATRecommender",
    "PGPRRecommender",
    "PopularityRecommender",
    "ReMRRecommender",
    "RippleNetRecommender",
    "RuleRecRecommender",
    "SingleAgentConfig",
    "SingleAgentRLRecommender",
    "TABLE1_BASELINES",
    "TABLE3_BASELINES",
    "UCPRRecommender",
    "build_baseline",
]
