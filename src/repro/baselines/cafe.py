"""CAFE: coarse-to-fine neural-symbolic reasoning (Xian et al., 2020).

CAFE first builds a *coarse* user profile — a distribution over meta-path
patterns that explain the user's historical purchases — and then performs a
*fine* symbolic search that instantiates only the high-probability patterns,
scoring reached items by the pattern weight and an embedding match.  Because
it skips whole-graph policy rollouts, CAFE is the fastest RL-era baseline in
the paper's efficiency table, a property this implementation preserves.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..data.schema import InteractionDataset, TrainTestSplit
from ..embeddings import TransEConfig, train_transe
from ..kg import build_knowledge_graph
from ..kg.relations import Relation
from ..rl.trajectory import RecommendationPath
from .base import BaselineRecommender

MetaPath = Tuple[Relation, ...]

# Meta-path templates starting from the user (first hop is always purchase,
# matching how CAFE anchors patterns in historical behaviour).
_TEMPLATES: List[MetaPath] = [
    (Relation.PURCHASE, Relation.ALSO_BOUGHT),
    (Relation.PURCHASE, Relation.ALSO_VIEWED),
    (Relation.PURCHASE, Relation.BOUGHT_TOGETHER),
    (Relation.PURCHASE, Relation.PRODUCED_BY, Relation.REV_PRODUCED_BY),
    (Relation.PURCHASE, Relation.DESCRIBED_BY, Relation.REV_DESCRIBED_BY),
    (Relation.MENTION, Relation.REV_DESCRIBED_BY),
    (Relation.PURCHASE, Relation.ALSO_BOUGHT, Relation.ALSO_BOUGHT),
]


class CAFERecommender(BaselineRecommender):
    """Coarse-to-fine neural-symbolic recommender over meta-path templates."""

    name = "CAFE"

    def __init__(self, embedding_dim: int = 32, transe_epochs: int = 10,
                 max_instances_per_template: int = 200, seed: int = 0) -> None:
        super().__init__(seed=seed)
        self.embedding_dim = embedding_dim
        self.transe_epochs = transe_epochs
        self.max_instances_per_template = max_instances_per_template

    # ------------------------------------------------------------------ #
    def _fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> None:
        graph, _, builder = build_knowledge_graph(dataset, split.train)
        self._graph = graph
        self._builder = builder
        self._transe, _ = train_transe(
            graph, TransEConfig(embedding_dim=self.embedding_dim, epochs=self.transe_epochs,
                                seed=self.seed))
        self._profiles = self._learn_profiles()

    def _learn_profiles(self) -> Dict[int, np.ndarray]:
        """Coarse stage: per-user distribution over meta-path templates.

        A template's weight for a user is the fraction of template instances
        (starting from that user) that end at an item the user actually bought.
        """
        profiles: Dict[int, np.ndarray] = {}
        for user_id, items in self.train_items.items():
            targets = {self._builder.item_to_entity(item) for item in items}
            weights = np.zeros(len(_TEMPLATES))
            for template_index, template in enumerate(_TEMPLATES):
                reached = self._execute_template(user_id, template)
                if not reached:
                    continue
                hits = sum(1 for entity, _ in reached if entity in targets)
                weights[template_index] = hits / len(reached)
            total = weights.sum()
            profiles[user_id] = weights / total if total > 0 else np.full(
                len(_TEMPLATES), 1.0 / len(_TEMPLATES))
        return profiles

    def _execute_template(self, user_id: int, template: MetaPath
                          ) -> List[Tuple[int, Tuple[Tuple[Relation, int], ...]]]:
        """Fine stage: instantiate a template; returns (endpoint, hops) pairs."""
        user_entity = self._builder.user_to_entity(user_id)
        frontier: List[Tuple[int, Tuple[Tuple[Relation, int], ...]]] = [(user_entity, ())]
        for relation in template:
            next_frontier: List[Tuple[int, Tuple[Tuple[Relation, int], ...]]] = []
            for entity, hops in frontier:
                for edge_relation, tail in self._graph.outgoing(entity):
                    if edge_relation != relation:
                        continue
                    next_frontier.append((tail, hops + ((edge_relation, tail),)))
                    if len(next_frontier) >= self.max_instances_per_template:
                        break
                if len(next_frontier) >= self.max_instances_per_template:
                    break
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    # ------------------------------------------------------------------ #
    def _score_items(self, user_id: int) -> np.ndarray:
        scores = np.zeros(self.dataset.num_items)
        profile = self._profiles.get(user_id)
        if profile is None:
            return scores
        user_entity = self._builder.user_to_entity(user_id)
        for template_index, template in enumerate(_TEMPLATES):
            weight = float(profile[template_index])
            if weight <= 0.0:
                continue
            for entity, _ in self._execute_template(user_id, template):
                item = self._builder.entity_to_item(entity)
                if item is None:
                    continue
                match = self._transe.score(user_entity, Relation.PURCHASE, entity)
                scores[item] += weight * (1.0 + 1.0 / (1.0 + np.exp(-match)))
        return scores

    def find_paths(self, user_id: int, num_paths: int) -> List[RecommendationPath]:
        """Enumerate template instances as explanation paths (efficiency study)."""
        user_entity = self._builder.user_to_entity(user_id)
        profile = self._profiles.get(user_id)
        paths: List[RecommendationPath] = []
        for template_index, template in enumerate(_TEMPLATES):
            weight = float(profile[template_index]) if profile is not None else 0.0
            for entity, hops in self._execute_template(user_id, template):
                if not self._graph.entities.is_item(entity):
                    continue
                paths.append(RecommendationPath(user_entity=user_entity, item_entity=entity,
                                                hops=hops, score=weight))
                if len(paths) >= num_paths:
                    return paths
        return paths
