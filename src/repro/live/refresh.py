"""Warm-start refresh: a few-epoch delta retrain producing a new generation.

A :class:`GenerationBundle` freezes everything one artifact generation needs
to serve — graph, category graph, TransE table, representations, policy and
the search hyper-parameters — and :func:`refresh_generation` derives
generation N+1 from generation N plus the update-log slice ingested since:

* **TransE** restarts from the prior entity/relation tables
  (``train_transe(..., initial_state=prior)``) and runs
  :attr:`RefreshConfig.transe_epochs` epochs over the *grown* triplet table —
  new entities get their seeded initialisation, everything else a warm start.
* **CGGNN** rebuilds its neighbourhood table over the new graph (the
  neighbourhoods are exactly what the deltas changed) but overlays the prior
  item/category tables (``initial_state=prior_representations``) before its
  few-epoch refresh.
* **Policy and guidance are reused** — the shared policy depends only on the
  embedding dimension, not on entity count, so generation N+1 serves with the
  same network weights over refreshed tables.

An **empty delta is a no-op by construction**: when no log entries arrived
since the base generation, :func:`refresh_generation` returns the base bundle
*object*, so replays across a vacuous "refresh" are bit-identical.

Generations persist via :func:`save_generation` into the nested stores of
:class:`repro.pipeline.ArtifactStore` (``<root>/generations/<N>/``): the
refreshed arrays plus the delta slice that produced them, so
:func:`load_generation_result` can rebuild the generation from the base
artifacts alone — replay the deltas onto the restored base graph, then
overlay the persisted tables.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..cggnn import CGGNN, CGGNNConfig, CGGNNTrainingConfig, train_cggnn
from ..cggnn.model import Representations
from ..darl.collaborative import GuidanceModel
from ..darl.inference import InferenceConfig, PathRecommender
from ..darl.shared_policy import SharedPolicyNetworks
from ..embeddings import TransEModel, train_transe
from ..kg.category_graph import CategoryGraph
from ..kg.graph import KnowledgeGraph
from ..pipeline.artifacts import ArtifactStore
from ..serving import RecommendationService, ServingConfig
from .log import UpdateLog

#: Stage name generation stores use for their delta slice + metadata.
LIVE_STAGE = "live"


@dataclass
class RefreshConfig:
    """How aggressive a delta refresh is."""

    transe_epochs: int = 3     # warm-started, so a few epochs suffice
    cggnn_epochs: int = 2
    seed: int = 0              # refresh RNG seed (negative sampling etc.)

    def validate(self) -> None:
        if self.transe_epochs < 0 or self.cggnn_epochs < 0:
            raise ValueError("refresh epoch counts must be non-negative")


@dataclass
class GenerationBundle:
    """One artifact generation, frozen and ready to build services from."""

    generation: int
    graph: KnowledgeGraph
    category_graph: CategoryGraph
    transe: TransEModel
    representations: Representations
    policy: SharedPolicyNetworks
    guidance: Optional[GuidanceModel]
    inference_config: Optional[InferenceConfig]
    max_path_length: int
    max_entity_actions: int
    max_category_actions: int
    use_dual_agent: bool
    cggnn_config: CGGNNConfig
    cggnn_training: CGGNNTrainingConfig
    #: Update-log entries ``[0, log_offset)`` are folded into these tables.
    log_offset: int = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_cadrl(cls, model, *, transe: TransEModel,
                   cggnn_config: Optional[CGGNNConfig] = None,
                   cggnn_training: Optional[CGGNNTrainingConfig] = None,
                   generation: int = 0, log_offset: int = 0
                   ) -> "GenerationBundle":
        """Freeze a fitted :class:`repro.darl.CADRL` as generation ``generation``."""
        if model.recommender is None:
            raise RuntimeError("CADRL.fit must be called before going live")
        reference = model.recommender
        return cls(
            generation=generation,
            graph=model.graph,
            category_graph=model.category_graph,
            transe=transe,
            representations=model.representations,
            policy=reference.policy,
            guidance=reference.guidance,
            inference_config=reference.config,
            max_path_length=reference.max_path_length,
            max_entity_actions=reference.entity_environment.max_actions,
            max_category_actions=reference.category_environment.max_actions,
            use_dual_agent=reference.use_dual_agent,
            cggnn_config=cggnn_config or CGGNNConfig(
                embedding_dim=model.representations.dim),
            cggnn_training=cggnn_training or CGGNNTrainingConfig(),
            log_offset=log_offset,
        )

    @classmethod
    def from_pipeline(cls, result, *, generation: Optional[int] = None,
                      log_offset: int = 0) -> "GenerationBundle":
        """Freeze a :class:`repro.pipeline.PipelineResult` (needs ``train``)."""
        if result.cadrl is None:
            raise ValueError("pipeline result did not reach the train stage")
        if result.transe is None:
            raise ValueError("pipeline result is missing the TransE model")
        return cls.from_cadrl(
            result.cadrl, transe=result.transe,
            cggnn_config=result.config.model.cggnn,
            cggnn_training=result.config.model.cggnn_training,
            generation=(result.context.store.generation
                        if generation is None and result.context.store is not None
                        else (generation or 0)),
            log_offset=log_offset)

    # ------------------------------------------------------------------ #
    def build_recommender(self) -> PathRecommender:
        """A fresh recommender over this generation's frozen tables.

        Mirrors :meth:`repro.cluster.ClusterService.from_cadrl`'s per-shard
        clone: same policy object and tables, own milestone/action caches.
        """
        return PathRecommender(
            self.graph, self.category_graph, self.representations, self.policy,
            guidance=self.guidance,
            max_path_length=self.max_path_length,
            max_entity_actions=self.max_entity_actions,
            max_category_actions=self.max_category_actions,
            use_dual_agent=self.use_dual_agent,
            config=self.inference_config)

    def build_service(self, *, serving_config: Optional[ServingConfig] = None,
                      clock: Callable[[], float] = time.perf_counter,
                      name: Optional[str] = None) -> RecommendationService:
        """A generation-stamped serving facade over this bundle."""
        return RecommendationService(
            self.graph, self.category_graph, self.representations, self.policy,
            recommender=self.build_recommender(), transe=self.transe,
            config=serving_config, clock=clock,
            name=name or f"live@gen{self.generation}",
            generation=self.generation)


# --------------------------------------------------------------------------- #
# the refresh itself
# --------------------------------------------------------------------------- #
def refresh_generation(base: GenerationBundle, graph: KnowledgeGraph,
                       log_offset: int,
                       config: Optional[RefreshConfig] = None
                       ) -> GenerationBundle:
    """Derive generation N+1 from ``base`` plus the grown ``graph``.

    ``graph`` must be the base graph with the update-log slice
    ``[base.log_offset, log_offset)`` applied (the live session's staging
    graph).  Returns ``base`` itself when that slice is empty — a refresh
    over no deltas must not change a single bit of serving behaviour.
    """
    if log_offset < base.log_offset:
        raise ValueError(
            f"log_offset {log_offset} precedes the base generation's "
            f"{base.log_offset}; the update log is append-only")
    if log_offset == base.log_offset:
        return base
    if graph.num_entities < base.graph.num_entities:
        raise ValueError("the refreshed graph must descend from the base graph")
    config = config or RefreshConfig()
    config.validate()

    transe_config = dataclasses.replace(
        base.transe.config, epochs=config.transe_epochs, seed=config.seed)
    transe, _ = train_transe(graph, transe_config, initial_state=base.transe)

    category_graph = CategoryGraph.from_knowledge_graph(graph)

    cggnn = CGGNN(graph, transe, base.cggnn_config)
    training = dataclasses.replace(
        base.cggnn_training, epochs=config.cggnn_epochs, seed=config.seed)
    representations, _ = train_cggnn(graph, cggnn, training,
                                     initial_state=base.representations)

    return dataclasses.replace(
        base,
        generation=base.generation + 1,
        graph=graph,
        category_graph=category_graph,
        transe=transe,
        representations=representations,
        log_offset=log_offset)


# --------------------------------------------------------------------------- #
# persistence: nested generation stores
# --------------------------------------------------------------------------- #
def save_generation(root_store: ArtifactStore, bundle: GenerationBundle,
                    log: UpdateLog) -> ArtifactStore:
    """Persist ``bundle`` under ``<root>/generations/<N>/``.

    Writes the refreshed arrays (``embed/transe.npz``,
    ``cggnn/representations.npz``) plus the full delta slice that produced
    them (``live/deltas.json``), so the generation is reconstructible from
    the base artifacts alone.  Returns the nested store.
    """
    if bundle.generation <= 0:
        raise ValueError("generation 0 is the root store; nothing to save")
    store = root_store.generation_store(bundle.generation)
    manifest = store.read_manifest()
    manifest["generation"] = bundle.generation
    store._write_manifest(manifest)

    fingerprint = f"live-generation-{bundle.generation}"
    store.begin("embed")
    store.save_arrays("embed", "transe.npz", {
        "entity": bundle.transe.entity_embeddings,
        "relation": bundle.transe.relation_embeddings,
    })
    store.complete("embed", fingerprint,
                   {"num_entities": bundle.transe.num_entities})
    store.begin("cggnn")
    store.save_arrays("cggnn", "representations.npz", {
        "entity": bundle.representations.entity,
        "relation": bundle.representations.relation,
        "category": bundle.representations.category,
    })
    store.complete("cggnn", fingerprint,
                   {"dim": bundle.representations.dim})
    store.begin(LIVE_STAGE)
    deltas = log.to_dicts(0, bundle.log_offset)
    store.save_json(LIVE_STAGE, "deltas.json", deltas)
    store.save_json(LIVE_STAGE, "meta.json", {
        "generation": bundle.generation,
        "log_offset": bundle.log_offset,
        "log_signature": log.signature(0, bundle.log_offset),
        "num_entities": bundle.graph.num_entities,
        "num_triplets": bundle.graph.num_triplets,
    })
    store.complete(LIVE_STAGE, fingerprint, {"log_offset": bundle.log_offset})
    return store


def load_generation_result(root_store: ArtifactStore, store: ArtifactStore,
                           until: Optional[Sequence[str]] = None,
                           config=None):
    """Rebuild one persisted generation as a :class:`PipelineResult`.

    Loads the base (generation-0) pipeline, replays the generation's delta
    slice onto its freshly-restored graph, then overlays the persisted
    TransE/representation tables and reassembles the CADRL facade — so
    ``load_pipeline(path, generation=N)`` hands back the same result shape
    as any other load, just with generation-N tables.
    """
    from ..pipeline.pipeline import load_pipeline
    from ..pipeline.stages import TrainStage

    targets = set(until or ("train",))
    targets.add("train")  # the facade rebuild below needs the policy
    result = load_pipeline(root_store.root, until=sorted(targets),
                           config=config, generation=0)
    if not store.has_file(LIVE_STAGE, "deltas.json"):
        raise FileNotFoundError(
            f"generation store {store.root} has no {LIVE_STAGE}/deltas.json; "
            "was save_generation interrupted?")
    log = UpdateLog.from_dicts(store.load_json(LIVE_STAGE, "deltas.json"))
    context = result.context
    log.apply(context.graph)  # freshly loaded graph, private to this result
    context.category_graph = CategoryGraph.from_knowledge_graph(context.graph)

    transe_arrays = store.load_arrays("embed", "transe.npz")
    context.transe = TransEModel.from_arrays(
        transe_arrays["entity"], transe_arrays["relation"],
        result.config.model.transe)
    if context.transe.num_entities != context.graph.num_entities:
        raise ValueError(
            f"generation store {store.root} holds a TransE table for "
            f"{context.transe.num_entities} entities but replaying its deltas "
            f"produced {context.graph.num_entities} — store is inconsistent")
    rep_arrays = store.load_arrays("cggnn", "representations.npz")
    context.representations = Representations(
        entity=rep_arrays["entity"], relation=rep_arrays["relation"],
        category=rep_arrays["category"])
    TrainStage._assemble(context)
    return result
