"""Append-only update log: the ingestion substrate of the live stack.

Streaming changes arrive as typed *deltas* — new interactions, new items, new
generic relations — appended to an :class:`UpdateLog`.  The log is the single
source of truth for "what changed since generation N": refresh folds a log
slice into a staging graph, the generation store persists the slice
(``live/deltas.json``) so any generation can be reconstructed from the base
artifacts plus its deltas, and :meth:`UpdateLog.signature` hashes the
canonical serialisation so two replays can prove they ingested the identical
stream.

Ordering is replayable by construction: deltas apply strictly in append
order, and :func:`synthesize_deltas` derives a burst from one seeded
generator over the *current* graph state — the same seed against the same
graph produces the identical burst, bit for bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..kg.entities import EntityType
from ..kg.graph import KnowledgeGraph
from ..kg.relations import Relation

PathLike = Union[str, Path]


class TornLogError(RuntimeError):
    """A persisted update log is corrupt beyond torn-tail recovery.

    Carries the offending ``path``; raised for mid-file damage always, and
    for a torn tail only when the caller asked not to recover.
    """

    def __init__(self, message: str, path: PathLike) -> None:
        super().__init__(f"{message} [{path}]")
        self.path = Path(path)


@dataclass(frozen=True)
class InteractionDelta:
    """A new purchase edge between an existing user and an existing item."""

    user_entity: int
    item_entity: int

    def to_dict(self) -> Dict:
        return {"kind": "interaction", "user_entity": self.user_entity,
                "item_entity": self.item_entity}


@dataclass(frozen=True)
class ItemDelta:
    """A brand-new catalog item: entity + category + attribute edges."""

    name: str
    category_id: int
    brand_entity: Optional[int] = None
    feature_entities: Tuple[int, ...] = ()

    def to_dict(self) -> Dict:
        return {"kind": "item", "name": self.name,
                "category_id": self.category_id,
                "brand_entity": self.brand_entity,
                "feature_entities": list(self.feature_entities)}


@dataclass(frozen=True)
class RelationDelta:
    """A generic new edge between two existing entities."""

    head: int
    relation: Relation
    tail: int

    def to_dict(self) -> Dict:
        return {"kind": "relation", "head": self.head,
                "relation": self.relation.value, "tail": self.tail}


@dataclass(frozen=True)
class NewItemInteraction:
    """A purchase of an item introduced earlier *in the same log* by name.

    New items have no entity id until their :class:`ItemDelta` applies, so
    this delta resolves the id by ``(ITEM, name)`` lookup at apply time.
    """

    user_entity: int
    item_name: str

    def to_dict(self) -> Dict:
        return {"kind": "new_item_interaction", "user_entity": self.user_entity,
                "item_name": self.item_name}


UpdateDelta = Union[InteractionDelta, ItemDelta, RelationDelta,
                    NewItemInteraction]


def delta_from_dict(payload: Dict) -> UpdateDelta:
    kind = payload["kind"]
    if kind == "interaction":
        return InteractionDelta(user_entity=int(payload["user_entity"]),
                                item_entity=int(payload["item_entity"]))
    if kind == "item":
        brand = payload.get("brand_entity")
        return ItemDelta(name=str(payload["name"]),
                         category_id=int(payload["category_id"]),
                         brand_entity=None if brand is None else int(brand),
                         feature_entities=tuple(
                             int(f) for f in payload.get("feature_entities", ())))
    if kind == "relation":
        return RelationDelta(head=int(payload["head"]),
                             relation=Relation(payload["relation"]),
                             tail=int(payload["tail"]))
    if kind == "new_item_interaction":
        return NewItemInteraction(user_entity=int(payload["user_entity"]),
                                  item_name=str(payload["item_name"]))
    raise ValueError(f"unknown delta kind {kind!r}")


@dataclass
class AppliedDelta:
    """What one :meth:`UpdateLog.apply` call did to a graph."""

    first_seq: int
    last_seq: int                      # exclusive
    touched_entities: Set[int] = field(default_factory=set)
    new_entities: Set[int] = field(default_factory=set)
    new_edges: int = 0                 # directed edges incl. inverses

    @property
    def count(self) -> int:
        return self.last_seq - self.first_seq


class UpdateLog:
    """Append-only, replayable stream of graph deltas.

    Sequence numbers are plain list offsets: ``events[n]`` is the delta with
    sequence number ``n``, and a generation's ``log_offset`` says "deltas
    ``[0, log_offset)`` are folded into this generation's tables".
    """

    def __init__(self, events: Iterable[UpdateDelta] = ()) -> None:
        self.events: List[UpdateDelta] = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def append(self, delta: UpdateDelta) -> int:
        """Append one delta; returns its sequence number."""
        self.events.append(delta)
        return len(self.events) - 1

    def extend(self, deltas: Iterable[UpdateDelta]) -> int:
        """Append many deltas; returns the new log length."""
        self.events.extend(deltas)
        return len(self.events)

    def pending(self, offset: int) -> List[UpdateDelta]:
        """The deltas not yet folded into a generation at ``offset``."""
        return self.events[offset:]

    # ------------------------------------------------------------------ #
    def apply(self, graph: KnowledgeGraph, offset: int = 0,
              upto: Optional[int] = None) -> AppliedDelta:
        """Fold ``events[offset:upto]`` into ``graph`` in append order.

        Returns the applied slice's bookkeeping: which entities were touched
        (new edges or category writes — exactly the set a scoped cache
        invalidation needs), which entities are new, and how many directed
        edges (inverses included) were added.
        """
        upto = len(self.events) if upto is None else upto
        applied = AppliedDelta(first_seq=offset, last_seq=upto)
        for delta in self.events[offset:upto]:
            if isinstance(delta, InteractionDelta):
                if graph.add_triplet(delta.user_entity, Relation.PURCHASE,
                                     delta.item_entity):
                    applied.new_edges += 2
                applied.touched_entities.update(
                    (delta.user_entity, delta.item_entity))
            elif isinstance(delta, ItemDelta):
                before = graph.num_entities
                entity = graph.entities.add(EntityType.ITEM, delta.name)
                item = entity.entity_id
                if item >= before:
                    applied.new_entities.add(item)
                graph.set_item_category(item, delta.category_id)
                applied.touched_entities.add(item)
                if delta.brand_entity is not None:
                    if graph.add_triplet(item, Relation.PRODUCED_BY,
                                         delta.brand_entity):
                        applied.new_edges += 2
                    applied.touched_entities.add(delta.brand_entity)
                for feature in delta.feature_entities:
                    if graph.add_triplet(item, Relation.DESCRIBED_BY, feature):
                        applied.new_edges += 2
                    applied.touched_entities.add(feature)
            elif isinstance(delta, NewItemInteraction):
                entity = graph.entities.find(EntityType.ITEM, delta.item_name)
                if entity is None:
                    raise ValueError(
                        f"new-item interaction references item "
                        f"{delta.item_name!r} before its ItemDelta applied")
                if graph.add_triplet(delta.user_entity, Relation.PURCHASE,
                                     entity.entity_id):
                    applied.new_edges += 2
                applied.touched_entities.update(
                    (delta.user_entity, entity.entity_id))
            elif isinstance(delta, RelationDelta):
                if graph.add_triplet(delta.head, delta.relation, delta.tail):
                    applied.new_edges += 2
                applied.touched_entities.update((delta.head, delta.tail))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown delta type {type(delta).__name__}")
        return applied

    # ------------------------------------------------------------------ #
    # serialisation & identity
    # ------------------------------------------------------------------ #
    def to_dicts(self, offset: int = 0, upto: Optional[int] = None) -> List[Dict]:
        upto = len(self.events) if upto is None else upto
        return [delta.to_dict() for delta in self.events[offset:upto]]

    @classmethod
    def from_dicts(cls, payloads: Sequence[Dict]) -> "UpdateLog":
        return cls(delta_from_dict(payload) for payload in payloads)

    def signature(self, offset: int = 0, upto: Optional[int] = None) -> str:
        """SHA-256 over the canonical serialisation of a log slice."""
        canonical = json.dumps(self.to_dicts(offset, upto), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # JSONL persistence (write-ahead durability with torn-tail recovery)
    # ------------------------------------------------------------------ #
    def save_jsonl(self, path: PathLike) -> None:
        """Write the whole log as JSONL, one canonical delta per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for delta in self.events:
                handle.write(json.dumps(delta.to_dict(), sort_keys=True) + "\n")

    def append_jsonl(self, path: PathLike, deltas: Sequence[UpdateDelta]) -> None:
        """Append deltas to a JSONL log file (creates it if missing)."""
        with open(path, "a", encoding="utf-8") as handle:
            for delta in deltas:
                handle.write(json.dumps(delta.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def load_jsonl(cls, path: PathLike, *, recover: bool = True) -> "UpdateLog":
        """Load a JSONL log, detecting (and by default healing) a torn tail.

        A crash mid-append leaves a final line that is truncated JSON or has
        no trailing newline.  With ``recover`` the file is truncated back to
        its last valid record (the write-ahead-log recovery rule) and loading
        proceeds; without it — or when the corruption is *not* confined to
        the tail — a :class:`TornLogError` carrying the path is raised, since
        mid-file damage means lost history that truncation cannot mend.
        """
        raw = Path(path).read_bytes().decode("utf-8")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        deltas: List[UpdateDelta] = []
        valid_chars = 0
        for number, line in enumerate(lines):
            try:
                deltas.append(delta_from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError) as error:
                if number != len(lines) - 1:
                    raise TornLogError(
                        f"corrupt update-log record on line {number + 1} "
                        f"(not the tail; truncation would lose history): "
                        f"{error}", path=path) from error
                if not recover:
                    raise TornLogError(
                        f"torn update-log tail on line {number + 1}: {error}",
                        path=path) from error
                with open(path, "r+b") as handle:
                    handle.truncate(valid_chars)
                break
            valid_chars += len(line.encode("utf-8")) + 1
        else:
            # Every line parsed, but a missing final newline still marks a
            # torn (incomplete) append of a record that happened to be valid
            # JSON; heal by rewriting the newline so the file is canonical.
            if recover and raw and not raw.endswith("\n"):
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write("\n")
        return cls(deltas)


# --------------------------------------------------------------------------- #
# seeded delta synthesis (simulation / examples / CI)
# --------------------------------------------------------------------------- #
def synthesize_deltas(graph: KnowledgeGraph, count: int, seed: int = 0,
                      new_item_fraction: float = 0.1) -> List[UpdateDelta]:
    """A seeded burst of plausible deltas against the current graph state.

    Mostly new interactions between existing users and items, with a
    ``new_item_fraction`` share of brand-new catalog items (assigned to an
    existing category and brand, then immediately purchased so they enter a
    user neighbourhood).  Deterministic per ``(graph state, count, seed)``.
    """
    if count <= 0:
        return []
    rng = np.random.default_rng(seed)
    users = list(graph.entities.ids_of_type(EntityType.USER))
    items = list(graph.entities.ids_of_type(EntityType.ITEM))
    brands = list(graph.entities.ids_of_type(EntityType.BRAND))
    categories = sorted({category for category in graph.item_category_map().values()})
    if not users or not items:
        raise ValueError("delta synthesis needs at least one user and one item")

    deltas: List[UpdateDelta] = []
    fresh_serial = 0
    for _ in range(count):
        if categories and rng.random() < new_item_fraction:
            name = f"live_item_{seed}_{fresh_serial}"
            fresh_serial += 1
            deltas.append(ItemDelta(
                name=name,
                category_id=int(categories[rng.integers(len(categories))]),
                brand_entity=(int(brands[rng.integers(len(brands))])
                              if brands else None)))
            # The new item is purchased right away by a random user; the
            # session resolves the item's entity id at apply time.
            deltas.append(NewItemInteraction(
                user_entity=int(users[rng.integers(len(users))]),
                item_name=name))
        else:
            deltas.append(InteractionDelta(
                user_entity=int(users[rng.integers(len(users))]),
                item_entity=int(items[rng.integers(len(items))])))
    return deltas
