"""The live session: streaming ingestion and generation swaps around serving.

:class:`LiveSession` wraps a running :class:`repro.cluster.ClusterService`
and manages the whole zero-downtime update loop:

* a **staging graph** — a private deepcopy of the serving generation's graph
  that ingestion mutates.  The serving generation's graph object is never
  touched, so every in-flight and cached answer stays internally consistent;
  the staging graph's CSR view is kept fresh *incrementally*
  (:func:`repro.kg.patch_adjacency` folds each burst in instead of
  recompiling from scratch);
* an **update log** recording every ingested delta in replayable order;
* **scheduled events** on the serving clock: :class:`IngestEvent` (apply a
  delta burst — given explicitly or synthesized from a seed) and
  :class:`SwapEvent` (warm-start refresh → persist → flip the cluster).
  Events fire at the top of ``serve_many``/``serve`` once their timestamp is
  due, so under a :class:`repro.simulate.TraceClock` replay the whole
  timeline — bursts, refreshes, flips — is a pure function of the trace and
  the seeds;
* the **generation ledger** (``bundles``): every generation ever served,
  kept addressable so cross-generation oracles can re-derive any answer
  against the exact tables that produced it.

The session itself quacks like a service (``serve``/``serve_many`` plus the
reference attributes oracles read), so :class:`repro.simulate.ReplayDriver`
drives it unchanged.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import (Callable, Dict, FrozenSet, List, Optional, Sequence, Set,
                    Tuple, Union)

from ..pipeline.artifacts import ArtifactStore
from ..pipeline.errors import ArtifactError
from .log import AppliedDelta, PathLike, UpdateDelta, UpdateLog, synthesize_deltas
from .refresh import GenerationBundle, RefreshConfig, refresh_generation, save_generation
from .swap import EpochSwapCoordinator, SwapInterrupted, SwapReport


@dataclass(frozen=True)
class IngestEvent:
    """A delta burst due at ``at_s`` on the serving clock.

    Provide explicit ``deltas``, or a ``count``/``seed`` pair to synthesize
    them against the staging graph *at fire time* (deterministic: the staging
    graph's state at any event time is itself a pure function of the trace).
    """

    at_s: float
    deltas: Tuple[UpdateDelta, ...] = ()
    count: int = 0
    seed: int = 0


@dataclass(frozen=True)
class SwapEvent:
    """A refresh-and-flip due at ``at_s`` on the serving clock."""

    at_s: float


LiveEvent = Union[IngestEvent, SwapEvent]


class LiveSession:
    """Zero-downtime streaming updates over a running cluster."""

    def __init__(self, cluster, base: GenerationBundle, *,
                 clock: Optional[Callable[[], float]] = None,
                 log: Optional[UpdateLog] = None,
                 refresh_config: Optional[RefreshConfig] = None,
                 schedule: Sequence[LiveEvent] = (),
                 store: Optional[ArtifactStore] = None,
                 injector=None,
                 log_path: Optional[PathLike] = None) -> None:
        self.cluster = cluster
        self.log = log if log is not None else UpdateLog()
        self.refresh_config = refresh_config or RefreshConfig()
        self.store = store
        self.clock = clock
        self.injector = injector
        #: Optional JSONL write-ahead log: every ingested delta is appended
        #: here before serving resumes, and a torn tail (crash mid-append)
        #: is detected and re-synced from the in-memory log on the next burst.
        self.log_path = None if log_path is None else Path(log_path)
        self.coordinator = EpochSwapCoordinator(cluster, clock=clock,
                                                injector=injector)
        #: Every generation ever served, by number (the oracle ledger).
        self.bundles: Dict[int, GenerationBundle] = {base.generation: base}
        self.current = base
        self._staging = copy.deepcopy(base.graph)
        self._touched: Set[int] = set()
        self._pending = sorted(schedule, key=lambda event: event.at_s)
        if self._pending and clock is None:
            raise ValueError("a scheduled live session needs an explicit "
                             "clock (e.g. the replay's TraceClock)")
        self.applied: List[AppliedDelta] = []
        #: Degraded-serving provenance stamped on responses ("quarantined"
        #: after a rejected generation, "swap_interrupted" while a crashed
        #: swap awaits resume); cleared by the next completed swap.
        self._fault_note: Optional[str] = None
        #: Sticky marker: once a generation is quarantined the session has
        #: skipped a rung of the rollout ladder for good — cache warm-state
        #: and generation numbering diverge from the fault-free replay for
        #: the rest of the run, even after later swaps succeed.  Unlike
        #: ``_fault_note`` this never clears.
        self._degraded: Optional[str] = None
        self._interrupted: Optional[Tuple[GenerationBundle, FrozenSet[int],
                                          FrozenSet[int]]] = None
        if self.log_path is not None:
            self.log.save_jsonl(self.log_path)

    # ------------------------------------------------------------------ #
    # the serving facade (ReplayDriver-compatible)
    # ------------------------------------------------------------------ #
    def serve_many(self, requests):
        self._recover_interrupted()
        self._fire_due_events()
        return self._stamp_fault(self.cluster.serve_many(requests))

    def serve(self, request):
        self._recover_interrupted()
        self._fire_due_events()
        return self._stamp_fault([self.cluster.serve(request)])[0]

    def _stamp_fault(self, responses):
        """Mark answers served under a degraded live plane with provenance.

        While a quarantine keeps the session on an older generation, or a
        crashed swap leaves the cluster serving mixed generations, every
        answer that is not already fault-stamped by the routing layer carries
        the live plane's note — the fault-tolerance oracle matches it against
        the ledger instead of demanding bit-identity with the clean replay.
        """
        note = self._fault_note or self._degraded
        if note is not None:
            for response in responses:
                if response.fault is None:
                    response.fault = note
        return responses

    # reference surface (oracles, reports) ------------------------------ #
    @property
    def graph(self):
        return self.cluster.graph

    @property
    def recommender(self):
        return self.cluster.recommender

    @property
    def tiers(self):
        return self.cluster.tiers

    @property
    def generation(self) -> int:
        return self.current.generation

    # ------------------------------------------------------------------ #
    # the update loop
    # ------------------------------------------------------------------ #
    def _fire_due_events(self) -> None:
        if not self._pending:
            return
        now = self.clock()
        while self._pending and self._pending[0].at_s <= now:
            event = self._pending.pop(0)
            if isinstance(event, IngestEvent):
                deltas = list(event.deltas)
                if event.count:
                    deltas.extend(synthesize_deltas(
                        self._staging, event.count, seed=event.seed))
                self.ingest(deltas)
            elif isinstance(event, SwapEvent):
                self.swap()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown live event {type(event).__name__}")

    def ingest(self, deltas: Sequence[UpdateDelta]) -> AppliedDelta:
        """Append ``deltas`` to the log and fold them into the staging graph.

        Serving is untouched: the current generation keeps answering from its
        frozen tables.  The staging graph's CSR view is refreshed via the
        incremental delta patch, so repeated small bursts stay cheap.
        """
        offset = len(self.log)
        self.log.extend(deltas)
        applied = self.log.apply(self._staging, offset)
        self._touched |= applied.touched_entities | applied.new_entities
        self._staging.adjacency()  # fold the burst into the CSR view now
        self.applied.append(applied)
        if self.log_path is not None:
            self._sync_wal(offset)
        return applied

    def _sync_wal(self, offset: int) -> None:
        """Append the new burst to the JSONL write-ahead log.

        If an earlier append was torn (the file does not end in a newline —
        a crash mid-write), heal it first: truncate to the last valid record
        and re-append everything the in-memory log holds past it, so the WAL
        always ends the burst holding the full log, bit for bit.
        """
        start = offset
        path = self.log_path
        if path.exists() and path.stat().st_size > 0:
            with open(path, "rb") as handle:
                handle.seek(-1, 2)
                torn = handle.read(1) != b"\n"
            if torn:
                recovered = UpdateLog.load_jsonl(path, recover=True)
                start = len(recovered.events)
                if self.injector is not None:
                    self.injector.record_defense(
                        "torn_log_recovery", f"log:{path.name}",
                        f"re-synced {offset - start} torn record(s)")
        self.log.append_jsonl(path, self.log.events[start:])
        if self.injector is not None:
            self.injector.after_log_append(path)

    def swap(self) -> Optional[SwapReport]:
        """Refresh to generation N+1 from the staged deltas and flip the cluster.

        A no-op (returns ``None``) when nothing was ingested since the last
        swap — serving behaviour must stay bit-identical across a vacuous
        refresh.  Otherwise: warm-start refresh off the serving path, persist
        the generation (when a store is attached), **verify every persisted
        byte against its manifest checksum before any shard flips**, then
        flip every shard with scoped cache invalidation.

        Two degraded outcomes (both return ``None`` and stamp subsequent
        answers with fault provenance):

        * verification fails → the generation is quarantined on disk, the
          cluster keeps serving the current generation, and the staged
          deltas stay staged for a later retry (``fault`` = ``quarantined``);
        * an injected crash lands mid-flip → the already-flipped shards keep
          the new generation (exactly what a real crash leaves behind) and
          :meth:`serve_many` resumes the rollout on its next call
          (``fault`` = ``swap_interrupted`` until then).
        """
        bundle = refresh_generation(self.current, self._staging,
                                    log_offset=len(self.log),
                                    config=self.refresh_config)
        if bundle is self.current:
            return None
        if self.store is not None:
            generation = bundle.generation
            # Quarantined generation numbers are burned, never reused: a
            # retry after a rejected generation persists under the next
            # free number so the quarantined bytes stay put for forensics.
            while self.store.generation_store(generation).is_quarantined:
                generation += 1
            if generation != bundle.generation:
                bundle = dataclasses.replace(bundle, generation=generation)
            gen_store = save_generation(self.store, bundle, self.log)
            if self.injector is not None:
                self.injector.after_generation_saved(gen_store,
                                                     bundle.generation)
            try:
                gen_store.verify_files()
            except ArtifactError as error:
                gen_store.quarantine(str(error))
                if self.injector is not None:
                    self.injector.record_defense(
                        "quarantine", f"generation:{bundle.generation}",
                        error.message)
                self._fault_note = "quarantined"
                self._degraded = "quarantined"
                return None
        try:
            report = self.coordinator.swap_to(bundle, self._touched)
        except SwapInterrupted as interrupt:
            # Some shards already serve the new generation: register the
            # bundle so oracles can address it, remember what recovery needs.
            self.bundles[bundle.generation] = bundle
            self._interrupted = (bundle, frozenset(self._touched),
                                 frozenset(interrupt.flipped))
            self._fault_note = "swap_interrupted"
            return None
        self._finalize_swap(bundle)
        return report

    def _finalize_swap(self, bundle: GenerationBundle) -> None:
        self.bundles[bundle.generation] = bundle
        self.current = bundle
        self._staging = copy.deepcopy(bundle.graph)
        self._touched = set()
        self._fault_note = None

    def _recover_interrupted(self) -> None:
        """Resume a crashed swap: flip the shards the crash left behind.

        Runs at the top of every serve call, so recovery is deterministic on
        the trace timeline — the first burst after the crash completes the
        rollout (skipping the shards that already flipped) before any of its
        requests dispatch.  A crash during the resume re-enters the same
        interrupted state and the next burst tries again.
        """
        if self._interrupted is None:
            return
        bundle, touched, flipped = self._interrupted
        self._interrupted = None
        try:
            report = self.coordinator.swap_to(bundle, set(touched),
                                              skip_shards=flipped)
        except SwapInterrupted as interrupt:
            self._interrupted = (bundle, touched, frozenset(interrupt.flipped))
            return
        self._finalize_swap(bundle)
        if self.injector is not None:
            self.injector.record_defense(
                "swap_recovery", f"generation:{bundle.generation}",
                f"resumed past shards {sorted(flipped)}; "
                f"completed {list(report.flip_order)}")

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def generation_views(self) -> Dict[int, object]:
        """A fresh single-shard view service per generation ever served.

        These are *off-path* reconstructions for the cross-generation
        oracles: same frozen tables and search hyper-parameters as the
        services that answered, but private caches — deriving an answer
        through a view never perturbs the live cluster.
        """
        clock = self.clock or self.cluster.workers[0].service._clock
        return {generation: bundle.build_service(
                    serving_config=self.cluster.workers[0].service.config,
                    clock=clock, name=f"view@gen{generation}")
                for generation, bundle in sorted(self.bundles.items())}

    def telemetry_snapshot(self) -> Dict:
        snapshot = self.cluster.telemetry_snapshot()
        snapshot["live"] = {
            "generation": self.current.generation,
            "generations_served": sorted(self.bundles),
            "log_length": len(self.log),
            "log_signature": self.log.signature(),
            "pending_events": len(self._pending),
            "staged_deltas": len(self.log) - self.current.log_offset,
            "staging_compile_stats": self._staging.adjacency_compile_stats(),
            "swaps": [report.as_dict() for report in self.coordinator.reports],
            "fault_note": self._fault_note or self._degraded,
            "interrupted_swap": (self._interrupted is not None),
        }
        return snapshot
