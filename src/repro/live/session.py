"""The live session: streaming ingestion and generation swaps around serving.

:class:`LiveSession` wraps a running :class:`repro.cluster.ClusterService`
and manages the whole zero-downtime update loop:

* a **staging graph** — a private deepcopy of the serving generation's graph
  that ingestion mutates.  The serving generation's graph object is never
  touched, so every in-flight and cached answer stays internally consistent;
  the staging graph's CSR view is kept fresh *incrementally*
  (:func:`repro.kg.patch_adjacency` folds each burst in instead of
  recompiling from scratch);
* an **update log** recording every ingested delta in replayable order;
* **scheduled events** on the serving clock: :class:`IngestEvent` (apply a
  delta burst — given explicitly or synthesized from a seed) and
  :class:`SwapEvent` (warm-start refresh → persist → flip the cluster).
  Events fire at the top of ``serve_many``/``serve`` once their timestamp is
  due, so under a :class:`repro.simulate.TraceClock` replay the whole
  timeline — bursts, refreshes, flips — is a pure function of the trace and
  the seeds;
* the **generation ledger** (``bundles``): every generation ever served,
  kept addressable so cross-generation oracles can re-derive any answer
  against the exact tables that produced it.

The session itself quacks like a service (``serve``/``serve_many`` plus the
reference attributes oracles read), so :class:`repro.simulate.ReplayDriver`
drives it unchanged.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..pipeline.artifacts import ArtifactStore
from .log import AppliedDelta, UpdateDelta, UpdateLog, synthesize_deltas
from .refresh import GenerationBundle, RefreshConfig, refresh_generation, save_generation
from .swap import EpochSwapCoordinator, SwapReport


@dataclass(frozen=True)
class IngestEvent:
    """A delta burst due at ``at_s`` on the serving clock.

    Provide explicit ``deltas``, or a ``count``/``seed`` pair to synthesize
    them against the staging graph *at fire time* (deterministic: the staging
    graph's state at any event time is itself a pure function of the trace).
    """

    at_s: float
    deltas: Tuple[UpdateDelta, ...] = ()
    count: int = 0
    seed: int = 0


@dataclass(frozen=True)
class SwapEvent:
    """A refresh-and-flip due at ``at_s`` on the serving clock."""

    at_s: float


LiveEvent = Union[IngestEvent, SwapEvent]


class LiveSession:
    """Zero-downtime streaming updates over a running cluster."""

    def __init__(self, cluster, base: GenerationBundle, *,
                 clock: Optional[Callable[[], float]] = None,
                 log: Optional[UpdateLog] = None,
                 refresh_config: Optional[RefreshConfig] = None,
                 schedule: Sequence[LiveEvent] = (),
                 store: Optional[ArtifactStore] = None) -> None:
        self.cluster = cluster
        self.log = log if log is not None else UpdateLog()
        self.refresh_config = refresh_config or RefreshConfig()
        self.store = store
        self.clock = clock
        self.coordinator = EpochSwapCoordinator(cluster, clock=clock)
        #: Every generation ever served, by number (the oracle ledger).
        self.bundles: Dict[int, GenerationBundle] = {base.generation: base}
        self.current = base
        self._staging = copy.deepcopy(base.graph)
        self._touched: Set[int] = set()
        self._pending = sorted(schedule, key=lambda event: event.at_s)
        if self._pending and clock is None:
            raise ValueError("a scheduled live session needs an explicit "
                             "clock (e.g. the replay's TraceClock)")
        self.applied: List[AppliedDelta] = []

    # ------------------------------------------------------------------ #
    # the serving facade (ReplayDriver-compatible)
    # ------------------------------------------------------------------ #
    def serve_many(self, requests):
        self._fire_due_events()
        return self.cluster.serve_many(requests)

    def serve(self, request):
        self._fire_due_events()
        return self.cluster.serve(request)

    # reference surface (oracles, reports) ------------------------------ #
    @property
    def graph(self):
        return self.cluster.graph

    @property
    def recommender(self):
        return self.cluster.recommender

    @property
    def tiers(self):
        return self.cluster.tiers

    @property
    def generation(self) -> int:
        return self.current.generation

    # ------------------------------------------------------------------ #
    # the update loop
    # ------------------------------------------------------------------ #
    def _fire_due_events(self) -> None:
        if not self._pending:
            return
        now = self.clock()
        while self._pending and self._pending[0].at_s <= now:
            event = self._pending.pop(0)
            if isinstance(event, IngestEvent):
                deltas = list(event.deltas)
                if event.count:
                    deltas.extend(synthesize_deltas(
                        self._staging, event.count, seed=event.seed))
                self.ingest(deltas)
            elif isinstance(event, SwapEvent):
                self.swap()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown live event {type(event).__name__}")

    def ingest(self, deltas: Sequence[UpdateDelta]) -> AppliedDelta:
        """Append ``deltas`` to the log and fold them into the staging graph.

        Serving is untouched: the current generation keeps answering from its
        frozen tables.  The staging graph's CSR view is refreshed via the
        incremental delta patch, so repeated small bursts stay cheap.
        """
        offset = len(self.log)
        self.log.extend(deltas)
        applied = self.log.apply(self._staging, offset)
        self._touched |= applied.touched_entities | applied.new_entities
        self._staging.adjacency()  # fold the burst into the CSR view now
        self.applied.append(applied)
        return applied

    def swap(self) -> Optional[SwapReport]:
        """Refresh to generation N+1 from the staged deltas and flip the cluster.

        A no-op (returns ``None``) when nothing was ingested since the last
        swap — serving behaviour must stay bit-identical across a vacuous
        refresh.  Otherwise: warm-start refresh off the serving path, persist
        the generation (when a store is attached), then flip every shard with
        scoped cache invalidation.
        """
        bundle = refresh_generation(self.current, self._staging,
                                    log_offset=len(self.log),
                                    config=self.refresh_config)
        if bundle is self.current:
            return None
        if self.store is not None:
            save_generation(self.store, bundle, self.log)
        report = self.coordinator.swap_to(bundle, self._touched)
        self.bundles[bundle.generation] = bundle
        self.current = bundle
        self._staging = copy.deepcopy(bundle.graph)
        self._touched = set()
        return report

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def generation_views(self) -> Dict[int, object]:
        """A fresh single-shard view service per generation ever served.

        These are *off-path* reconstructions for the cross-generation
        oracles: same frozen tables and search hyper-parameters as the
        services that answered, but private caches — deriving an answer
        through a view never perturbs the live cluster.
        """
        clock = self.clock or self.cluster.workers[0].service._clock
        return {generation: bundle.build_service(
                    serving_config=self.cluster.workers[0].service.config,
                    clock=clock, name=f"view@gen{generation}")
                for generation, bundle in sorted(self.bundles.items())}

    def telemetry_snapshot(self) -> Dict:
        snapshot = self.cluster.telemetry_snapshot()
        snapshot["live"] = {
            "generation": self.current.generation,
            "generations_served": sorted(self.bundles),
            "log_length": len(self.log),
            "log_signature": self.log.signature(),
            "pending_events": len(self._pending),
            "staged_deltas": len(self.log) - self.current.log_offset,
            "staging_compile_stats": self._staging.adjacency_compile_stats(),
            "swaps": [report.as_dict() for report in self.coordinator.reports],
        }
        return snapshot
