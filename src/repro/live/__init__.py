"""Zero-downtime streaming updates: ingest, refresh, swap — while serving.

The live stack turns the frozen, generation-0 serving story into a loop:

* :mod:`repro.live.log` — the append-only, replayable :class:`UpdateLog` of
  typed graph deltas (new interactions, items, relations);
* :mod:`repro.live.refresh` — :class:`GenerationBundle` and
  :func:`refresh_generation`: few-epoch warm-started TransE/CGGNN refreshes
  that derive artifact generation N+1 from N plus a log slice, persisted via
  :func:`save_generation` into nested generation stores;
* :mod:`repro.live.swap` — :class:`EpochSwapCoordinator`: shard-by-shard
  cluster flips with carried caches, carried telemetry and scoped
  invalidation;
* :mod:`repro.live.session` — :class:`LiveSession`: the serving-facade
  orchestrator that fires scheduled ingest/swap events on the replay clock
  and keeps the generation ledger the cross-generation oracles audit.
"""

from .log import (
    AppliedDelta,
    InteractionDelta,
    ItemDelta,
    NewItemInteraction,
    RelationDelta,
    TornLogError,
    UpdateDelta,
    UpdateLog,
    delta_from_dict,
    synthesize_deltas,
)
from .refresh import (
    GenerationBundle,
    RefreshConfig,
    load_generation_result,
    refresh_generation,
    save_generation,
)
from .session import IngestEvent, LiveEvent, LiveSession, SwapEvent
from .swap import EpochSwapCoordinator, SwapInterrupted, SwapReport

__all__ = [
    "AppliedDelta",
    "EpochSwapCoordinator",
    "SwapInterrupted",
    "TornLogError",
    "GenerationBundle",
    "IngestEvent",
    "InteractionDelta",
    "ItemDelta",
    "LiveEvent",
    "LiveSession",
    "NewItemInteraction",
    "RefreshConfig",
    "RelationDelta",
    "SwapEvent",
    "SwapReport",
    "UpdateDelta",
    "UpdateLog",
    "delta_from_dict",
    "load_generation_result",
    "refresh_generation",
    "save_generation",
    "synthesize_deltas",
]
