"""Generation-versioned shard swap: flip a live cluster to new artifacts.

The :class:`EpochSwapCoordinator` moves a running
:class:`repro.cluster.ClusterService` from generation N to generation N+1
one shard at a time:

1. **Build** a fresh :class:`repro.serving.RecommendationService` over the
   new generation's frozen tables (own recommender, cold milestone/action
   caches) — the expensive part, done entirely off the serving path;
2. **Flip** the shard via ``ClusterService.replace_shard_service``, carrying
   its result cache and telemetry across the generation boundary — serving
   history survives the swap;
3. **Invalidate, scoped**: only cache entries touching updated entities are
   dropped (``invalidate_entities``), so the carried cache keeps serving hits
   for everything the deltas did not reach, in its original eviction order.

Swaps are **zero-downtime by construction** under the deterministic replay
model: the coordinator runs between serving bursts (the live session fires
it before dispatching a batch), every shard always has *some* complete
generation installed, and mid-swap the cluster simply serves mixed
generations — each answer internally consistent with the generation that
produced it (the cross-generation oracle checks exactly this).  No request
is ever shed because of a swap; the CI smoke test asserts
``routing.shed == 0`` across a full ingest-and-swap replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .refresh import GenerationBundle


class SwapInterrupted(RuntimeError):
    """A swap died mid-flip (injected crash): the cluster serves mixed
    generations until :meth:`EpochSwapCoordinator.swap_to` is re-run with
    ``skip_shards`` set to the shards that already flipped.

    Carries everything the recovery path needs: the ``bundle`` being
    installed, the ``flipped`` shard ids that already serve it, and the
    underlying ``cause``.
    """

    def __init__(self, message: str, *, bundle: GenerationBundle,
                 flipped: Tuple[int, ...], cause: BaseException) -> None:
        super().__init__(message)
        self.bundle = bundle
        self.flipped = flipped
        self.cause = cause


@dataclass
class SwapReport:
    """What one generation swap did, shard by shard."""

    generation: int                     # the generation swapped *to*
    flip_order: Tuple[int, ...]         # shard ids in flip sequence
    touched_entities: int               # scope of the cache invalidation
    invalidated_entries: int            # cache entries dropped across shards
    preserved_entries: int              # cache entries that survived
    started_at_s: float
    completed_at_s: float

    @property
    def duration_s(self) -> float:
        return self.completed_at_s - self.started_at_s

    def as_dict(self) -> Dict:
        return {"generation": self.generation,
                "flip_order": list(self.flip_order),
                "touched_entities": self.touched_entities,
                "invalidated_entries": self.invalidated_entries,
                "preserved_entries": self.preserved_entries,
                "duration_s": self.duration_s}


class EpochSwapCoordinator:
    """Flips a cluster's shards to a new :class:`GenerationBundle`.

    ``clock`` should be the same clock the cluster's services run on (a
    :class:`repro.simulate.TraceClock` in deterministic replays) so the
    report's timestamps live on the serving timeline.
    """

    def __init__(self, cluster, clock: Optional[Callable[[], float]] = None,
                 injector=None) -> None:
        if not hasattr(cluster, "replace_shard_service"):
            raise TypeError("cluster must expose replace_shard_service() "
                            "(a repro.cluster.ClusterService)")
        self.cluster = cluster
        self.clock = clock
        self.injector = injector
        self.reports: List[SwapReport] = []

    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        if self.clock is not None:
            return self.clock()
        reference = self.cluster.workers[0].service
        return reference._clock()

    def swap_to(self, bundle: GenerationBundle,
                touched_entities: Set[int],
                skip_shards: FrozenSet[int] = frozenset()) -> SwapReport:
        """Install ``bundle`` on every shard, lowest shard id first.

        Each shard's replacement service is built *before* its flip, keeps
        the outgoing shard's cache and telemetry, and then drops exactly the
        cache entries whose user or items the generation's deltas touched.

        ``skip_shards`` resumes an interrupted swap: shards already flipped
        by a crashed attempt (the :class:`SwapInterrupted` exception names
        them) keep their installed service and are not flipped twice.

        With a fault injector attached, an :class:`InjectedCrash` fired
        between flips surfaces as :class:`SwapInterrupted` — the flips
        already made stay in place (exactly like a real crash would leave
        them), and the caller re-runs ``swap_to`` with ``skip_shards`` to
        finish the rollout.
        """
        started = self._now()
        touched = set(touched_entities)
        workers = [worker
                   for worker in sorted(self.cluster.workers,
                                        key=lambda w: w.shard_id)
                   if worker.shard_id not in skip_shards]
        swap_index = (self.injector.on_swap_begin()
                      if self.injector is not None else -1)
        flip_order: List[int] = []
        invalidated = 0
        preserved = 0
        for worker in workers:
            outgoing = worker.service
            incoming = bundle.build_service(
                serving_config=outgoing.config,
                clock=outgoing._clock,
                name=f"{self.cluster.name}/shard-{worker.shard_id}"
                     f"@gen{bundle.generation}")
            self.cluster.replace_shard_service(worker.shard_id, incoming)
            invalidated += incoming.invalidate_entities(touched)
            preserved += len(incoming.cache)
            flip_order.append(worker.shard_id)
            if self.injector is not None:
                try:
                    self.injector.on_shard_flip(swap_index, len(flip_order),
                                                len(workers))
                except Exception as crash:  # repro: ignore[EXC001] an injected mid-swap crash must surface as SwapInterrupted carrying the flipped set, so the session can resume the rollout deterministically
                    flipped = tuple(sorted(set(skip_shards) | set(flip_order)))
                    raise SwapInterrupted(
                        f"swap to generation {bundle.generation} interrupted "
                        f"after shards {flipped}",
                        bundle=bundle, flipped=flipped, cause=crash) from crash
        report = SwapReport(
            generation=bundle.generation,
            flip_order=tuple(flip_order),
            touched_entities=len(touched),
            invalidated_entries=invalidated,
            preserved_entries=preserved,
            started_at_s=started,
            completed_at_s=self._now(),
        )
        self.reports.append(report)
        return report
