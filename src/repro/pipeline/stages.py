"""The pipeline stages: one unit of work each, with persist/restore symmetry.

Each :class:`Stage` implements

* ``run(context)``    — compute the stage output from upstream context;
* ``save(context)``   — persist the output into the context's artifact store;
* ``load(context)``   — restore the output from the store without recomputing.

Stages communicate exclusively through the :class:`PipelineContext`, so the
:class:`~repro.pipeline.pipeline.Pipeline` can swap a ``run`` for a ``load``
whenever the artifact store already holds the stage's output under the current
fingerprint.

The stage set mirrors the paper's system diagram: ``data`` → ``kg`` →
``embed`` (TransE) → ``cggnn`` → ``train`` (DARL) → ``eval`` /
``serve-check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


from ..cggnn import CGGNN, Representations, train_cggnn
from ..darl import CADRL, PolicyConfig, SharedPolicyNetworks
from ..darl.trainer import DARLTrainer, EpochStats
from ..data import load_dataset, split_interactions
from ..data.io import load_dataset_from_directory, save_dataset
from ..data.schema import Interaction, InteractionDataset, TrainTestSplit
from ..data.splits import test_user_items
from ..embeddings import TransEModel, train_transe
from ..eval import evaluate_recommender
from ..kg import build_knowledge_graph
from .artifacts import ArtifactStore
from .config import RunConfig
from .errors import PipelineError


@dataclass
class PipelineContext:
    """Mutable blackboard shared by the stages of one pipeline run."""

    config: RunConfig
    store: Optional[ArtifactStore] = None
    dataset: Optional[InteractionDataset] = None
    split: Optional[TrainTestSplit] = None
    graph: Any = None
    category_graph: Any = None
    builder: Any = None
    transe: Optional[TransEModel] = None
    transe_losses: List[float] = field(default_factory=list)
    representations: Optional[Representations] = None
    cggnn_losses: List[float] = field(default_factory=list)
    policy: Optional[SharedPolicyNetworks] = None
    training_history: List[EpochStats] = field(default_factory=list)
    cadrl: Optional[CADRL] = None
    eval_metrics: Optional[Dict[str, Any]] = None
    serve_report: Optional[Dict[str, Any]] = None

    def require(self, *names: str) -> None:
        missing = [name for name in names if getattr(self, name) is None]
        if missing:
            raise RuntimeError(f"pipeline context missing {missing}; "
                               "upstream stages did not run")


class Stage:
    """Base class: a named unit of work with explicit dependencies."""

    name: str = ""
    requires: tuple = ()

    def run(self, context: PipelineContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def save(self, context: PipelineContext) -> Dict[str, Any]:
        """Persist outputs; returns manifest metadata.  No-op by default."""
        return {}

    def load(self, context: PipelineContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def loadable(self, store: ArtifactStore) -> bool:
        """Whether the stage's files are actually present (manifest aside)."""
        return True


class DataStage(Stage):
    """Generate (or restore) the dataset and its 70/30 per-user split."""

    name = "data"

    def run(self, context: PipelineContext) -> None:
        data = context.config.data
        context.dataset = load_dataset(data.dataset, scale=data.scale,
                                       seed=data.dataset_seed)
        context.split = split_interactions(context.dataset,
                                           train_fraction=data.train_fraction,
                                           seed=data.split_seed)

    def save(self, context: PipelineContext) -> Dict[str, Any]:
        store = context.store
        save_dataset(context.dataset, store.stage_dir(self.name) / "dataset")
        store.save_json(self.name, "split.json", {
            "train": [_interaction_to_list(i) for i in context.split.train],
            "test": [_interaction_to_list(i) for i in context.split.test],
        })
        return {"users": context.dataset.num_users,
                "items": context.dataset.num_items,
                "interactions": context.dataset.num_interactions,
                "train": len(context.split.train),
                "test": len(context.split.test)}

    def load(self, context: PipelineContext) -> None:
        store = context.store
        context.dataset = load_dataset_from_directory(
            store.stage_dir(self.name) / "dataset")
        payload = store.load_json(self.name, "split.json")
        context.split = TrainTestSplit(
            train=[_interaction_from_list(row) for row in payload["train"]],
            test=[_interaction_from_list(row) for row in payload["test"]],
        )

    def loadable(self, store: ArtifactStore) -> bool:
        return ((store.stage_dir(self.name) / "dataset" / "meta.json").exists()
                and store.has_file(self.name, "split.json"))


class KGStage(Stage):
    """Build the knowledge graph and category graph from the training split.

    The build is deterministic and cheap relative to training, so ``load``
    simply rebuilds from the restored dataset; only the statistics are
    persisted (for bookkeeping and the manifest).
    """

    name = "kg"
    requires = ("data",)

    def run(self, context: PipelineContext) -> None:
        context.require("dataset", "split")
        context.graph, context.category_graph, context.builder = \
            build_knowledge_graph(context.dataset, context.split.train)

    def save(self, context: PipelineContext) -> Dict[str, Any]:
        stats = {key: value for key, value in context.graph.statistics().items()}
        context.store.save_json(self.name, "statistics.json", stats)
        return stats

    def load(self, context: PipelineContext) -> None:
        self.run(context)


class EmbedStage(Stage):
    """TransE pre-training of entity/relation embeddings (Section IV-B.1)."""

    name = "embed"
    requires = ("kg",)

    def run(self, context: PipelineContext) -> None:
        context.require("graph")
        context.transe, context.transe_losses = train_transe(
            context.graph, context.config.model.transe)

    def save(self, context: PipelineContext) -> Dict[str, Any]:
        context.store.save_arrays(self.name, "transe.npz", {
            "entity": context.transe.entity_embeddings,
            "relation": context.transe.relation_embeddings,
        })
        context.store.save_json(self.name, "losses.json", context.transe_losses)
        final = context.transe_losses[-1] if context.transe_losses else None
        return {"epochs": len(context.transe_losses), "final_loss": final}

    def load(self, context: PipelineContext) -> None:
        context.require("graph")
        arrays = context.store.load_arrays(self.name, "transe.npz")
        if arrays["entity"].shape[0] != context.graph.num_entities:
            raise ValueError(
                f"persisted TransE table has {arrays['entity'].shape[0]} entities "
                f"but the graph has {context.graph.num_entities}; the artifact "
                "directory belongs to a different dataset")
        context.transe = TransEModel.from_arrays(arrays["entity"], arrays["relation"],
                                                 context.config.model.transe)
        context.transe_losses = list(context.store.load_json(self.name, "losses.json"))

    def loadable(self, store: ArtifactStore) -> bool:
        return store.has_file(self.name, "transe.npz")


class CGGNNStage(Stage):
    """Refine item representations with the CGGNN (or export static TransE)."""

    name = "cggnn"
    requires = ("embed",)

    def run(self, context: PipelineContext) -> None:
        context.require("graph", "transe")
        model_config = context.config.model
        cggnn = CGGNN(context.graph, context.transe, model_config.cggnn)
        if model_config.use_cggnn:
            context.representations, context.cggnn_losses = train_cggnn(
                context.graph, cggnn, model_config.cggnn_training)
        else:
            context.representations = cggnn.static_representations()
            context.cggnn_losses = []

    def save(self, context: PipelineContext) -> Dict[str, Any]:
        representations = context.representations
        context.store.save_arrays(self.name, "representations.npz", {
            "entity": representations.entity,
            "relation": representations.relation,
            "category": representations.category,
        })
        context.store.save_json(self.name, "losses.json", context.cggnn_losses)
        return {"epochs": len(context.cggnn_losses),
                "dim": representations.dim,
                "use_cggnn": context.config.model.use_cggnn}

    def load(self, context: PipelineContext) -> None:
        arrays = context.store.load_arrays(self.name, "representations.npz")
        context.representations = Representations(entity=arrays["entity"],
                                                  relation=arrays["relation"],
                                                  category=arrays["category"])
        context.cggnn_losses = list(context.store.load_json(self.name, "losses.json"))

    def loadable(self, store: ArtifactStore) -> bool:
        return store.has_file(self.name, "representations.npz")


class TrainStage(Stage):
    """DARL training of the shared dual-agent policy (Section IV-C).

    After ``run`` *or* ``load``, the stage assembles the :class:`CADRL`
    facade (a fresh :class:`~repro.darl.inference.PathRecommender` over the
    restored components), so downstream stages and callers never distinguish a
    trained stack from a reloaded one.
    """

    name = "train"
    requires = ("cggnn",)

    def run(self, context: PipelineContext) -> None:
        context.require("graph", "category_graph", "representations", "builder")
        model_config = context.config.model
        trainer = DARLTrainer(context.graph, context.category_graph,
                              context.representations, model_config.darl)
        user_items = _entity_train_items(context)
        context.training_history = trainer.train(user_items)
        context.policy = trainer.policy
        self._assemble(context)

    def save(self, context: PipelineContext) -> Dict[str, Any]:
        context.store.save_arrays(self.name, "policy.npz",
                                  context.policy.state_dict())
        context.store.save_json(self.name, "history.json", [
            {"epoch": s.epoch, "mean_entity_reward": s.mean_entity_reward,
             "mean_category_reward": s.mean_category_reward,
             "hit_rate": s.hit_rate, "policy_loss": s.policy_loss}
            for s in context.training_history
        ])
        final_hit = (context.training_history[-1].hit_rate
                     if context.training_history else None)
        return {"epochs": len(context.training_history),
                "parameters": context.policy.num_parameters(),
                "final_hit_rate": final_hit}

    def load(self, context: PipelineContext) -> None:
        context.require("representations")
        model_config = context.config.model
        policy_config = PolicyConfig(
            embedding_dim=context.representations.dim,
            hidden_size=model_config.darl.hidden_size,
            mlp_hidden=model_config.darl.mlp_hidden,
            share_history=model_config.darl.share_history,
            seed=model_config.darl.seed,
        )
        policy = SharedPolicyNetworks(policy_config)
        policy.load_state_dict(context.store.load_arrays(self.name, "policy.npz"))
        context.policy = policy
        history = context.store.load_json(self.name, "history.json")
        context.training_history = [EpochStats(**entry) for entry in history]
        self._assemble(context)

    def loadable(self, store: ArtifactStore) -> bool:
        return store.has_file(self.name, "policy.npz")

    @staticmethod
    def _assemble(context: PipelineContext) -> None:
        context.cadrl = CADRL.from_components(
            config=context.config.model,
            dataset=context.dataset,
            split=context.split,
            graph=context.graph,
            category_graph=context.category_graph,
            builder=context.builder,
            representations=context.representations,
            policy=context.policy,
            training_history=context.training_history,
        )


class EvalStage(Stage):
    """Held-out ranking metrics under the paper's protocol (NDCG/Recall/HR/P)."""

    name = "eval"
    requires = ("train",)

    def run(self, context: PipelineContext) -> None:
        context.require("cadrl", "split")
        eval_config = context.config.eval
        users = None
        if eval_config.max_eval_users is not None:
            users = sorted(test_user_items(context.split))[:eval_config.max_eval_users]
        result = evaluate_recommender(context.cadrl, context.split,
                                      top_k=eval_config.top_k, users=users)
        context.eval_metrics = {"metrics": result.metrics,
                                "num_users": result.num_users,
                                "top_k": eval_config.top_k}

    def save(self, context: PipelineContext) -> Dict[str, Any]:
        context.store.save_json(self.name, "metrics.json", context.eval_metrics)
        return dict(context.eval_metrics["metrics"])

    def load(self, context: PipelineContext) -> None:
        context.eval_metrics = context.store.load_json(self.name, "metrics.json")

    def loadable(self, store: ArtifactStore) -> bool:
        return store.has_file(self.name, "metrics.json")


class ServeCheckStage(Stage):
    """Boot the serving facade over the trained stack and verify it end to end.

    The check serves a sample of warm users twice — the repeat must be a cache
    hit with an identical payload — and replays every full-search answer
    against a direct ``PathRecommender`` search (the same exactness contract
    as :class:`repro.simulate.FullSearchOracle`).

    The facade is booted per the run's cluster spec: a plain
    :class:`repro.serving.RecommendationService` for the default single-shard
    topology, a :class:`repro.cluster.ClusterService` (including any boot-time
    failure injection) when ``config.cluster.num_shards > 1`` — the check
    itself is identical because the cluster exposes the same surface.
    """

    name = "serve-check"
    requires = ("train",)
    sample_users = 5

    def run(self, context: PipelineContext) -> None:
        context.require("cadrl")
        cadrl = context.cadrl
        cluster_config = context.config.cluster
        if cluster_config.is_clustered:
            from ..cluster import ClusterService  # deferred: keep stage imports light

            service = ClusterService.from_cadrl(
                cadrl, transe=context.transe, config=cluster_config,
                serving_config=context.config.serving)
        else:
            from ..serving import RecommendationService

            service = RecommendationService.from_cadrl(
                cadrl, transe=context.transe, config=context.config.serving)
        users = sorted(_entity_train_items(context))[: self.sample_users]
        top_k = context.config.serving.default_top_k
        requests = service.build_requests(users, top_k=top_k)

        mismatches: List[str] = []
        first_pass = [service.serve(request) for request in requests]
        second_pass = [service.serve(request) for request in requests]
        for request, first, second in zip(requests, first_pass, second_pass):
            if not second.cache_hit:
                mismatches.append(f"user {request.user_entity}: repeat was not a cache hit")
            if first.items != second.items:
                mismatches.append(f"user {request.user_entity}: cached payload diverged")
            expected = [path.item_entity for path in cadrl.recommender.recommend(
                request.user_entity, exclude_items=set(request.exclude_items),
                top_k=request.top_k)]
            if first.items != expected:
                mismatches.append(
                    f"user {request.user_entity}: served {first.items} != "
                    f"direct search {expected}")
        context.serve_report = {
            "checked_users": len(users),
            "top_k": top_k,
            "num_shards": cluster_config.num_shards,
            "replication_factor": cluster_config.replication_factor,
            "mismatches": mismatches,
            "ok": not mismatches,
            "telemetry": service.telemetry_snapshot(),
        }
        if mismatches:
            # Persist the failing evidence (no completion mark: the stage
            # stays incomplete, so a re-run re-checks) before aborting.
            if context.store is not None:
                context.store.save_json(self.name, "report.json",
                                        context.serve_report)
            raise PipelineError("serve-check failed: " + "; ".join(mismatches))

    def save(self, context: PipelineContext) -> Dict[str, Any]:
        context.store.save_json(self.name, "report.json", context.serve_report)
        return {"checked_users": context.serve_report["checked_users"],
                "ok": context.serve_report["ok"]}

    def load(self, context: PipelineContext) -> None:
        context.serve_report = context.store.load_json(self.name, "report.json")

    def loadable(self, store: ArtifactStore) -> bool:
        return store.has_file(self.name, "report.json")


def _entity_train_items(context: PipelineContext) -> Dict[int, List[int]]:
    """User entity → training item entities (the DARL reward targets)."""
    from ..data.splits import train_user_items

    items_by_user = train_user_items(context.split)
    builder = context.builder
    return {builder.user_to_entity(user): [builder.item_to_entity(item)
                                           for item in items]
            for user, items in items_by_user.items()}


def _interaction_to_list(interaction: Interaction) -> List[Any]:
    return [interaction.user_id, interaction.item_id,
            list(interaction.mentioned_feature_ids)]


def _interaction_from_list(row: List[Any]) -> Interaction:
    return Interaction(user_id=int(row[0]), item_id=int(row[1]),
                       mentioned_feature_ids=tuple(int(f) for f in row[2]))


ALL_STAGES = (DataStage, KGStage, EmbedStage, CGGNNStage, TrainStage,
              EvalStage, ServeCheckStage)
