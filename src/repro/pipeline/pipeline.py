"""Pipeline execution: dependency-ordered stages with fingerprint caching.

``Pipeline(config, store_dir).run()`` walks the stage DAG (``data`` → ``kg``
→ ``embed`` → ``cggnn`` → ``train`` → ``eval`` / ``serve-check``); a stage
whose output already exists in the artifact store *under the current
fingerprint* is restored from disk instead of recomputed, so re-running the
same :class:`RunConfig` is (nearly) free and editing one stage's knobs only
re-runs that stage and its dependants.

``save_pipeline`` / ``load_pipeline`` are the first-class persistence API: a
trained stack round-trips through a plain directory, and a fresh process can
boot a :class:`repro.serving.RecommendationService` from it without touching
any training code (see ``RecommendationService.from_artifacts``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .artifacts import ArtifactStore
from .config import STAGE_DEPENDENCIES, STAGE_NAMES, RunConfig
from .errors import PipelineError
from .stages import ALL_STAGES, PipelineContext, Stage

PathLike = Union[str, Path]


@dataclass
class PipelineResult:
    """Everything a pipeline run produced, plus per-stage provenance.

    ``statuses`` maps stage name → ``"ran"`` (computed fresh), ``"cached"``
    (restored from the artifact store) or ``"skipped"`` (not requested).
    """

    config: RunConfig
    context: PipelineContext
    statuses: Dict[str, str] = field(default_factory=dict)

    # convenience accessors over the context ---------------------------- #
    @property
    def dataset(self):
        return self.context.dataset

    @property
    def split(self):
        return self.context.split

    @property
    def graph(self):
        return self.context.graph

    @property
    def cadrl(self):
        return self.context.cadrl

    @property
    def transe(self):
        return self.context.transe

    @property
    def representations(self):
        return self.context.representations

    @property
    def eval_metrics(self) -> Optional[Dict]:
        return self.context.eval_metrics

    @property
    def serve_report(self) -> Optional[Dict]:
        return self.context.serve_report

    @property
    def artifacts_dir(self) -> Optional[Path]:
        return self.context.store.root if self.context.store else None

    def service(self, serving_config=None, **kwargs):
        """The serving facade the run's cluster spec asks for.

        A plain :class:`repro.serving.RecommendationService` for the default
        single-shard topology; a :class:`repro.cluster.ClusterService` when
        ``config.cluster.num_shards > 1`` — both expose the same
        ``serve``/``serve_many`` surface.
        """
        if self.config.cluster.is_clustered:
            return self.cluster_service(serving_config=serving_config, **kwargs)
        from ..serving import RecommendationService

        if self.cadrl is None:
            raise PipelineError("pipeline did not reach the train stage")
        return RecommendationService.from_cadrl(
            self.cadrl, transe=self.transe,
            config=serving_config or self.config.serving, **kwargs)

    def cluster_service(self, cluster_config=None, serving_config=None, **kwargs):
        """A :class:`repro.cluster.ClusterService` over the trained stack.

        ``cluster_config`` overrides the run's persisted cluster spec (e.g.
        to replay the same artifacts under a different topology).
        """
        from ..cluster import ClusterService

        if self.cadrl is None:
            raise PipelineError("pipeline did not reach the train stage")
        return ClusterService.from_cadrl(
            self.cadrl, transe=self.transe,
            config=cluster_config or self.config.cluster,
            serving_config=serving_config or self.config.serving, **kwargs)

    def summary(self) -> str:
        """One line per stage: status and fingerprint prefix."""
        fingerprints = self.config.stage_fingerprints()
        lines = []
        for name in STAGE_NAMES:
            status = self.statuses.get(name, "skipped")
            lines.append(f"{name:<12} {status:<8} {fingerprints[name][:12]}")
        return "\n".join(lines)


class Pipeline:
    """Executes the stage DAG for one :class:`RunConfig`.

    Parameters
    ----------
    config:
        The declarative run description.
    store:
        Artifact directory (or an :class:`ArtifactStore`).  ``None`` runs
        fully in memory with no persistence and no caching.
    force:
        Recompute every requested stage even when a matching artifact exists.
    """

    def __init__(self, config: RunConfig,
                 store: Optional[Union[PathLike, ArtifactStore]] = None,
                 force: bool = False) -> None:
        config.validate()
        self.config = config
        if store is None or isinstance(store, ArtifactStore):
            self.store = store
        else:
            self.store = ArtifactStore(store)
        self.force = force
        self.stages: Dict[str, Stage] = {cls.name: cls() for cls in ALL_STAGES}

    # ------------------------------------------------------------------ #
    def resolve(self, until: Optional[Sequence[str]] = None) -> List[str]:
        """Stage names to execute, in dependency order.

        ``until`` selects target stages (default: all); dependencies are
        pulled in automatically.
        """
        targets = list(until) if until else list(STAGE_NAMES)
        unknown = [name for name in targets if name not in STAGE_DEPENDENCIES]
        if unknown:
            raise PipelineError(f"unknown stages {unknown}; "
                                f"available: {list(STAGE_NAMES)}")
        needed = set()

        def visit(name: str) -> None:
            if name in needed:
                return
            for dep in STAGE_DEPENDENCIES[name]:
                visit(dep)
            needed.add(name)

        for name in targets:
            visit(name)
        return [name for name in STAGE_NAMES if name in needed]

    # ------------------------------------------------------------------ #
    def run(self, until: Optional[Sequence[str]] = None,
            require_cached: bool = False) -> PipelineResult:
        """Execute (or restore) the requested stages.

        With ``require_cached=True`` a stage that would have to recompute
        raises :class:`PipelineError` instead — the load-only mode backing
        :func:`load_pipeline`.
        """
        context = PipelineContext(config=self.config, store=self.store)
        fingerprints = self.config.stage_fingerprints()
        statuses: Dict[str, str] = {}

        for name in self.resolve(until):
            stage = self.stages[name]
            fingerprint = fingerprints[name]
            cached = (self.store is not None
                      and not self.force
                      and self.store.is_complete(name, fingerprint)
                      and stage.loadable(self.store))
            if cached:
                stage.load(context)
                statuses[name] = "cached"
                continue
            if require_cached:
                recorded = self.store.fingerprint_of(name) if self.store else None
                reason = ("fingerprint mismatch: the artifacts were produced by a "
                          f"different configuration (recorded {recorded!r})"
                          if recorded else "stage artifact missing")
                raise PipelineError(
                    f"cannot load stage {name!r} from "
                    f"{self.store.root if self.store else '<memory>'}: {reason}")
            stage.run(context)
            if self.store is not None:
                self.store.begin(name)
                metadata = stage.save(context)
                self.store.complete(name, fingerprint, metadata)
            statuses[name] = "ran"
        # The config is recorded only once the requested stages completed: an
        # interrupted run under a *new* config must not clobber the record of
        # the config that produced the artifacts already on disk.  Load-only
        # runs never write (a mismatched config passed to load_pipeline would
        # corrupt the store).
        if self.store is not None and not require_cached:
            self.store.write_config(self.config.to_json() + "\n")
        return PipelineResult(config=self.config, context=context,
                              statuses=statuses)


# --------------------------------------------------------------------------- #
# first-class persistence API
# --------------------------------------------------------------------------- #
def save_pipeline(result: PipelineResult, path: PathLike) -> Path:
    """Persist a finished pipeline run into ``path`` (idempotent).

    If the run already used an artifact store at ``path`` this only fills the
    gaps; otherwise every stage the run produced is written out, so an
    in-memory run can be saved after the fact.
    """
    store = ArtifactStore(path)
    fingerprints = result.config.stage_fingerprints()
    store.write_config(result.config.to_json() + "\n")
    context = result.context
    previous_store, context.store = context.store, store
    try:
        for cls in ALL_STAGES:
            stage = cls()
            name = stage.name
            if result.statuses.get(name) is None:
                continue  # stage never ran in this result
            if store.is_complete(name, fingerprints[name]) and stage.loadable(store):
                continue
            store.begin(name)
            metadata = stage.save(context)
            store.complete(name, fingerprints[name], metadata)
    finally:
        context.store = previous_store
    return store.root


def load_pipeline(path: PathLike, until: Optional[Sequence[str]] = None,
                  config: Optional[RunConfig] = None,
                  generation: Optional[int] = None) -> PipelineResult:
    """Restore a persisted pipeline from ``path`` without any training.

    Reads the directory's ``config.json`` (unless an explicit ``config`` is
    given), then loads every requested stage from the artifact store.  A
    missing or fingerprint-mismatched stage raises :class:`PipelineError`
    instead of silently retraining.

    ``generation`` selects one artifact generation of a live-refreshed store
    (default: the latest; pre-generation stores only have generation 0).  A
    generation store falls back to the root ``config.json`` when it has none
    of its own — refreshes change arrays, not configuration.

    By default only the model stack (through ``train``) is restored — the
    typical serving boot path; pass ``until=("eval", "serve-check")`` to also
    restore persisted reports.
    """
    root_store = ArtifactStore(path)
    store = root_store.load(generation=generation)
    if store.root != root_store.root:
        # A live-refreshed generation: its nested store holds only the delta
        # slice and refreshed arrays, so the live loader rebuilds it on top
        # of the base artifacts (deferred import — pipeline stays live-free).
        from ..live.refresh import load_generation_result

        return load_generation_result(root_store, store, until=until,
                                      config=config)
    if config is None:
        config_path = (store.config_path if store.config_path.exists()
                       else root_store.config_path)
        if not config_path.exists():
            raise PipelineError(f"{root_store.root} has no config.json; "
                                "not a pipeline artifact directory")
        config = RunConfig.from_json(config_path.read_text())
    pipeline = Pipeline(config, store=store)
    return pipeline.run(until=until or ("train",), require_cached=True)
