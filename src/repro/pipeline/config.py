"""The unified run configuration: one typed object for the whole stack.

Every entry point used to hand-wire its own ``CADRLConfig`` + dataset + split
+ ``ServingConfig`` combination.  :class:`RunConfig` gathers them into a single
declarative description of a run that

* round-trips through JSON (``to_json`` / ``from_json``), so runs can be
  checked into configs, shipped to workers, and reproduced later;
* exposes a stable content :meth:`~RunConfig.fingerprint`, plus one
  fingerprint *per pipeline stage* (:meth:`~RunConfig.stage_fingerprints`)
  chained through the stage DAG — the cache keys of the
  :class:`~repro.pipeline.artifacts.ArtifactStore`.

``RunConfig`` reuses the existing stage dataclasses rather than duplicating
their fields: ``model`` is a full :class:`repro.darl.CADRLConfig` (which nests
the TransE/CGGNN/DARL/inference configurations) and ``serving`` is a
:class:`repro.serving.ServingConfig`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..cluster.config import ClusterConfig
from ..darl import CADRLConfig
from ..serving import ServingConfig

#: Bump when an on-disk artifact format or a stage algorithm changes in a way
#: that invalidates previously persisted artifacts.
PIPELINE_VERSION = 1

#: Stage names in dependency order (each stage depends on the previous ones it
#: names in STAGE_DEPENDENCIES).
STAGE_NAMES = ("data", "kg", "embed", "cggnn", "train", "eval", "serve-check")

STAGE_DEPENDENCIES: Dict[str, tuple] = {
    "data": (),
    "kg": ("data",),
    "embed": ("kg",),
    "cggnn": ("embed",),
    "train": ("cggnn",),
    "eval": ("train",),
    "serve-check": ("train",),
}


@dataclass
class DataConfig:
    """Which dataset to generate and how to split it.

    ``dataset_seed=None`` keeps the preset's canonical RNG stream; an explicit
    seed derives a new deterministic stream per preset (see
    :func:`repro.data.load_dataset`).
    """

    dataset: str = "beauty"
    scale: float = 1.0
    dataset_seed: Optional[int] = None
    split_seed: int = 0
    train_fraction: float = 0.7

    def validate(self) -> None:
        if not (0.0 < self.train_fraction < 1.0):
            raise ValueError("train_fraction must lie strictly between 0 and 1")
        if self.scale <= 0:
            raise ValueError("scale must be positive")


@dataclass
class EvalConfig:
    """Knobs of the ``eval`` stage (protocol of Section V-A)."""

    top_k: int = 10
    max_eval_users: Optional[int] = None

    def validate(self) -> None:
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")
        if self.max_eval_users is not None and self.max_eval_users <= 0:
            raise ValueError("max_eval_users must be positive when set")


# --------------------------------------------------------------------------- #
# generic dataclass <-> plain-dict conversion
# --------------------------------------------------------------------------- #
def config_to_dict(config: Any) -> Dict[str, Any]:
    """Recursively convert a (nested) config dataclass to JSON-safe dicts."""
    return dataclasses.asdict(config)


def config_from_dict(cls: type, data: Dict[str, Any]) -> Any:
    """Rebuild a config dataclass (recursively) from :func:`config_to_dict` output.

    Unknown keys raise ``ValueError`` so typos in hand-written JSON configs
    fail loudly instead of silently falling back to defaults.
    """
    hints = typing.get_type_hints(cls)
    field_types = {f.name: hints[f.name] for f in dataclasses.fields(cls)}
    unknown = set(data) - set(field_types)
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        target = field_types[name]
        if dataclasses.is_dataclass(target) and isinstance(value, dict):
            kwargs[name] = config_from_dict(target, value)
        elif typing.get_origin(target) is tuple and isinstance(value, list):
            kwargs[name] = tuple(value)
        else:
            kwargs[name] = value
    return cls(**kwargs)


def _model_from_dict(payload: Dict[str, Any]) -> CADRLConfig:
    """Rebuild a :class:`CADRLConfig` so the round-trip is *verbatim*.

    ``CADRLConfig.__post_init__`` re-propagates ``embedding_dim``/``seed``
    into every nested stage config on construction, which would silently
    clobber persisted nested overrides (e.g. ``transe.seed``).  Re-assigning
    the nested sections after construction (plain attribute writes do not
    trigger ``__post_init__``) restores exactly what the JSON says.
    """
    model = config_from_dict(CADRLConfig, payload)
    hints = typing.get_type_hints(CADRLConfig)
    for name, value in payload.items():
        target = hints[name]
        if dataclasses.is_dataclass(target) and isinstance(value, dict):
            setattr(model, name, config_from_dict(target, value))
    return model


def _fingerprint(payload: Dict[str, Any]) -> str:
    """Stable sha256 over a canonical JSON rendering of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class RunConfig:
    """One declarative description of a full CADRL run.

    Fields
    ------
    data:
        Dataset preset name, scale multiplier, generation seed and the 70/30
        split seed (:class:`DataConfig`).
    model:
        The complete model stack configuration — a
        :class:`repro.darl.CADRLConfig`, which nests ``transe``, ``cggnn``,
        ``cggnn_training``, ``darl`` and ``inference``.  ``model.seed`` and
        ``model.embedding_dim`` are propagated into every nested stage by
        ``CADRLConfig.__post_init__``.
    serving:
        Operational knobs of the serving facade
        (:class:`repro.serving.ServingConfig`) used by the ``serve-check``
        stage and :meth:`PipelineResult.service`.
    cluster:
        The serving topology (:class:`repro.cluster.ClusterConfig`): shard
        count, replication factor, ring seed, admission bounds and boot-time
        failure injection.  The default is a single unreplicated shard, i.e.
        the plain :class:`~repro.serving.RecommendationService`; with
        ``num_shards > 1`` the ``serve-check`` stage and
        :meth:`PipelineResult.service` boot a
        :class:`repro.cluster.ClusterService` instead.
    eval:
        Ranking cutoff and the optional evaluated-user cap
        (:class:`EvalConfig`).
    """

    data: DataConfig = field(default_factory=DataConfig)
    model: CADRLConfig = field(default_factory=CADRLConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    eval: EvalConfig = field(default_factory=EvalConfig)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_profile(cls, profile: str = "smoke", dataset: str = "beauty",
                     seed: int = 0) -> "RunConfig":
        """The two canonical configurations used across the repository.

        ``"smoke"`` mirrors ``ExperimentSetting.from_profile("smoke")`` (0.4×
        dataset scale, 3 DARL epochs, 30 evaluated users); ``"paper"`` the
        full-scale counterpart.
        """
        if profile not in ("smoke", "paper"):
            raise ValueError(f"unknown profile {profile!r}; choose 'smoke' or 'paper'")
        model = CADRLConfig.fast(embedding_dim=32, seed=seed)
        if profile == "smoke":
            model.darl.epochs = 3
            return cls(data=DataConfig(dataset=dataset, scale=0.4, split_seed=seed),
                       model=model,
                       eval=EvalConfig(max_eval_users=30))
        model.darl.epochs = 10
        return cls(data=DataConfig(dataset=dataset, scale=1.0, split_seed=seed),
                   model=model)

    def validate(self) -> None:
        self.data.validate()
        self.eval.validate()
        self.serving.validate()
        self.cluster.validate()

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {
            "pipeline_version": PIPELINE_VERSION,
            "data": config_to_dict(self.data),
            "model": config_to_dict(self.model),
            "serving": config_to_dict(self.serving),
            "cluster": config_to_dict(self.cluster),
            "eval": config_to_dict(self.eval),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunConfig":
        payload = dict(data)
        payload.pop("pipeline_version", None)
        unknown = set(payload) - {"data", "model", "serving", "cluster", "eval"}
        if unknown:
            raise ValueError(f"unknown RunConfig sections: {sorted(unknown)}")
        return cls(
            data=config_from_dict(DataConfig, payload.get("data", {})),
            model=_model_from_dict(payload.get("model", {})),
            serving=config_from_dict(ServingConfig, payload.get("serving", {})),
            cluster=config_from_dict(ClusterConfig, payload.get("cluster", {})),
            eval=config_from_dict(EvalConfig, payload.get("eval", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunConfig":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------ #
    # fingerprints
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Content hash of the whole configuration (stable across processes)."""
        return _fingerprint(self.to_dict())

    def stage_fingerprints(self) -> Dict[str, str]:
        """One cache key per stage, chained through the stage DAG.

        A stage's fingerprint covers exactly the configuration it reads plus
        the fingerprints of its dependencies, so editing (say) the DARL epoch
        count invalidates ``train``/``eval``/``serve-check`` but leaves the
        persisted dataset, TransE table and CGGNN representations reusable.
        """
        model = self.model
        own_inputs: Dict[str, Dict[str, Any]] = {
            "data": {"data": config_to_dict(self.data)},
            "kg": {},
            "embed": {"transe": config_to_dict(model.transe)},
            "cggnn": {"cggnn": config_to_dict(model.cggnn),
                      "cggnn_training": config_to_dict(model.cggnn_training),
                      "use_cggnn": model.use_cggnn},
            "train": {"darl": config_to_dict(model.darl)},
            "eval": {"eval": config_to_dict(self.eval),
                     "inference": config_to_dict(model.inference)},
            "serve-check": {"serving": config_to_dict(self.serving),
                            "cluster": config_to_dict(self.cluster),
                            "inference": config_to_dict(model.inference)},
        }
        fingerprints: Dict[str, str] = {}
        for name in STAGE_NAMES:
            payload = {
                "stage": name,
                "pipeline_version": PIPELINE_VERSION,
                "inputs": own_inputs[name],
                "upstream": [fingerprints[dep] for dep in STAGE_DEPENDENCIES[name]],
            }
            fingerprints[name] = _fingerprint(payload)
        return fingerprints
