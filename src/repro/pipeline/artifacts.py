"""On-disk persistence for pipeline stage outputs.

An :class:`ArtifactStore` manages one artifact directory::

    <root>/
      config.json          # the RunConfig that produced the artifacts
      manifest.json        # stage -> {fingerprint, metadata}; completion marks
      data/                # dataset TSVs (repro.data.io) + split.json
      embed/               # transe.npz
      cggnn/               # representations.npz + losses.json
      train/               # policy.npz + policy.json + history.json
      eval/                # metrics.json
      serve-check/         # report.json

A stage is *complete* iff the manifest records a fingerprint for it; the
pipeline compares that fingerprint against the current
:meth:`RunConfig.stage_fingerprints` entry to decide whether the persisted
artifact can be reused.  Manifest writes go through a temp-file rename so a
crash mid-write never leaves a truncated manifest behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
CONFIG_NAME = "config.json"


class ArtifactStore:
    """Directory-backed storage of per-stage artifacts with a manifest.

    Construction is side-effect free — directories appear on the first write
    (``begin``/``save_*``/``complete``), never on read paths, so probing a
    mistyped path with :func:`~repro.pipeline.load_pipeline` leaves no litter.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def config_path(self) -> Path:
        return self.root / CONFIG_NAME

    def read_manifest(self) -> Dict[str, Any]:
        if not self.manifest_path.exists():
            return {"stages": {}}
        manifest = json.loads(self.manifest_path.read_text())
        manifest.setdefault("stages", {})
        return manifest

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.manifest_path)

    def fingerprint_of(self, stage: str) -> Optional[str]:
        """The recorded fingerprint of a completed stage (None if absent)."""
        entry = self.read_manifest()["stages"].get(stage)
        return entry["fingerprint"] if entry else None

    def is_complete(self, stage: str, fingerprint: str) -> bool:
        """Whether ``stage`` finished under exactly this fingerprint."""
        return self.fingerprint_of(stage) == fingerprint

    def metadata_of(self, stage: str) -> Dict[str, Any]:
        entry = self.read_manifest()["stages"].get(stage) or {}
        return dict(entry.get("metadata", {}))

    # ------------------------------------------------------------------ #
    # stage lifecycle
    # ------------------------------------------------------------------ #
    def stage_dir(self, stage: str) -> Path:
        return self.root / stage

    def begin(self, stage: str) -> Path:
        """Invalidate ``stage`` (drop its completion mark) and return its dir.

        The stage directory is created but deliberately not wiped: partially
        written files are harmless because completion is manifest-gated.
        """
        manifest = self.read_manifest()
        if stage in manifest["stages"]:
            del manifest["stages"][stage]
            self._write_manifest(manifest)
        directory = self.stage_dir(stage)
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def write_config(self, text: str) -> None:
        """Persist the run configuration next to the manifest."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.config_path.write_text(text)

    def complete(self, stage: str, fingerprint: str,
                 metadata: Optional[Dict[str, Any]] = None) -> None:
        """Record ``stage`` as complete under ``fingerprint``."""
        manifest = self.read_manifest()
        manifest["stages"][stage] = {"fingerprint": fingerprint,
                                     "metadata": metadata or {}}
        self._write_manifest(manifest)

    # ------------------------------------------------------------------ #
    # payload helpers
    # ------------------------------------------------------------------ #
    def save_json(self, stage: str, name: str, payload: Any) -> Path:
        path = self.stage_dir(stage) / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   default=_json_default) + "\n")
        return path

    def load_json(self, stage: str, name: str) -> Any:
        return json.loads((self.stage_dir(stage) / name).read_text())

    def save_arrays(self, stage: str, name: str,
                    arrays: Dict[str, np.ndarray]) -> Path:
        """Persist named arrays as one ``.npz`` (names may contain dots)."""
        path = self.stage_dir(stage) / name
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        return path

    def load_arrays(self, stage: str, name: str) -> Dict[str, np.ndarray]:
        with np.load(self.stage_dir(stage) / name) as archive:
            return {key: np.array(archive[key]) for key in archive.files}

    def has_file(self, stage: str, name: str) -> bool:
        return (self.stage_dir(stage) / name).exists()


def _json_default(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value)!r}")
