"""On-disk persistence for pipeline stage outputs.

An :class:`ArtifactStore` manages one artifact directory::

    <root>/
      config.json          # the RunConfig that produced the artifacts
      manifest.json        # stage -> {fingerprint, metadata}; completion marks
      data/                # dataset TSVs (repro.data.io) + split.json
      embed/               # transe.npz
      cggnn/               # representations.npz + losses.json
      train/               # policy.npz + policy.json + history.json
      eval/                # metrics.json
      serve-check/         # report.json

A stage is *complete* iff the manifest records a fingerprint for it; the
pipeline compares that fingerprint against the current
:meth:`RunConfig.stage_fingerprints` entry to decide whether the persisted
artifact can be reused.  Manifest writes go through a temp-file rename so a
crash mid-write never leaves a truncated manifest behind.

**Generations.**  Live refreshes (``repro.live``) produce successive artifact
*generations* of the same run: the root directory is generation 0 and every
refresh lands under ``<root>/generations/<N>/`` as a full nested store whose
manifest carries a monotonically-increasing ``generation`` field.  Stores
written before generations existed have no ``generation`` key and read as
generation 0, so single-generation stores load unchanged;
:meth:`ArtifactStore.load` defaults to the latest generation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
CONFIG_NAME = "config.json"
GENERATIONS_DIR = "generations"


class ArtifactStore:
    """Directory-backed storage of per-stage artifacts with a manifest.

    Construction is side-effect free — directories appear on the first write
    (``begin``/``save_*``/``complete``), never on read paths, so probing a
    mistyped path with :func:`~repro.pipeline.load_pipeline` leaves no litter.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def config_path(self) -> Path:
        return self.root / CONFIG_NAME

    def read_manifest(self) -> Dict[str, Any]:
        if not self.manifest_path.exists():
            return {"stages": {}}
        manifest = json.loads(self.manifest_path.read_text())
        manifest.setdefault("stages", {})
        return manifest

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.manifest_path)

    def fingerprint_of(self, stage: str) -> Optional[str]:
        """The recorded fingerprint of a completed stage (None if absent)."""
        entry = self.read_manifest()["stages"].get(stage)
        return entry["fingerprint"] if entry else None

    def is_complete(self, stage: str, fingerprint: str) -> bool:
        """Whether ``stage`` finished under exactly this fingerprint."""
        return self.fingerprint_of(stage) == fingerprint

    def metadata_of(self, stage: str) -> Dict[str, Any]:
        entry = self.read_manifest()["stages"].get(stage) or {}
        return dict(entry.get("metadata", {}))

    # ------------------------------------------------------------------ #
    # stage lifecycle
    # ------------------------------------------------------------------ #
    def stage_dir(self, stage: str) -> Path:
        return self.root / stage

    def begin(self, stage: str) -> Path:
        """Invalidate ``stage`` (drop its completion mark) and return its dir.

        The stage directory is created but deliberately not wiped: partially
        written files are harmless because completion is manifest-gated.
        """
        manifest = self.read_manifest()
        if stage in manifest["stages"]:
            del manifest["stages"][stage]
            self._write_manifest(manifest)
        directory = self.stage_dir(stage)
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def write_config(self, text: str) -> None:
        """Persist the run configuration next to the manifest."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.config_path.write_text(text)

    def complete(self, stage: str, fingerprint: str,
                 metadata: Optional[Dict[str, Any]] = None) -> None:
        """Record ``stage`` as complete under ``fingerprint``."""
        manifest = self.read_manifest()
        manifest["stages"][stage] = {"fingerprint": fingerprint,
                                     "metadata": metadata or {}}
        self._write_manifest(manifest)

    # ------------------------------------------------------------------ #
    # generations
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """This store's generation number (0 for pre-generation stores)."""
        return int(self.read_manifest().get("generation", 0))

    def list_generations(self) -> List[int]:
        """All generations persisted under this store, ascending.

        Generation 0 is the root itself (listed once it has a manifest);
        higher generations are the nested stores under ``generations/``.
        """
        generations = []
        if self.manifest_path.exists():
            generations.append(self.generation)
        base = self.root / GENERATIONS_DIR
        if base.is_dir():
            for child in base.iterdir():
                if child.name.isdigit() and (child / MANIFEST_NAME).exists():
                    generations.append(int(child.name))
        return sorted(set(generations))

    def latest_generation(self) -> int:
        """The newest persisted generation (0 for an empty or legacy store)."""
        generations = self.list_generations()
        return generations[-1] if generations else 0

    def generation_store(self, generation: int) -> "ArtifactStore":
        """The (possibly not yet written) store of one generation."""
        if generation < 0:
            raise ValueError("generation must be non-negative")
        if generation == self.generation:
            return self
        return ArtifactStore(self.root / GENERATIONS_DIR / str(generation))

    def load(self, generation: Optional[int] = None) -> "ArtifactStore":
        """The store holding ``generation``'s artifacts (default: latest).

        Raises ``FileNotFoundError`` for a generation that was never
        persisted, so a typo fails loudly instead of reading stale arrays.
        """
        if generation is None:
            generation = self.latest_generation()
        if generation not in self.list_generations() and generation != 0:
            raise FileNotFoundError(
                f"generation {generation} not found under {self.root} "
                f"(have {self.list_generations() or [0]})")
        return self.generation_store(generation)

    def begin_generation(self) -> "ArtifactStore":
        """Open the next generation and return its (empty) nested store.

        The generation number is stamped into the nested manifest immediately
        so a crash between ``begin_generation`` and the first stage write
        still leaves a well-formed (just incomplete) generation behind.
        """
        generation = self.latest_generation() + 1
        store = self.generation_store(generation)
        manifest = store.read_manifest()
        manifest["generation"] = generation
        store._write_manifest(manifest)
        return store

    # ------------------------------------------------------------------ #
    # payload helpers
    # ------------------------------------------------------------------ #
    def save_json(self, stage: str, name: str, payload: Any) -> Path:
        path = self.stage_dir(stage) / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   default=_json_default) + "\n")
        return path

    def load_json(self, stage: str, name: str) -> Any:
        return json.loads((self.stage_dir(stage) / name).read_text())

    def save_arrays(self, stage: str, name: str,
                    arrays: Dict[str, np.ndarray]) -> Path:
        """Persist named arrays as one ``.npz`` (names may contain dots)."""
        path = self.stage_dir(stage) / name
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        return path

    def load_arrays(self, stage: str, name: str) -> Dict[str, np.ndarray]:
        with np.load(self.stage_dir(stage) / name) as archive:
            return {key: np.array(archive[key]) for key in archive.files}

    def has_file(self, stage: str, name: str) -> bool:
        return (self.stage_dir(stage) / name).exists()


def _json_default(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value)!r}")
