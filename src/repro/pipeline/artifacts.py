"""On-disk persistence for pipeline stage outputs.

An :class:`ArtifactStore` manages one artifact directory::

    <root>/
      config.json          # the RunConfig that produced the artifacts
      manifest.json        # stage -> {fingerprint, metadata}; completion marks
      data/                # dataset TSVs (repro.data.io) + split.json
      embed/               # transe.npz
      cggnn/               # representations.npz + losses.json
      train/               # policy.npz + policy.json + history.json
      eval/                # metrics.json
      serve-check/         # report.json

A stage is *complete* iff the manifest records a fingerprint for it; the
pipeline compares that fingerprint against the current
:meth:`RunConfig.stage_fingerprints` entry to decide whether the persisted
artifact can be reused.  Manifest writes go through a temp-file rename so a
crash mid-write never leaves a truncated manifest behind; a stale
``manifest.json.tmp`` left by such a crash is swept on the next read.

**Integrity.**  :meth:`complete` records a blake2b checksum of every file in
the stage directory alongside the fingerprint.  :meth:`load` re-hashes those
files and refuses to serve silent corruption: a generation whose bytes no
longer match is *quarantined* (a ``quarantined.json`` marker; the files stay
put for forensics) and loading falls back to the newest generation that still
verifies.  Stores written before checksums existed verify vacuously, so legacy
artifacts load unchanged.

**Generations.**  Live refreshes (``repro.live``) produce successive artifact
*generations* of the same run: the root directory is generation 0 and every
refresh lands under ``<root>/generations/<N>/`` as a full nested store whose
manifest carries a monotonically-increasing ``generation`` field.  Stores
written before generations existed have no ``generation`` key and read as
generation 0, so single-generation stores load unchanged;
:meth:`ArtifactStore.load` defaults to the latest generation.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from .errors import ArtifactError

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
CONFIG_NAME = "config.json"
GENERATIONS_DIR = "generations"
QUARANTINE_NAME = "quarantined.json"

#: blake2b digest size (bytes) for artifact checksums — 128 bits is plenty to
#: catch corruption and keeps manifests readable.
CHECKSUM_BYTES = 16


def checksum_file(path: PathLike) -> str:
    """Hex blake2b digest of one file's bytes (the manifest checksum format)."""
    digest = hashlib.blake2b(digest_size=CHECKSUM_BYTES)
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactStore:
    """Directory-backed storage of per-stage artifacts with a manifest.

    Construction is side-effect free — directories appear on the first write
    (``begin``/``save_*``/``complete``), never on read paths, so probing a
    mistyped path with :func:`~repro.pipeline.load_pipeline` leaves no litter.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def config_path(self) -> Path:
        return self.root / CONFIG_NAME

    def read_manifest(self) -> Dict[str, Any]:
        stale = self.manifest_path.with_suffix(".json.tmp")
        if stale.exists():
            # Crash litter from an interrupted _write_manifest: the rename
            # never happened, so the tmp holds an untrusted partial write.
            stale.unlink()
        if not self.manifest_path.exists():
            return {"stages": {}}
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(f"corrupt manifest: {error}",
                                path=self.manifest_path) from error
        if not isinstance(manifest, dict):
            raise ArtifactError("corrupt manifest: expected a JSON object",
                                path=self.manifest_path)
        manifest.setdefault("stages", {})
        return manifest

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.manifest_path)

    def fingerprint_of(self, stage: str) -> Optional[str]:
        """The recorded fingerprint of a completed stage (None if absent)."""
        entry = self.read_manifest()["stages"].get(stage)
        return entry["fingerprint"] if entry else None

    def is_complete(self, stage: str, fingerprint: str) -> bool:
        """Whether ``stage`` finished under exactly this fingerprint."""
        return self.fingerprint_of(stage) == fingerprint

    def metadata_of(self, stage: str) -> Dict[str, Any]:
        entry = self.read_manifest()["stages"].get(stage) or {}
        return dict(entry.get("metadata", {}))

    # ------------------------------------------------------------------ #
    # stage lifecycle
    # ------------------------------------------------------------------ #
    def stage_dir(self, stage: str) -> Path:
        return self.root / stage

    def begin(self, stage: str) -> Path:
        """Invalidate ``stage`` (drop its completion mark) and return its dir.

        The stage directory is created but deliberately not wiped: partially
        written files are harmless because completion is manifest-gated.
        """
        manifest = self.read_manifest()
        if stage in manifest["stages"]:
            del manifest["stages"][stage]
            self._write_manifest(manifest)
        directory = self.stage_dir(stage)
        directory.mkdir(parents=True, exist_ok=True)
        return directory

    def write_config(self, text: str) -> None:
        """Persist the run configuration next to the manifest."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.config_path.write_text(text)

    def complete(self, stage: str, fingerprint: str,
                 metadata: Optional[Dict[str, Any]] = None) -> None:
        """Record ``stage`` as complete under ``fingerprint``.

        Every file currently in the stage directory gets a blake2b checksum
        recorded next to the fingerprint — the integrity baseline that
        :meth:`verify_stage` / :meth:`load` later re-check.
        """
        manifest = self.read_manifest()
        manifest["stages"][stage] = {"fingerprint": fingerprint,
                                     "metadata": metadata or {},
                                     "checksums": self._stage_checksums(stage)}
        self._write_manifest(manifest)

    def _stage_checksums(self, stage: str) -> Dict[str, str]:
        """Relative-path → blake2b digest for every file under the stage dir."""
        directory = self.stage_dir(stage)
        if not directory.is_dir():
            return {}
        return {path.relative_to(directory).as_posix(): checksum_file(path)
                for path in sorted(directory.rglob("*")) if path.is_file()}

    # ------------------------------------------------------------------ #
    # integrity: verification & quarantine
    # ------------------------------------------------------------------ #
    def verify_stage(self, stage: str) -> List[Tuple[str, str]]:
        """Re-hash a completed stage's files against the manifest.

        Returns ``(relative_path, problem)`` pairs — empty means verified.
        Stages recorded before checksums existed (no ``checksums`` key)
        verify vacuously; files on disk that were never recorded are ignored
        (``begin`` deliberately does not wipe stale partials).
        """
        entry = self.read_manifest()["stages"].get(stage)
        if not entry or "checksums" not in entry:
            return []
        directory = self.stage_dir(stage)
        problems: List[Tuple[str, str]] = []
        for name in sorted(entry["checksums"]):
            expected = entry["checksums"][name]
            path = directory / name
            if not path.is_file():
                problems.append((name, "missing"))
            elif checksum_file(path) != expected:
                problems.append((name, "checksum mismatch"))
        return problems

    def checksum_mismatches(self) -> List[Tuple[str, str, str]]:
        """Every integrity problem across all completed stages.

        Returns ``(stage, relative_path, problem)`` triples, in sorted stage
        order so reports (and the quarantine reason built from them) are
        deterministic.
        """
        manifest = self.read_manifest()
        problems: List[Tuple[str, str, str]] = []
        for stage in sorted(manifest["stages"]):
            for name, problem in self.verify_stage(stage):
                problems.append((stage, name, problem))
        return problems

    def verify_files(self) -> None:
        """Raise :class:`ArtifactError` if any recorded checksum no longer holds."""
        problems = self.checksum_mismatches()
        if problems:
            stage, name, problem = problems[0]
            raise ArtifactError(
                f"artifact verification failed: {problem} for {stage}/{name}"
                + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else ""),
                path=self.stage_dir(stage) / name)

    @property
    def quarantine_path(self) -> Path:
        return self.root / QUARANTINE_NAME

    @property
    def is_quarantined(self) -> bool:
        return self.quarantine_path.exists()

    def quarantine_reason(self) -> Optional[str]:
        if not self.is_quarantined:
            return None
        try:
            return str(json.loads(self.quarantine_path.read_text())["reason"])
        except (json.JSONDecodeError, KeyError, TypeError):
            return "unreadable quarantine marker"

    def quarantine(self, reason: str) -> None:
        """Mark this store as untrusted (files stay put for forensics).

        Quarantined generations disappear from :meth:`list_generations` and
        :meth:`load`'s fallback walk; asking for one explicitly raises.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.quarantine_path.write_text(json.dumps(
            {"reason": reason, "generation": self.generation},
            indent=2, sort_keys=True) + "\n")

    # ------------------------------------------------------------------ #
    # generations
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """This store's generation number (0 for pre-generation stores)."""
        return int(self.read_manifest().get("generation", 0))

    def list_generations(self, include_quarantined: bool = False) -> List[int]:
        """All usable generations persisted under this store, ascending.

        Generation 0 is the root itself (listed once it has a manifest);
        higher generations are the nested stores under ``generations/``.
        Quarantined generations are excluded unless asked for.
        """
        generations = []
        if self.manifest_path.exists():
            if include_quarantined or not self.is_quarantined:
                generations.append(self.generation)
        base = self.root / GENERATIONS_DIR
        if base.is_dir():
            for child in base.iterdir():
                if not child.name.isdigit() or not (child / MANIFEST_NAME).exists():
                    continue
                if not include_quarantined and (child / QUARANTINE_NAME).exists():
                    continue
                generations.append(int(child.name))
        return sorted(set(generations))

    def latest_generation(self) -> int:
        """The newest usable generation (0 for an empty or legacy store)."""
        generations = self.list_generations()
        return generations[-1] if generations else 0

    def generation_store(self, generation: int) -> "ArtifactStore":
        """The (possibly not yet written) store of one generation."""
        if generation < 0:
            raise ValueError("generation must be non-negative")
        if generation == self.generation:
            return self
        return ArtifactStore(self.root / GENERATIONS_DIR / str(generation))

    def load(self, generation: Optional[int] = None, *,
             verify: bool = True) -> "ArtifactStore":
        """The store holding ``generation``'s artifacts (default: latest).

        With ``verify`` (the default) every recorded checksum is re-checked.
        When no explicit generation is requested, a generation that fails
        verification is quarantined and the walk falls back to the next
        newest one that still verifies — serving boots from the newest
        *trustworthy* artifacts instead of crashing on corruption.  Asking
        for a specific generation that is corrupt or quarantined raises
        :class:`ArtifactError`; a generation that was never persisted raises
        ``FileNotFoundError``, so a typo fails loudly instead of reading
        stale arrays.
        """
        if generation is not None:
            known = self.list_generations(include_quarantined=True)
            if generation not in known and generation != 0:
                raise FileNotFoundError(
                    f"generation {generation} not found under {self.root} "
                    f"(have {known or [0]})")
            store = self.generation_store(generation)
            if store.is_quarantined:
                raise ArtifactError(
                    f"generation {generation} is quarantined: "
                    f"{store.quarantine_reason()}", path=store.root)
            if verify:
                store.verify_files()
            return store
        candidates = self.list_generations()
        if not candidates:
            return self.generation_store(0)  # empty or legacy store
        for number in reversed(candidates):
            store = self.generation_store(number)
            if not verify:
                return store
            problems = store.checksum_mismatches()
            if not problems:
                return store
            stage, name, problem = problems[0]
            store.quarantine(f"{problem} for {stage}/{name}"
                             + (f" (+{len(problems) - 1} more)"
                                if len(problems) > 1 else ""))
        raise ArtifactError(
            f"no generation under {self.root} passes verification "
            f"(all {len(candidates)} quarantined)", path=self.root)

    def begin_generation(self) -> "ArtifactStore":
        """Open the next generation and return its (empty) nested store.

        The generation number is stamped into the nested manifest immediately
        so a crash between ``begin_generation`` and the first stage write
        still leaves a well-formed (just incomplete) generation behind.
        Quarantined generations still reserve their numbers, so a refresh
        after a corruption event never collides with the quarantined dir.
        """
        existing = self.list_generations(include_quarantined=True)
        generation = (existing[-1] if existing else 0) + 1
        store = self.generation_store(generation)
        manifest = store.read_manifest()
        manifest["generation"] = generation
        store._write_manifest(manifest)
        return store

    # ------------------------------------------------------------------ #
    # payload helpers
    # ------------------------------------------------------------------ #
    def save_json(self, stage: str, name: str, payload: Any) -> Path:
        path = self.stage_dir(stage) / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                                   default=_json_default) + "\n")
        return path

    def load_json(self, stage: str, name: str) -> Any:
        path = self.stage_dir(stage) / name
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(f"corrupt JSON artifact: {error}",
                                path=path) from error

    def save_arrays(self, stage: str, name: str,
                    arrays: Dict[str, np.ndarray]) -> Path:
        """Persist named arrays as one ``.npz`` (names may contain dots)."""
        path = self.stage_dir(stage) / name
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        return path

    def load_arrays(self, stage: str, name: str) -> Dict[str, np.ndarray]:
        with np.load(self.stage_dir(stage) / name) as archive:
            return {key: np.array(archive[key]) for key in archive.files}

    def has_file(self, stage: str, name: str) -> bool:
        return (self.stage_dir(stage) / name).exists()


def _json_default(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value)!r}")
