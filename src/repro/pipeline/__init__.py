"""Unified stage-based pipeline API with artifact persistence.

This package is how the repository assembles the full CADRL stack — dataset →
KG → TransE → CGGNN → DARL → evaluation/serving — from one declarative,
JSON-round-trippable :class:`RunConfig`:

* :class:`RunConfig` — the typed configuration of a whole run (dataset
  preset/scale/seeds, the nested model configs, serving and eval knobs) with a
  stable content :meth:`~RunConfig.fingerprint` and one chained fingerprint
  per stage.
* :class:`Pipeline` — executes the stages in dependency order; stages whose
  fingerprint already exists in the :class:`ArtifactStore` are restored from
  disk instead of recomputed.
* :class:`ArtifactStore` — the on-disk layout: every trained component is
  persisted through the existing ``state_dict`` / numpy-table machinery plus
  dataset/KG metadata, gated by an atomic manifest.
* :func:`save_pipeline` / :func:`load_pipeline` — first-class persistence of
  a trained stack; ``RecommendationService.from_artifacts`` boots a serving
  process from such a directory without importing any training code paths.

The single CLI over this API is ``python -m repro`` (see :mod:`repro.cli`).
"""

from .artifacts import ArtifactStore, checksum_file
from .errors import ArtifactError
from .config import (
    PIPELINE_VERSION,
    STAGE_DEPENDENCIES,
    STAGE_NAMES,
    DataConfig,
    EvalConfig,
    RunConfig,
    config_from_dict,
    config_to_dict,
)
from .pipeline import Pipeline, PipelineError, PipelineResult, load_pipeline, save_pipeline
from .stages import ALL_STAGES, PipelineContext, Stage

__all__ = [
    "ALL_STAGES",
    "ArtifactError",
    "ArtifactStore",
    "checksum_file",
    "DataConfig",
    "EvalConfig",
    "PIPELINE_VERSION",
    "Pipeline",
    "PipelineContext",
    "PipelineError",
    "PipelineResult",
    "RunConfig",
    "STAGE_DEPENDENCIES",
    "STAGE_NAMES",
    "Stage",
    "config_from_dict",
    "config_to_dict",
    "load_pipeline",
    "save_pipeline",
]
