"""Shared pipeline exceptions (their own module so stages can raise them
without importing the orchestrator)."""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union


class PipelineError(RuntimeError):
    """A pipeline could not run, verify or load as requested."""


class ArtifactError(PipelineError):
    """A persisted artifact is corrupt, truncated or failed verification.

    Carries the offending ``path`` so callers (and humans reading stack
    traces) can see *which* file is bad without re-parsing the message.
    """

    def __init__(self, message: str,
                 path: Optional[Union[str, Path]] = None) -> None:
        #: The path-free description — safe for deterministic records (e.g.
        #: the fault ledger) that must not embed machine-local paths.
        self.message = message
        if path is not None:
            message = f"{message} [{path}]"
        super().__init__(message)
        self.path = Path(path) if path is not None else None
