"""Shared pipeline exception (its own module so stages can raise it without
importing the orchestrator)."""


class PipelineError(RuntimeError):
    """A pipeline could not run, verify or load as requested."""
