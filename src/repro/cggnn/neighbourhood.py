"""Pre-computed, padded neighbourhood tables for batched GNN computation.

The CGGNN operates on every item of the KG at once.  To keep the forward pass
vectorised we sample (up to) ``max_neighbors`` entity neighbours and
``max_categories`` neighbouring categories per item ahead of time and store
them as integer index matrices plus 0/1 masks.  Directionality is preserved:
forward relations are "outgoing" context, inverse relations "incoming" context
(Eq. 3 uses separate W_in / W_out transformations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..kg.entities import EntityType
from ..kg.graph import KnowledgeGraph
from ..kg.relations import is_inverse, relation_index


@dataclass
class NeighbourhoodTable:
    """Padded neighbour indices for all items of a KG.

    All arrays are indexed by *item position* (0..num_items-1), i.e. the order
    of ``item_ids``; the stored neighbour/category values are global entity ids
    and category ids respectively.
    """

    item_ids: np.ndarray            # (I,) global entity id of each item
    neighbor_entities: np.ndarray   # (I, N) global entity id, 0-padded
    neighbor_relations: np.ndarray  # (I, N) relation index, 0-padded
    neighbor_mask: np.ndarray       # (I, N) 1.0 where a real neighbour exists
    neighbor_is_outgoing: np.ndarray  # (I, N) 1.0 forward relation, 0.0 inverse
    category_ids: np.ndarray        # (I, C) neighbouring category ids, 0-padded
    category_mask: np.ndarray       # (I, C) 1.0 where a real category exists
    item_position: dict             # global entity id -> row position

    @property
    def num_items(self) -> int:
        return len(self.item_ids)

    @property
    def max_neighbors(self) -> int:
        return self.neighbor_entities.shape[1]

    @property
    def max_categories(self) -> int:
        return self.category_ids.shape[1]


def build_neighbourhood_table(graph: KnowledgeGraph, max_neighbors: int = 16,
                              max_categories: int = 6,
                              rng: Optional[np.random.Generator] = None
                              ) -> NeighbourhoodTable:
    """Sample and pad per-item neighbourhoods from ``graph``.

    Neighbours of the USER type are excluded, matching the paper's restriction
    ``e_j ∈ V ∪ F ∪ B`` in the adaptive propagation layer (Eq. 1).
    """
    if max_neighbors <= 0 or max_categories <= 0:
        raise ValueError("max_neighbors and max_categories must be positive")
    rng = rng or np.random.default_rng(0)
    item_ids = np.array(graph.entities.ids_of_type(EntityType.ITEM), dtype=np.int64)
    num_items = len(item_ids)

    neighbor_entities = np.zeros((num_items, max_neighbors), dtype=np.int64)
    neighbor_relations = np.zeros((num_items, max_neighbors), dtype=np.int64)
    neighbor_mask = np.zeros((num_items, max_neighbors), dtype=np.float64)
    neighbor_is_outgoing = np.zeros((num_items, max_neighbors), dtype=np.float64)
    category_ids = np.zeros((num_items, max_categories), dtype=np.int64)
    category_mask = np.zeros((num_items, max_categories), dtype=np.float64)

    for row, item in enumerate(item_ids):
        candidates: List[tuple] = [
            (relation, tail) for relation, tail in graph.outgoing(int(item))
            if graph.entities.type_of(tail) != EntityType.USER
        ]
        if len(candidates) > max_neighbors:
            chosen = rng.choice(len(candidates), size=max_neighbors, replace=False)
            candidates = [candidates[i] for i in chosen]
        for column, (relation, tail) in enumerate(candidates):
            neighbor_entities[row, column] = tail
            neighbor_relations[row, column] = relation_index(relation)
            neighbor_mask[row, column] = 1.0
            neighbor_is_outgoing[row, column] = 0.0 if is_inverse(relation) else 1.0

        categories = graph.neighbor_categories(int(item))[:max_categories]
        for column, category in enumerate(categories):
            category_ids[row, column] = category
            category_mask[row, column] = 1.0

    return NeighbourhoodTable(
        item_ids=item_ids,
        neighbor_entities=neighbor_entities,
        neighbor_relations=neighbor_relations,
        neighbor_mask=neighbor_mask,
        neighbor_is_outgoing=neighbor_is_outgoing,
        category_ids=category_ids,
        category_mask=category_mask,
        item_position={int(item): row for row, item in enumerate(item_ids)},
    )
