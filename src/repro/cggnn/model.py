"""The Category-aware Gated Graph Neural Network (CGGNN, Section IV-B).

The model refines TransE item embeddings with ``k`` adaptive-propagation +
gated-aggregation hops (entity-level contextual dependency) and ``m``
category-attention hops (category-level contextual dependency), and fuses the
two with the trade-off factor ``δ`` (Eq. 11).

Only items receive refined representations — the paper's explicit design
choice — so non-item neighbours always contribute their static TransE vectors
while item neighbours contribute the representation of the previous GNN layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import nn
from ..embeddings.transe import TransEModel, category_embeddings
from ..kg.entities import EntityType
from ..kg.graph import KnowledgeGraph
from ..kg.relations import Relation, relation_index
from ..nn import Tensor
from .category_attention import CategoryAttentionLayer
from .gating import GatedAggregationLayer
from .neighbourhood import NeighbourhoodTable, build_neighbourhood_table
from .propagation import AdaptivePropagationLayer


@dataclass
class CGGNNConfig:
    """Hyper-parameters of the CGGNN (paper Section V-A.3)."""

    embedding_dim: int = 100
    num_ggnn_layers: int = 3        # k
    num_category_layers: int = 2    # m
    delta: float = 0.4              # trade-off factor in Eq. 11
    max_neighbors: int = 16
    max_categories: int = 6
    leaky_relu_slope: float = 0.2
    use_ggnn: bool = True           # disabled by the RGGNN ablation (Fig. 3)
    use_category_attention: bool = True  # disabled by the RCGAN ablation (Fig. 3)
    seed: int = 0

    def validate(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.num_ggnn_layers < 0 or self.num_category_layers < 0:
            raise ValueError("layer counts must be non-negative")
        if not (0.0 <= self.delta <= 1.0):
            raise ValueError("delta must lie in [0, 1]")


@dataclass
class Representations:
    """Frozen representation tables handed to the RL stage.

    ``entity`` rows of item entities hold CGGNN outputs; every other entity
    keeps its TransE vector.  ``category`` holds one vector per item-category.
    """

    entity: np.ndarray
    relation: np.ndarray
    category: np.ndarray

    @property
    def dim(self) -> int:
        return self.entity.shape[1]

    def entity_vector(self, entity_id: int) -> np.ndarray:
        return self.entity[entity_id]

    def relation_vector(self, relation: Relation) -> np.ndarray:
        return self.relation[relation_index(relation)]

    def category_vector(self, category_id: int) -> np.ndarray:
        return self.category[category_id]


class CGGNN(nn.Module):
    """End-to-end CGGNN producing high-order item representations."""

    def __init__(self, graph: KnowledgeGraph, transe: TransEModel,
                 config: Optional[CGGNNConfig] = None,
                 table: Optional[NeighbourhoodTable] = None) -> None:
        self.config = config or CGGNNConfig()
        self.config.validate()
        if transe.config.embedding_dim != self.config.embedding_dim:
            raise ValueError("TransE and CGGNN embedding dimensions must match")
        rng = np.random.default_rng(self.config.seed)
        self.graph = graph
        self.table = table or build_neighbourhood_table(
            graph, max_neighbors=self.config.max_neighbors,
            max_categories=self.config.max_categories, rng=rng)

        dim = self.config.embedding_dim
        # Static context (TransE): every entity and relation.
        self._static_entities = np.array(transe.entity_embeddings, copy=True)
        self._static_relations = np.array(transe.relation_embeddings, copy=True)
        self._static_categories = category_embeddings(transe, graph)
        if self._static_categories.shape[0] == 0:
            self._static_categories = np.zeros((1, dim))

        # Trainable tables: item self-embeddings and category embeddings,
        # initialised from the TransE statistics.
        self.item_embeddings = Tensor(
            self._static_entities[self.table.item_ids].copy(), requires_grad=True,
            name="cggnn.item_embeddings")
        self.category_table = Tensor(self._static_categories.copy(), requires_grad=True,
                                     name="cggnn.category_embeddings")

        self.propagation_layers = [
            AdaptivePropagationLayer(dim, rng=rng) for _ in range(self.config.num_ggnn_layers)
        ]
        self.gating_layers = [
            GatedAggregationLayer(dim, rng=rng) for _ in range(self.config.num_ggnn_layers)
        ]
        self.category_layers = [
            CategoryAttentionLayer(dim, self.config.leaky_relu_slope, rng=rng)
            for _ in range(self.config.num_category_layers)
        ]

        self._prepare_index_arrays()

    # ------------------------------------------------------------------ #
    def _prepare_index_arrays(self) -> None:
        """Pre-compute gather indices for neighbour states and categories."""
        table = self.table
        is_item = np.zeros_like(table.neighbor_mask)
        item_positions = np.zeros_like(table.neighbor_entities)
        for row in range(table.num_items):
            for column in range(table.max_neighbors):
                if table.neighbor_mask[row, column] == 0.0:
                    continue
                neighbor = int(table.neighbor_entities[row, column])
                if self.graph.entities.type_of(neighbor) == EntityType.ITEM:
                    is_item[row, column] = 1.0
                    item_positions[row, column] = table.item_position[neighbor]
        self._neighbor_is_item = is_item
        self._neighbor_item_positions = item_positions

    # ------------------------------------------------------------------ #
    def forward(self) -> Tensor:
        """Return the refined item representation matrix ``(num_items, dim)``."""
        table = self.table
        item_states = self.item_embeddings
        purchase_state = Tensor(self._static_relations[relation_index(Relation.PURCHASE)])
        relation_states = Tensor(self._static_relations[table.neighbor_relations])
        static_neighbor_states = self._static_entities[table.neighbor_entities]

        if self.config.use_ggnn:
            for propagation, gating in zip(self.propagation_layers, self.gating_layers):
                neighbor_states = self._neighbor_states(item_states, static_neighbor_states)
                message = propagation(item_states, neighbor_states, relation_states,
                                      purchase_state, table.neighbor_mask,
                                      table.neighbor_is_outgoing)
                item_states = gating(message, item_states)

        if self.config.use_category_attention and self.config.num_category_layers > 0:
            category_context = self._category_context(item_states)
            item_states = item_states + self.config.delta * category_context   # Eq. 11
        return item_states

    def _neighbor_states(self, item_states: Tensor,
                         static_neighbor_states: np.ndarray) -> Tensor:
        """Neighbour representations: current item states for item neighbours,
        static TransE vectors for attributes."""
        gathered_items = item_states.index_select(
            self._neighbor_item_positions.reshape(-1)
        ).reshape(self.table.num_items, self.table.max_neighbors, self.config.embedding_dim)
        is_item = Tensor(self._neighbor_is_item[..., None])
        static = Tensor(static_neighbor_states)
        return gathered_items * is_item + static * (1.0 - is_item)

    def _category_context(self, item_states: Tensor) -> Tensor:
        """Stacked category attention hops (Eq. 8-10)."""
        table = self.table
        context = item_states
        category_states = self.category_table.index_select(
            table.category_ids.reshape(-1)
        ).reshape(table.num_items, table.max_categories, self.config.embedding_dim)
        for layer in self.category_layers:
            context = layer(context, category_states, table.category_mask)
        return context

    # ------------------------------------------------------------------ #
    def export_representations(self) -> Representations:
        """Freeze current outputs into numpy tables for the RL stage."""
        item_matrix = self.forward().data
        entity = np.array(self._static_entities, copy=True)
        entity[self.table.item_ids] = item_matrix
        return Representations(
            entity=entity,
            relation=np.array(self._static_relations, copy=True),
            category=np.array(self.category_table.data, copy=True),
        )

    def static_representations(self) -> Representations:
        """TransE-only representations (used by the ``w/o CGGNN`` ablation)."""
        return Representations(
            entity=np.array(self._static_entities, copy=True),
            relation=np.array(self._static_relations, copy=True),
            category=np.array(self._static_categories, copy=True),
        )
