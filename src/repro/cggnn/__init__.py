"""Category-aware Gated Graph Neural Network (CGGNN) — paper Section IV-B."""

from .category_attention import CategoryAttentionLayer
from .gating import GatedAggregationLayer
from .model import CGGNN, CGGNNConfig, Representations
from .neighbourhood import NeighbourhoodTable, build_neighbourhood_table
from .propagation import AdaptivePropagationLayer
from .trainer import CGGNNTrainer, CGGNNTrainingConfig, train_cggnn, warm_start_cggnn

__all__ = [
    "AdaptivePropagationLayer",
    "CGGNN",
    "CGGNNConfig",
    "CGGNNTrainer",
    "CGGNNTrainingConfig",
    "CategoryAttentionLayer",
    "GatedAggregationLayer",
    "NeighbourhoodTable",
    "Representations",
    "build_neighbourhood_table",
    "train_cggnn",
    "warm_start_cggnn",
]
