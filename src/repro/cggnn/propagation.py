"""Adaptive propagation layer of the GGNN (Eq. 1-3).

For every item ``v_i`` and neighbour ``(r, e_j)`` the layer

1. forms the triplet representation ``t = σ(W1 [h_vi ⊕ h_ej ⊕ h_r ⊕ h_rp])``
   where ``h_rp`` is the embedding of the *purchase* relation, injected so the
   attention can judge how relevant a neighbour is to shopping behaviour;
2. computes the scalar attention ``α = σ(W2 t + b)``;
3. aggregates ``n_vi = Σ_out α · W_out (h_ej ∘ h_r) + Σ_in α · W_in (h_ej ∘ h_r)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..nn.init import ensure_rng


class AdaptivePropagationLayer(nn.Module):
    """One message-passing step over padded item neighbourhoods."""

    def __init__(self, embedding_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.triplet_transform = nn.Linear(4 * embedding_dim, embedding_dim, rng=rng)
        self.attention = nn.Linear(embedding_dim, 1, rng=rng)
        self.transform_out = nn.Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
        self.transform_in = nn.Linear(embedding_dim, embedding_dim, bias=False, rng=rng)

    def forward(self, item_states: Tensor, neighbor_states: Tensor,
                relation_states: Tensor, purchase_state: Tensor,
                neighbor_mask: np.ndarray, neighbor_is_outgoing: np.ndarray) -> Tensor:
        """Return the aggregated neighbourhood message ``n_vi`` for every item.

        Shapes: ``item_states`` (I, d); ``neighbor_states`` and
        ``relation_states`` (I, N, d); ``purchase_state`` (d,);
        masks (I, N).  Output (I, d).
        """
        num_items, max_neighbors, dim = neighbor_states.shape

        # Broadcast the item state and the purchase-relation embedding over the
        # neighbour axis so the concatenation of Eq. 1 can be done in one shot.
        item_tiled = item_states.reshape(num_items, 1, dim) * Tensor(
            np.ones((1, max_neighbors, 1)))
        purchase_tiled = purchase_state.reshape(1, 1, dim) * Tensor(
            np.ones((num_items, max_neighbors, 1)))

        triplet_input = nn.concat(
            [item_tiled, neighbor_states, relation_states, purchase_tiled], axis=-1)
        triplet_repr = F.sigmoid(self.triplet_transform(triplet_input))       # Eq. 1
        attention = F.sigmoid(self.attention(triplet_repr))                   # Eq. 2 (I, N, 1)

        mask = Tensor(neighbor_mask[..., None])
        outgoing = Tensor(neighbor_is_outgoing[..., None])
        incoming = Tensor((1.0 - neighbor_is_outgoing)[..., None])

        interaction = neighbor_states * relation_states                       # h_ej ∘ h_r
        message_out = self.transform_out(interaction) * outgoing
        message_in = self.transform_in(interaction) * incoming
        weighted = attention * mask * (message_out + message_in)              # Eq. 3
        return weighted.sum(axis=1)
