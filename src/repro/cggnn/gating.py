"""Gated aggregation layer of the GGNN (Eq. 4-7).

The neighbourhood message ``n_vi`` produced by the adaptive propagation layer
is fused with the item's own representation through GRU-style update and reset
gates, which is how the paper suppresses the noise introduced by semantic
decay over multi-hop neighbourhoods.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..nn.init import ensure_rng


class GatedAggregationLayer(nn.Module):
    """GRU-style fusion of the neighbourhood message with the self embedding."""

    def __init__(self, embedding_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        # Eq. 4: update gate z_i
        self.update_from_message = nn.Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
        self.update_from_self = nn.Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
        # Eq. 5: reset gate v̂_i
        self.reset_from_message = nn.Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
        self.reset_from_self = nn.Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
        # Eq. 6: candidate state v_i
        self.candidate_from_message = nn.Linear(embedding_dim, embedding_dim, bias=False, rng=rng)
        self.candidate_from_gated = nn.Linear(embedding_dim, embedding_dim, bias=False, rng=rng)

    def forward(self, message: Tensor, item_states: Tensor) -> Tensor:
        """Fuse ``message`` (n_vi) with ``item_states`` (h_vi^{k-1}); both (I, d)."""
        update_gate = F.sigmoid(self.update_from_message(message)
                                + self.update_from_self(item_states))          # Eq. 4
        reset_gate = F.sigmoid(self.reset_from_message(message)
                               + self.reset_from_self(item_states))            # Eq. 5
        candidate = F.tanh(self.candidate_from_message(message)
                           + self.candidate_from_gated(reset_gate * item_states))  # Eq. 6
        return (1.0 - update_gate) * item_states + update_gate * candidate     # Eq. 7
