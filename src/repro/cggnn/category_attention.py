"""Category-aware graph attention network (CGAN, Eq. 8-10).

Items attend over their neighbouring item-categories: the aggregation
coefficient is a LeakyReLU of a linear map over the concatenated item/category
representations (Eq. 8), normalised with a masked softmax (Eq. 9), and the
category context ``h_v^c`` is the attention-weighted sum of category vectors
(Eq. 10).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F
from ..nn.init import ensure_rng

_MASK_FILL = -1e9


class CategoryAttentionLayer(nn.Module):
    """One attention hop from an item to its neighbouring categories."""

    def __init__(self, embedding_dim: int, negative_slope: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        rng = ensure_rng(rng)
        self.embedding_dim = embedding_dim
        self.negative_slope = negative_slope
        self.score_transform = nn.Linear(2 * embedding_dim, 1, rng=rng)

    def forward(self, item_states: Tensor, category_states: Tensor,
                category_mask: np.ndarray) -> Tensor:
        """Return the category context vector ``h_v^c`` for every item.

        ``item_states`` (I, d); ``category_states`` (I, C, d);
        ``category_mask`` (I, C).  Output (I, d).
        """
        num_items, max_categories, dim = category_states.shape
        item_tiled = item_states.reshape(num_items, 1, dim) * Tensor(
            np.ones((1, max_categories, 1)))

        pair = nn.concat([item_tiled, category_states], axis=-1)
        scores = F.leaky_relu(self.score_transform(pair), self.negative_slope)  # Eq. 8 (I, C, 1)
        scores = scores.reshape(num_items, max_categories)

        # Masked softmax (Eq. 9): padded category slots get a large negative score.
        masked_scores = scores + Tensor((1.0 - category_mask) * _MASK_FILL)
        attention = F.softmax(masked_scores, axis=-1)
        attention = attention * Tensor(category_mask)
        normaliser = attention.sum(axis=-1, keepdims=True) + 1e-12
        attention = attention / normaliser

        weighted = category_states * attention.reshape(num_items, max_categories, 1)
        return weighted.sum(axis=1)                                             # Eq. 10
