"""Training loop for the CGGNN.

The paper trains CGGNN jointly with the recommendation objective; here the
representation stage is optimised with a Bayesian Personalised Ranking (BPR)
objective on the training purchases — the item representation that makes
observed purchases score higher than sampled negatives is exactly the
"context-aware item representation" the RL stage consumes.  Purchases are
scored with the TransE translation ``-||u + r_purchase - h_v||²`` so the
refined item vectors stay in the same geometry the rest of the pipeline
(action pruning, soft scores, baselines) uses.  The user vectors stay fixed at
their TransE values so all learning pressure lands on the item side, mirroring
the paper's item-only refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..kg.graph import KnowledgeGraph
from ..kg.relations import Relation, relation_index
from ..nn import Tensor
from .model import CGGNN, Representations


@dataclass
class CGGNNTrainingConfig:
    """Optimisation hyper-parameters for the representation stage."""

    learning_rate: float = 1e-3
    epochs: int = 15
    batch_size: int = 128
    negatives_per_positive: int = 1
    weight_decay: float = 1e-5
    gradient_clip: float = 5.0
    seed: int = 0

    def validate(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")


class CGGNNTrainer:
    """Optimises a :class:`CGGNN` with the BPR purchase-reconstruction loss."""

    def __init__(self, model: CGGNN, graph: KnowledgeGraph,
                 config: Optional[CGGNNTrainingConfig] = None) -> None:
        self.model = model
        self.graph = graph
        self.config = config or CGGNNTrainingConfig()
        self.config.validate()
        self._pairs = self._collect_purchase_pairs()

    def _collect_purchase_pairs(self) -> np.ndarray:
        """(user_entity, item_row) pairs for every training purchase edge."""
        pairs: List[Tuple[int, int]] = []
        position = self.model.table.item_position
        for triplet in self.graph.triplets():
            if triplet.relation != Relation.PURCHASE:
                continue
            if triplet.tail in position:
                pairs.append((triplet.head, position[triplet.tail]))
        return np.array(pairs, dtype=np.int64) if pairs else np.zeros((0, 2), dtype=np.int64)

    # ------------------------------------------------------------------ #
    def train(self) -> List[float]:
        """Run the optimisation; returns per-epoch mean BPR loss."""
        if len(self._pairs) == 0 or self.config.epochs == 0:
            return []
        rng = np.random.default_rng(self.config.seed)
        optimiser = nn.Adam(self.model.parameters(), lr=self.config.learning_rate,
                            weight_decay=self.config.weight_decay)
        user_vectors = self.model._static_entities  # users keep TransE vectors
        purchase_vector = self.model._static_relations[
            relation_index(Relation.PURCHASE)]
        num_items = self.model.table.num_items

        losses: List[float] = []
        for _ in range(self.config.epochs):
            order = rng.permutation(len(self._pairs))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(order), self.config.batch_size):
                batch = self._pairs[order[start:start + self.config.batch_size]]
                users = batch[:, 0]
                positives = batch[:, 1]
                negatives = rng.integers(0, num_items,
                                         size=(len(batch), self.config.negatives_per_positive))

                optimiser.zero_grad()
                item_matrix = self.model.forward()
                # Translated user query u + r_purchase (static per batch).
                query_tensor = Tensor(user_vectors[users] + purchase_vector)   # (B, d)
                positive_states = item_matrix.index_select(positives)          # (B, d)

                positive_diff = query_tensor - positive_states
                positive_scores = -(positive_diff * positive_diff).sum(axis=1)
                loss_terms = []
                for column in range(self.config.negatives_per_positive):
                    negative_states = item_matrix.index_select(negatives[:, column])
                    negative_diff = query_tensor - negative_states
                    negative_scores = -(negative_diff * negative_diff).sum(axis=1)
                    margin = positive_scores - negative_scores
                    loss_terms.append((-(margin.sigmoid().clip(1e-9, 1.0).log())).mean())
                loss = loss_terms[0]
                for term in loss_terms[1:]:
                    loss = loss + term
                loss = loss * (1.0 / len(loss_terms))

                loss.backward()
                nn.clip_grad_norm(self.model.parameters(), self.config.gradient_clip)
                optimiser.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
        return losses

    # ------------------------------------------------------------------ #
    def export(self) -> Representations:
        """Convenience wrapper returning the trained representation tables."""
        return self.model.export_representations()


def warm_start_cggnn(model: CGGNN, initial_state: Representations) -> None:
    """Overlay a prior generation's representation tables onto ``model``.

    The trainable tables (item self-embeddings, category embeddings) start
    from the prior generation's converged values instead of the TransE
    initialisation; items and categories that appeared *after* the prior keep
    their seeded initialisation.  Entity ids are append-only, so a prior row
    index is a valid entity id in every descendant graph — the overlay maps
    prior vectors to item rows by entity id, not by row position.
    """
    dim = model.config.embedding_dim
    if initial_state.entity.ndim != 2 or initial_state.entity.shape[1] != dim:
        raise ValueError(
            f"warm-start entity table shape {initial_state.entity.shape} does "
            f"not match embedding_dim={dim}")
    if initial_state.category.ndim != 2 or initial_state.category.shape[1] != dim:
        raise ValueError(
            f"warm-start category table shape {initial_state.category.shape} "
            f"does not match embedding_dim={dim}")
    prior_rows = initial_state.entity.shape[0]
    item_ids = np.asarray(model.table.item_ids, dtype=np.int64)
    known = item_ids < prior_rows
    model.item_embeddings.data[known] = initial_state.entity[item_ids[known]]
    overlap = min(model.category_table.data.shape[0],
                  initial_state.category.shape[0])
    model.category_table.data[:overlap] = initial_state.category[:overlap]


def train_cggnn(graph: KnowledgeGraph, model: CGGNN,
                config: Optional[CGGNNTrainingConfig] = None,
                initial_state: Optional[Representations] = None
                ) -> Tuple[Representations, List[float]]:
    """Train ``model`` on ``graph`` and return (representations, loss curve).

    ``initial_state`` warm-starts the trainable tables from a prior
    generation's :class:`Representations` (see :func:`warm_start_cggnn`),
    which is what lets the live-refresh path run a few-epoch delta refresh
    instead of retraining from the TransE initialisation.
    """
    if initial_state is not None:
        warm_start_cggnn(model, initial_state)
    trainer = CGGNNTrainer(model, graph, config)
    losses = trainer.train()
    return trainer.export(), losses
