"""Tiered ranking: full beam search → stale cached result → embedding top-k.

The full dual-agent beam search gives the best (and explainable) results, but
it is orders of magnitude more expensive than a vectorised embedding lookup.
The :class:`TieredRanker` therefore degrades gracefully per request:

* cold-start users (no purchase edges in the KG) can't seed a category
  milestone rollout, so they go straight to the embedding tier;
* a request whose latency budget is below the current full-search cost
  estimate (an EWMA over observed searches) is answered from a stale cache
  entry when one exists, otherwise from the embedding tier;
* everything else gets the full search.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, List, Protocol

import numpy as np

from ..cggnn.model import Representations
from ..embeddings.transe import TransEModel, top_k_by_score
from ..kg.entities import EntityType
from ..kg.graph import KnowledgeGraph
from ..kg.relations import Relation


class ServingTier(str, Enum):
    """How a response was produced, from most to least expensive."""

    FULL = "full_search"
    CACHE = "cache"
    STALE = "stale_cache"
    EMBEDDING = "embedding_topk"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class FallbackRanker(Protocol):
    """Cheap vectorised ranker answering cold-start / over-budget requests."""

    def top_k(self, user_entity: int, k: int,
              exclude: Iterable[int] = ()) -> List[int]:
        ...


class TransEFallbackRanker:
    """Ranks the item catalogue by TransE translation score (pre-CGGNN)."""

    def __init__(self, model: TransEModel, graph: KnowledgeGraph) -> None:
        self._model = model
        self._items = np.array(graph.entities.ids_of_type(EntityType.ITEM), dtype=np.int64)

    def top_k(self, user_entity: int, k: int,
              exclude: Iterable[int] = ()) -> List[int]:
        return self._model.top_k_items(user_entity, self._items, k, exclude=exclude)


class RepresentationFallbackRanker:
    """Same translation geometry over the CGGNN-refined representation table.

    Used when the service is constructed without a TransE model: the item rows
    of :class:`Representations` are the best available embedding table, and
    scoring ``-||u + r_purchase - v||²`` matches ``CADRL.score_items``.
    """

    def __init__(self, representations: Representations, graph: KnowledgeGraph) -> None:
        self._representations = representations
        self._items = np.array(graph.entities.ids_of_type(EntityType.ITEM), dtype=np.int64)
        self._item_matrix = representations.entity[self._items]
        self._purchase_vector = representations.relation_vector(Relation.PURCHASE)

    def top_k(self, user_entity: int, k: int,
              exclude: Iterable[int] = ()) -> List[int]:
        candidates = self._items
        matrix = self._item_matrix
        if exclude is not None:
            excluded = np.fromiter(exclude, dtype=np.int64)
            if excluded.size:
                keep = ~np.isin(candidates, excluded)
                candidates, matrix = candidates[keep], matrix[keep]
        if candidates.size == 0:
            return []
        query = self._representations.entity_vector(user_entity) + self._purchase_vector
        differences = matrix - query[None, :]
        scores = -np.sum(differences * differences, axis=1)
        return top_k_by_score(candidates, scores, k)


class TieredRanker:
    """Per-request tier selection plus the full-search latency estimator."""

    def __init__(self, graph: KnowledgeGraph, ranker: FallbackRanker,
                 assumed_full_search_ms: float = 50.0,
                 ewma_alpha: float = 0.2) -> None:
        if assumed_full_search_ms <= 0:
            raise ValueError("assumed_full_search_ms must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        self._graph = graph
        self._ranker = ranker
        self._ewma_alpha = ewma_alpha
        self._estimate_ms = assumed_full_search_ms

    @property
    def estimated_full_search_ms(self) -> float:
        return self._estimate_ms

    def observe_full_search(self, latency_ms: float) -> None:
        """Fold one observed full-search latency into the EWMA estimate.

        Non-positive observations are discarded: a real beam search always
        takes time, so a 0 ms reading only means the latency source carries no
        information (e.g. a frozen virtual clock during deterministic load
        replay) — folding it in would decay the estimate towards zero and
        silently route over-budget requests to the full tier.
        """
        if latency_ms <= 0.0:
            return
        alpha = self._ewma_alpha
        self._estimate_ms = alpha * float(latency_ms) + (1.0 - alpha) * self._estimate_ms

    def is_cold(self, user_entity: int) -> bool:
        """No purchase history → no milestone rollout → no useful beam search."""
        return not self._graph.purchased_items(user_entity)

    def choose(self, request, stale_available: bool) -> ServingTier:
        """Tier for a request that already missed the fresh cache."""
        if self.is_cold(request.user_entity):
            return ServingTier.EMBEDDING
        budget = request.latency_budget_ms
        if budget is not None and budget < self._estimate_ms:
            if stale_available and request.allow_stale:
                return ServingTier.STALE
            return ServingTier.EMBEDDING
        return ServingTier.FULL

    def fallback_items(self, request) -> List[int]:
        """Answer a request from the embedding tier."""
        return self._ranker.top_k(request.user_entity, request.top_k,
                                  exclude=request.exclude_items)
