"""Online recommendation serving for the trained CADRL artifacts.

The paper's efficiency study (Table III) times a bare inference loop; this
package is the deployment counterpart the ROADMAP asks for — a service facade
with result caching, micro-batched inference, tiered fallbacks and telemetry:

* :class:`RecommendationService` — the facade: ``serve`` / ``serve_many`` over
  typed :class:`RecommendationRequest` / :class:`RecommendationResponse`;
  every response carries per-request provenance (``tier``, ``source_tier``,
  ``cache_hit``) so load-replay oracles can assert correctness per request.
* :class:`ResultCache` — LRU + TTL result cache with explicit invalidation.
* :class:`MicroBatcher` — deduplicates users and vectorises the shared
  category-milestone rollouts across a batch.
* :class:`TieredRanker` — full beam search → stale cache → embedding top-k,
  chosen per request from its latency budget and the user's history.
* :class:`ServingTelemetry` — rolling p50/p95/p99 latency, QPS, hit rates.
"""

from .batching import MicroBatcher, batched_category_milestones
from .cache import CacheKey, CacheStats, ResultCache
from .fallback import (
    FallbackRanker,
    RepresentationFallbackRanker,
    ServingTier,
    TieredRanker,
    TransEFallbackRanker,
)
from .service import (
    CachedResult,
    RecommendationRequest,
    RecommendationResponse,
    RecommendationService,
    ServingConfig,
)
from .telemetry import ServingTelemetry

__all__ = [
    "CacheKey",
    "CacheStats",
    "CachedResult",
    "FallbackRanker",
    "MicroBatcher",
    "RecommendationRequest",
    "RecommendationResponse",
    "RecommendationService",
    "RepresentationFallbackRanker",
    "ResultCache",
    "ServingConfig",
    "ServingTelemetry",
    "ServingTier",
    "TieredRanker",
    "TransEFallbackRanker",
    "batched_category_milestones",
]
