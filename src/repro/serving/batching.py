"""Micro-batching: deduplicate users and vectorise the shared rollout work.

``PathRecommender.recommend`` spends its time in two places: the greedy
category-milestone rollout (one LSTM + MLP call per hop) and the entity-level
beam search.  Across a batch of requests the milestone rollouts are
embarrassingly batchable — every user advances in lock-step for exactly
``max_path_length`` hops — so :func:`batched_category_milestones` runs them as
``(batch, dim)`` matrix products against the shared policy and seeds the
recommender's milestone cache.  The beam search itself then reuses the cached
trajectories (and the entity environment's shared action-matrix caches), and
duplicate request keys collapse into a single search via the result cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..darl.inference import PathRecommender


def batched_category_milestones(recommender: PathRecommender,
                                users: Sequence[int]
                                ) -> Dict[int, List[Optional[int]]]:
    """Greedy milestone trajectories for many users in one vectorised rollout.

    Mirrors ``PathRecommender._category_milestones`` step for step, but runs
    the LSTM history encoding and the policy-query MLP for the whole batch at
    once; only the per-user action enumeration and argmax stay in Python (the
    action sets have different sizes per user).
    """
    users = list(dict.fromkeys(users))
    length = recommender.max_path_length
    if not users:
        return {}
    if not recommender.use_dual_agent:
        return {user: [None] * length for user in users}

    environment = recommender.category_environment
    policy = recommender.policy
    representations = recommender.representations

    starts = [environment.start_category_for(user) for user in users]
    states = [environment.initial_state(user, start)
              for user, start in zip(users, starts)]
    lstm_state = policy.initial_state_numpy(batch_size=len(users))
    start_vectors = np.stack([representations.category_vector(s) for s in starts])
    hidden, lstm_state = policy.encode_category_step_numpy(start_vectors, None, lstm_state)
    user_vectors = np.stack([representations.entity_vector(u) for u in users])

    milestones: Dict[int, List[Optional[int]]] = {user: [] for user in users}
    for _ in range(length):
        current_vectors = np.stack([
            representations.category_vector(state.current_category) for state in states])
        queries = policy.category_query_numpy(user_vectors, current_vectors, hidden)
        chosen: List[int] = []
        for index, state in enumerate(states):
            actions = environment.actions(state)
            logits = environment.action_matrix(actions) @ queries[index]
            category = actions[int(np.argmax(logits))]
            chosen.append(category)
            milestones[users[index]].append(category)
            states[index] = environment.step(state, category)
        chosen_vectors = np.stack([representations.category_vector(c) for c in chosen])
        hidden, lstm_state = policy.encode_category_step_numpy(chosen_vectors, hidden,
                                                               lstm_state)
    return milestones


class MicroBatcher:
    """Prepares a request batch for the recommender it wraps."""

    def __init__(self, recommender: PathRecommender) -> None:
        self.recommender = recommender

    def warm_milestones(self, users: Sequence[int]) -> int:
        """Batch-compute milestone trajectories for users missing from the cache.

        Returns the number of users actually rolled out; users already cached
        (or duplicated within ``users``) cost nothing.
        """
        missing = [user for user in dict.fromkeys(users)
                   if user not in self.recommender.milestone_cache]
        if not missing:
            return 0
        if len(missing) == 1:
            self.recommender.category_milestones(missing[0])
            return 1
        for user, milestones in batched_category_milestones(self.recommender,
                                                            missing).items():
            self.recommender.store_milestones(user, milestones)
        return len(missing)
