"""Micro-batching: deduplicate users and vectorise the shared rollout work.

``PathRecommender.recommend`` spends its time in two places: the greedy
category-milestone rollout and the entity-level beam search.  Both are batched
inside :mod:`repro.darl.inference` nowadays — the milestone rollouts advance
every user in lock-step as ``(batch, dim)`` matrix products, and the beam
search expands the whole frontier per depth — so this module is a thin
serving-side veneer: it deduplicates the users of a request burst and seeds
the recommender's milestone cache before the per-request loop runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..darl.inference import PathRecommender


def batched_category_milestones(recommender: PathRecommender,
                                users: Sequence[int]
                                ) -> Dict[int, List[Optional[int]]]:
    """Greedy milestone trajectories for many users in one vectorised rollout.

    Kept as a public serving helper; the implementation lives on the
    recommender itself (:meth:`PathRecommender._batched_category_milestones`)
    so batched inference does not depend on the serving layer.
    """
    return recommender._batched_category_milestones(users)


class MicroBatcher:
    """Prepares a request batch for the recommender it wraps."""

    def __init__(self, recommender: PathRecommender) -> None:
        self.recommender = recommender

    def warm_milestones(self, users: Sequence[int]) -> int:
        """Batch-compute milestone trajectories for users missing from the cache.

        Returns the number of users actually rolled out; users already cached
        (or duplicated within ``users``) cost nothing.
        """
        return self.recommender.warm_milestones(users)
