"""LRU + TTL result cache for the online serving layer.

Keys are the full request identity ``(user_entity, top_k, frozenset(exclude))``
so two requests only share a cached result when they would have produced the
same answer.  Expired entries are *kept* until LRU capacity evicts them: the
fallback tier deliberately serves them as stale results when a request's
latency budget rules out a fresh beam search.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Iterable, List, Optional, Tuple

CacheKey = Tuple[int, int, FrozenSet[int]]


@dataclass(frozen=True)
class ExportedEntry:
    """One cache entry lifted out of a :class:`ResultCache` for migration.

    Carries the absolute ``expires_at`` deadline rather than a remaining TTL:
    migrating an entry between shards must not refresh its expiry.
    """

    key: CacheKey
    value: Any
    expires_at: float


@dataclass
class CacheStats:
    """Counters exposed through the telemetry snapshot."""

    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fresh-hit rate over all lookups (NaN before any traffic).

        A cache that has never been consulted has no hit rate; reporting 0.0
        would read as "everything missed" to telemetry consumers (and to any
        scaling policy watching it), so the undefined case is NaN — the same
        convention ``ClusterTelemetry.cache_totals`` uses.
        """
        total = self.hits + self.misses
        return self.hits / total if total else math.nan


@dataclass
class _Entry:
    value: Any
    expires_at: float


class ResultCache:
    """Bounded LRU cache whose entries additionally expire after a TTL.

    ``clock`` is injectable so tests can advance time explicitly; it must be a
    monotonic seconds counter.
    """

    def __init__(self, capacity: int = 1024, ttl_seconds: float = 300.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        if ttl_seconds <= 0:
            raise ValueError("cache TTL must be positive")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._entries: "OrderedDict[CacheKey, _Entry]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def get(self, key: CacheKey) -> Optional[Any]:
        """Fresh lookup: the value if present and unexpired, else ``None``.

        An expired entry counts as a miss but stays cached for :meth:`get_stale`.
        """
        entry = self._entries.get(key)
        if entry is None or entry.expires_at <= self._clock():
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def get_stale(self, key: CacheKey) -> Optional[Any]:
        """Staleness-tolerant lookup used by the over-budget fallback tier."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        self.stats.stale_hits += 1
        return entry.value

    def has(self, key: CacheKey) -> bool:
        """Fresh-presence peek that does not touch counters or LRU order."""
        entry = self._entries.get(key)
        return entry is not None and entry.expires_at > self._clock()

    def has_stale(self, key: CacheKey) -> bool:
        """Presence peek ignoring expiry (again counter/LRU neutral)."""
        return key in self._entries

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def put(self, key: CacheKey, value: Any) -> None:
        self._entries[key] = _Entry(value=value, expires_at=self._clock() + self.ttl_seconds)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one entry; returns whether it existed."""
        if self._entries.pop(key, None) is not None:
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_user(self, user_entity: int) -> int:
        """Drop every cached result of one user (e.g. after a new interaction)."""
        doomed = [key for key in self._entries if key[0] == user_entity]
        for key in doomed:
            del self._entries[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def invalidate_entities(self, entities) -> int:
        """Drop every entry *touched* by the given entity set; keep the rest.

        An entry is touched when its user is in ``entities`` or any of its
        cached items is (cached values expose an ``items`` sequence; opaque
        values are matched on the user only).  This is the scoped alternative
        to a whole-cache flush on artifact change: a streaming delta affects a
        handful of entities, and every untouched entry survives *in its
        existing eviction order* — deleting from an ``OrderedDict`` never
        reorders the survivors.
        """
        touched = set(entities)
        if not touched:
            return 0
        doomed = []
        for key, entry in self._entries.items():
            if key[0] in touched:
                doomed.append(key)
                continue
            items = getattr(entry.value, "items", None)
            if items is None or callable(items):
                # Opaque value (or a mapping, whose bound ``.items`` method is
                # not an item list): match on the user key only.
                continue
            try:
                if not touched.isdisjoint(items):
                    doomed.append(key)
            except TypeError:
                # ``items`` exists but is not an iterable of hashables —
                # treat the value as opaque rather than blow up invalidation.
                continue
        for key in doomed:
            del self._entries[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------ #
    # migration (shard warm hand-off)
    # ------------------------------------------------------------------ #
    def export_entries(self, match: Optional[Callable[[CacheKey], bool]] = None
                       ) -> List[ExportedEntry]:
        """Copy out matching entries in eviction order (oldest first).

        Counter- and LRU-neutral: exporting is observation, not traffic.
        ``match`` defaults to everything; expired entries are included because
        the stale tier can still serve them on the receiving shard.
        """
        return [ExportedEntry(key=key, value=entry.value, expires_at=entry.expires_at)
                for key, entry in self._entries.items()
                if match is None or match(key)]

    def extract_entries(self, match: Callable[[CacheKey], bool]) -> List[ExportedEntry]:
        """Remove and return matching entries in eviction order.

        Used when a key range remaps to another shard: the displaced entries
        leave this cache (without counting as invalidations — nothing about
        their contents became wrong) and are handed to the new owner via
        :meth:`absorb`.
        """
        exported = self.export_entries(match)
        for entry in exported:
            del self._entries[entry.key]
        return exported

    def absorb(self, entries: Iterable[ExportedEntry]) -> int:
        """Adopt migrated entries, preserving their original expiry deadlines.

        Entries the cache already holds are skipped (the local copy is at
        least as fresh — it was written under this shard's traffic), as are
        entries that would land already-evictable into a full cache.  Returns
        the number actually adopted; capacity eviction applies as usual.
        """
        adopted = 0
        for entry in entries:
            if entry.key in self._entries:
                continue
            self._entries[entry.key] = _Entry(value=entry.value, expires_at=entry.expires_at)
            self._entries.move_to_end(entry.key)
            adopted += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return adopted
