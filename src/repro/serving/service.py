"""The online recommendation-serving facade.

``RecommendationService`` turns the trained CADRL artifacts — knowledge graph,
category graph, CGGNN representations and the shared policy — into a service
with one request/response API:

* results are cached (LRU + TTL) on the full request identity;
* batches are deduplicated and their shared rollout work vectorised
  (:mod:`repro.serving.batching`);
* cold users and over-budget requests degrade through the tier chain of
  :mod:`repro.serving.fallback` instead of failing or stalling;
* every request feeds the rolling telemetry (:mod:`repro.serving.telemetry`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..cggnn.model import Representations
from ..darl.collaborative import GuidanceModel
from ..darl.inference import InferenceConfig, PathRecommender
from ..darl.shared_policy import SharedPolicyNetworks
from ..embeddings.transe import TransEModel
from ..kg.category_graph import CategoryGraph
from ..kg.graph import KnowledgeGraph
from ..rl.trajectory import RecommendationPath
from .batching import MicroBatcher
from .cache import CacheKey, ResultCache
from .fallback import (
    RepresentationFallbackRanker,
    ServingTier,
    TieredRanker,
    TransEFallbackRanker,
)
from .telemetry import ServingTelemetry


@dataclass
class ServingConfig:
    """Operational knobs of the service (model knobs live in the recommender)."""

    cache_capacity: int = 1024
    cache_ttl_seconds: float = 300.0
    telemetry_window: int = 512
    assumed_full_search_ms: float = 50.0
    latency_ewma_alpha: float = 0.2
    default_top_k: int = 10

    def validate(self) -> None:
        if self.cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive")
        if self.cache_ttl_seconds <= 0:
            raise ValueError("cache_ttl_seconds must be positive")
        if self.telemetry_window <= 1:
            raise ValueError("telemetry_window must be at least 2")
        if self.assumed_full_search_ms <= 0:
            raise ValueError("assumed_full_search_ms must be positive")
        if not 0.0 < self.latency_ewma_alpha <= 1.0:
            raise ValueError("latency_ewma_alpha must lie in (0, 1]")
        if self.default_top_k <= 0:
            raise ValueError("default_top_k must be positive")


@dataclass(frozen=True)
class RecommendationRequest:
    """One user's recommendation query.

    ``latency_budget_ms`` is the caller's deadline hint: requests whose budget
    is below the service's current full-search cost estimate are answered from
    a cheaper tier.  ``allow_stale`` opts in/out of expired cached results for
    such over-budget requests.
    """

    user_entity: int
    top_k: int = 10
    exclude_items: FrozenSet[int] = frozenset()
    latency_budget_ms: Optional[float] = None
    allow_stale: bool = True

    def __post_init__(self) -> None:
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")
        if self.latency_budget_ms is not None and self.latency_budget_ms < 0:
            raise ValueError("latency_budget_ms must be non-negative")
        if not isinstance(self.exclude_items, frozenset):
            object.__setattr__(self, "exclude_items", frozenset(self.exclude_items))

    def cache_key(self) -> CacheKey:
        return (self.user_entity, self.top_k, self.exclude_items)


@dataclass(frozen=True)
class CachedResult:
    """What the result cache stores per key: the answer plus its provenance.

    ``source_tier`` records which tier *computed* the items (``FULL`` for beam
    search, ``EMBEDDING`` for cold-user fallback answers), so cache and stale
    hits can report where their payload originally came from — without this a
    cached cold-user embedding answer is indistinguishable from a cached full
    search, which blocks per-request correctness oracles (:mod:`repro.simulate`).
    """

    items: Tuple[int, ...]
    paths: Tuple[RecommendationPath, ...]
    source_tier: ServingTier
    #: Artifact generation whose tables computed this payload.  Survives
    #: cache/stale hits, so an answer computed before a live generation swap
    #: keeps reporting the generation it is actually consistent with.
    generation: int = 0


@dataclass
class RecommendationResponse:
    """Served result: ranked item entities plus provenance.

    ``tier`` is how *this* request was answered; ``source_tier`` is the tier
    that originally computed the payload (they differ on cache/stale hits,
    e.g. ``tier=CACHE, source_tier=FULL`` for a cached beam-search result).
    ``shed`` marks answers degraded by cluster backpressure
    (:class:`repro.cluster.ClusterService` saturation) rather than by the
    request's own latency budget — oracles judge such answers under
    degraded-tier rules even when the original request was unconstrained.
    """

    request: RecommendationRequest
    items: List[int]
    paths: List[RecommendationPath]
    tier: ServingTier
    source_tier: ServingTier
    cache_hit: bool
    latency_ms: float
    shed: bool = False
    #: Artifact generation that computed the payload (cache hits report the
    #: generation of the *cached* answer, not the serving service's own).
    generation: int = 0
    #: Fault provenance: ``None`` on the fault-free path, otherwise why the
    #: answer may deviate from the fault-free replay — ``"circuit_open"``
    #: (breakers rerouted or shed the request), ``"retried"`` (served via the
    #: retry path, or from cache state a retry perturbed),
    #: ``"retry_exhausted"`` (the retry budget ran out),
    #: ``"quarantined"`` (a corrupt generation was refused at swap time) or
    #: ``"swap_interrupted"`` (served while a crashed swap awaits recovery).
    fault: Optional[str] = None

    @property
    def explainable(self) -> bool:
        """Whether explanation paths are attached (full-search tiers only)."""
        return bool(self.paths)


class RecommendationService:
    """Facade over the trained CADRL artifacts for online traffic.

    Construct either from the raw artifacts (the issue's canonical signature)
    or via :meth:`from_cadrl` from a fitted :class:`repro.darl.CADRL` model.
    """

    def __init__(self, graph: KnowledgeGraph, category_graph: CategoryGraph,
                 representations: Representations, policy: SharedPolicyNetworks,
                 *, guidance: Optional[GuidanceModel] = None,
                 inference_config: Optional[InferenceConfig] = None,
                 recommender: Optional[PathRecommender] = None,
                 transe: Optional[TransEModel] = None,
                 config: Optional[ServingConfig] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 name: str = "RecommendationService",
                 generation: int = 0) -> None:
        self.config = config or ServingConfig()
        self.config.validate()
        self.name = name
        self.generation = generation
        self._clock = clock
        self.recommender = recommender or PathRecommender(
            graph, category_graph, representations, policy,
            guidance=guidance, config=inference_config)
        self.graph = self.recommender.graph
        self.cache = ResultCache(capacity=self.config.cache_capacity,
                                 ttl_seconds=self.config.cache_ttl_seconds,
                                 clock=clock)
        self.telemetry = ServingTelemetry(window=self.config.telemetry_window, clock=clock)
        # Kept so a cluster can clone this shard's fallback stack when it
        # scales up (a new shard must rank with the same model to stay
        # bit-identical with its peers).
        self.transe = transe
        ranker = (TransEFallbackRanker(transe, self.graph) if transe is not None
                  else RepresentationFallbackRanker(self.recommender.representations,
                                                    self.graph))
        self.tiers = TieredRanker(self.graph, ranker,
                                  assumed_full_search_ms=self.config.assumed_full_search_ms,
                                  ewma_alpha=self.config.latency_ewma_alpha)
        self.batcher = MicroBatcher(self.recommender)

    @classmethod
    def from_cadrl(cls, model, *, transe: Optional[TransEModel] = None,
                   config: Optional[ServingConfig] = None,
                   clock: Callable[[], float] = time.perf_counter,
                   name: str = "CADRL (served)",
                   generation: int = 0) -> "RecommendationService":
        """Wrap a fitted :class:`repro.darl.CADRL` facade, reusing its recommender.

        ``clock`` is injectable like in the main constructor (e.g. a
        :class:`repro.simulate.TraceClock` for virtual-time load replays).
        """
        if model.recommender is None:
            raise RuntimeError("CADRL.fit must be called before serving")
        return cls(model.graph, model.category_graph, model.representations,
                   model.recommender.policy, recommender=model.recommender,
                   transe=transe, config=config, clock=clock, name=name,
                   generation=generation)

    @classmethod
    def from_artifacts(cls, path, *, config: Optional[ServingConfig] = None,
                       clock: Callable[[], float] = time.perf_counter,
                       name: str = "CADRL (served from artifacts)"
                       ) -> "RecommendationService":
        """Boot a service from a persisted pipeline directory.

        ``path`` is an artifact directory written by ``python -m repro run``
        (or :func:`repro.pipeline.save_pipeline`).  The model stack is
        restored purely from disk — no training code runs — so a fresh
        serving process can come up from artifacts alone.  ``config``
        overrides the persisted :class:`ServingConfig`; the TransE table is
        restored too, so the cold-user fallback tier ranks with the same
        geometry as the original process.
        """
        from ..pipeline import load_pipeline  # deferred: serving stays import-light

        result = load_pipeline(path, until=("train",))
        serving_config = config or result.config.serving
        return cls.from_cadrl(result.cadrl, transe=result.transe,
                              config=serving_config, clock=clock, name=name)

    # ------------------------------------------------------------------ #
    # request construction helpers
    # ------------------------------------------------------------------ #
    def build_requests(self, user_entities: Sequence[int], top_k: Optional[int] = None,
                       exclude_items: Optional[Dict[int, Iterable[int]]] = None,
                       latency_budget_ms: Optional[float] = None
                       ) -> List[RecommendationRequest]:
        """Uniform requests for a list of users (evaluation / warm-up helper)."""
        exclude_items = exclude_items or {}
        k = top_k or self.config.default_top_k
        return [RecommendationRequest(
                    user_entity=user, top_k=k,
                    exclude_items=frozenset(exclude_items.get(user, ())),
                    latency_budget_ms=latency_budget_ms)
                for user in user_entities]

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def serve(self, request: RecommendationRequest,
              _precomputed_full: Optional[List[RecommendationPath]] = None,
              _precomputed_cost_ms: float = 0.0) -> RecommendationResponse:
        """Answer one request through cache → tier selection → ranking.

        ``_precomputed_full`` carries a full-search result computed by
        :meth:`serve_many`'s batched frontier search; it is only consumed if
        this request independently lands on the full tier, and its per-request
        share of the batch cost (``_precomputed_cost_ms``) feeds the tier cost
        estimator exactly like an inline search would.
        """
        start = self._clock()
        key = request.cache_key()
        paths: Sequence[RecommendationPath] = ()
        generation = self.generation
        cached = self.cache.get(key)
        if cached is not None:
            items, paths, source_tier = cached.items, cached.paths, cached.source_tier
            generation = cached.generation
            tier, cache_hit = ServingTier.CACHE, True
        else:
            cache_hit = False
            tier = self.tiers.choose(request, stale_available=self.cache.has_stale(key))
            if tier is ServingTier.FULL:
                if _precomputed_full is not None:
                    full = _precomputed_full
                else:
                    full = self.recommender.recommend(
                        request.user_entity, exclude_items=set(request.exclude_items),
                        top_k=request.top_k)
                items = [path.item_entity for path in full]
                paths = full
                source_tier = ServingTier.FULL
                # Cached values are immutable tuples: responses hand out fresh
                # lists, so a caller mutating them cannot corrupt the cache.
                self.cache.put(key, CachedResult(tuple(items), tuple(paths),
                                                 ServingTier.FULL,
                                                 generation=self.generation))
                self.tiers.observe_full_search(
                    _precomputed_cost_ms + (self._clock() - start) * 1000.0)
            elif tier is ServingTier.STALE:
                stale = self.cache.get_stale(key)
                items, paths, source_tier = stale.items, stale.paths, stale.source_tier
                generation = stale.generation
            else:
                items = self.tiers.fallback_items(request)
                source_tier = ServingTier.EMBEDDING
                if self.tiers.is_cold(request.user_entity):
                    # For cold users the full tier is never an option, so the
                    # embedding answer is the best one — cache it.  Over-budget
                    # warm users are *not* cached: their key must stay free for
                    # the full-quality result a generous request will compute.
                    self.cache.put(key, CachedResult(tuple(items), (),
                                                     ServingTier.EMBEDDING,
                                                     generation=self.generation))
        latency_ms = (self._clock() - start) * 1000.0
        self.telemetry.record(latency_ms, tier, cache_hit=cache_hit)
        return RecommendationResponse(request=request, items=list(items),
                                      paths=list(paths), tier=tier,
                                      source_tier=source_tier,
                                      cache_hit=cache_hit, latency_ms=latency_ms,
                                      generation=generation)

    def serve_many(self, requests: Sequence[RecommendationRequest]
                   ) -> List[RecommendationResponse]:
        """Answer a burst of requests with dedup + vectorised shared work.

        Unique uncached full-tier requests are answered by **one** batched
        frontier search (milestone rollout and beam expansion advance in
        lock-step across the whole burst); the per-request loop consumes those
        precomputed results under the normal tier/cache bookkeeping, and
        duplicate request keys collapse into cache hits after the first
        computation (full-search and cold-user results are cached; over-budget
        stale/embedding answers for warm users are not, so their keys stay
        free for a full result).
        """
        full_requests: List[RecommendationRequest] = []
        seen_keys = set()
        for request in requests:
            key = request.cache_key()
            if key in seen_keys or self.cache.has(key):
                continue
            seen_keys.add(key)
            if request.latency_budget_ms is not None:
                # Budgeted requests keep the per-request path: their tier is
                # decided at serve time against the *current* cost estimate,
                # so a mid-burst downgrade still avoids the full search
                # instead of discarding an eagerly computed one.
                continue
            tier = self.tiers.choose(request, stale_available=self.cache.has_stale(key))
            if tier is ServingTier.FULL:
                full_requests.append(request)

        precomputed: Dict[CacheKey, List[RecommendationPath]] = {}
        share_ms = 0.0
        if len(full_requests) > 1:
            start = self._clock()
            batched = self.recommender.recommend_requests(
                [(request.user_entity, set(request.exclude_items), request.top_k)
                 for request in full_requests])
            share_ms = (self._clock() - start) * 1000.0 / len(full_requests)
            precomputed = {request.cache_key(): paths
                           for request, paths in zip(full_requests, batched)}
        elif full_requests:
            self.batcher.warm_milestones([request.user_entity
                                          for request in full_requests])
        return [self.serve(request,
                           _precomputed_full=precomputed.get(request.cache_key()),
                           _precomputed_cost_ms=share_ms
                           if request.cache_key() in precomputed else 0.0)
                for request in requests]

    def warm_up(self, user_entities: Sequence[int], top_k: Optional[int] = None
                ) -> List[RecommendationResponse]:
        """Pre-populate the milestone and result caches for expected traffic."""
        return self.serve_many(self.build_requests(user_entities, top_k=top_k))

    # ------------------------------------------------------------------ #
    # maintenance & observability
    # ------------------------------------------------------------------ #
    def invalidate_user(self, user_entity: int) -> int:
        """Drop a user's cached results and milestone trajectory.

        Call after the user's KG neighbourhood changed (new interaction);
        returns the number of dropped result-cache entries.
        """
        self.recommender.milestone_cache.pop(user_entity, None)
        return self.cache.invalidate_user(user_entity)

    def invalidate_entities(self, entities: Iterable[int]) -> int:
        """Scoped invalidation after a streaming delta touched ``entities``.

        Drops the milestone trajectories of touched users and every result
        whose user or items intersect the set, leaving the rest of the cache
        (and its eviction order) alone; returns the number of dropped
        result-cache entries.
        """
        touched = set(entities)
        for entity in touched:
            self.recommender.milestone_cache.pop(entity, None)
        return self.cache.invalidate_entities(touched)

    def telemetry_snapshot(self) -> Dict:
        """Telemetry merged with cache statistics and the tier cost estimate."""
        snapshot = self.telemetry.snapshot()
        snapshot["cache"] = {
            "size": len(self.cache),
            "hits": self.cache.stats.hits,
            "misses": self.cache.stats.misses,
            "stale_hits": self.cache.stats.stale_hits,
            "evictions": self.cache.stats.evictions,
            "invalidations": self.cache.stats.invalidations,
            "hit_rate": self.cache.stats.hit_rate,
        }
        snapshot["estimated_full_search_ms"] = self.tiers.estimated_full_search_ms
        snapshot["generation"] = self.generation
        return snapshot

    # ------------------------------------------------------------------ #
    # timing-harness surface (duck-types the Table III recommender protocol)
    # ------------------------------------------------------------------ #
    def recommend_items(self, user_entity: int, top_k: int = 10) -> List[int]:
        """Ranked item entities through the full serving path."""
        return self.serve(RecommendationRequest(user_entity=user_entity,
                                                top_k=top_k)).items

    def find_paths(self, user_entity: int, num_paths: int) -> List[RecommendationPath]:
        """Raw path discovery, passed through to the underlying recommender."""
        return self.recommender.find_paths(user_entity, num_paths)
