"""Serving telemetry: rolling latency percentiles, QPS and tier usage.

A fixed-size rolling window (default: the last 512 requests) keeps the
percentile and QPS estimates responsive to the current traffic mix without
unbounded memory; tier and cache counters are cumulative since start/reset.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, Tuple

import numpy as np

PERCENTILES = (50.0, 95.0, 99.0)


class ServingTelemetry:
    """Aggregates per-request observations into a snapshot dict."""

    def __init__(self, window: int = 512,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if window <= 1:
            raise ValueError("telemetry window must be at least 2 requests")
        self.window = window
        self._clock = clock
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=window)
        self._tier_counts: Counter = Counter()
        self._cache_hits = 0
        self._requests = 0

    # ------------------------------------------------------------------ #
    def record(self, latency_ms: float, tier: Any, cache_hit: bool = False) -> None:
        """Record one served request (``tier`` is a ``ServingTier`` or string)."""
        self._samples.append((self._clock(), float(latency_ms)))
        self._tier_counts[str(getattr(tier, "value", tier))] += 1
        self._cache_hits += int(cache_hit)
        self._requests += 1

    # ------------------------------------------------------------------ #
    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 latency (ms) over the rolling window; NaN when empty."""
        if not self._samples:
            return {f"p{int(p)}": float("nan") for p in PERCENTILES}
        latencies = np.array([latency for _, latency in self._samples])
        values = np.percentile(latencies, PERCENTILES)
        return {f"p{int(p)}": float(v) for p, v in zip(PERCENTILES, values)}

    def qps(self) -> float:
        """Requests per second across the rolling window (0.0 if undefined)."""
        if len(self._samples) < 2:
            return 0.0
        span = self._samples[-1][0] - self._samples[0][0]
        if span <= 0.0:
            return 0.0
        return (len(self._samples) - 1) / span

    @property
    def requests(self) -> int:
        return self._requests

    def cache_hit_rate(self) -> float:
        return self._cache_hits / self._requests if self._requests else 0.0

    def tier_counts(self) -> Dict[str, int]:
        return dict(self._tier_counts)

    def snapshot(self) -> Dict[str, Any]:
        """One dict with everything a dashboard (or a test) wants to scrape."""
        return {
            "requests": self._requests,
            "qps": self.qps(),
            "latency_ms": self.latency_percentiles(),
            "cache_hit_rate": self.cache_hit_rate(),
            "tiers": self.tier_counts(),
        }

    def reset(self) -> None:
        self._samples.clear()
        self._tier_counts.clear()
        self._cache_hits = 0
        self._requests = 0
