"""Serving telemetry: rolling latency percentiles, QPS and tier usage.

A fixed-size rolling window (default: the last 512 requests) keeps the
percentile and QPS estimates responsive to the current traffic mix without
unbounded memory; tier and cache counters are cumulative since start/reset.

Two conventions matter to consumers:

* **Undefined is NaN, not 0.0** — an empty window has no percentiles, no QPS
  and no hit rate; every such field reads ``nan`` so dashboards and tests
  can't mistake "no traffic yet" for "blazingly fast".
* **Snapshots are mergeable** — :meth:`ServingTelemetry.export_state` hands
  out the raw window samples plus the cumulative counters, so an aggregator
  (:class:`repro.cluster.ClusterTelemetry`) can pool several instances and
  compute *exact* cluster-wide percentiles/QPS instead of averaging
  per-shard percentiles (which is statistically meaningless).
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, Sequence, Tuple

import numpy as np

#: Default latency percentiles; p99.9 is included because tail latency is what
#: capacity planning actually budgets for.
PERCENTILES = (50.0, 95.0, 99.0, 99.9)


def percentile_label(percentile: float) -> str:
    """Canonical snapshot key for a percentile: ``p50``, ``p99``, ``p99.9``."""
    return f"p{percentile:g}"


def latency_percentiles_of(samples_ms: Sequence[float],
                           percentiles: Sequence[float] = PERCENTILES
                           ) -> Dict[str, float]:
    """Percentile dict over raw latencies; uniformly NaN when empty."""
    if len(samples_ms) == 0:
        return {percentile_label(p): float("nan") for p in percentiles}
    values = np.percentile(np.asarray(samples_ms, dtype=np.float64),
                           list(percentiles))
    return {percentile_label(p): float(v)
            for p, v in zip(percentiles, values)}


def qps_of(timestamps: Sequence[float]) -> float:
    """Requests/second across a sample timeline; NaN when undefined.

    Fewer than two samples (or a zero span — e.g. a frozen virtual clock)
    carry no rate information, so the answer is NaN rather than a fake 0.0.
    """
    if len(timestamps) < 2:
        return float("nan")
    span = timestamps[-1] - timestamps[0]
    if span <= 0.0:
        return float("nan")
    return (len(timestamps) - 1) / span


class ServingTelemetry:
    """Aggregates per-request observations into a snapshot dict."""

    def __init__(self, window: int = 512,
                 clock: Callable[[], float] = time.monotonic,
                 percentiles: Sequence[float] = PERCENTILES) -> None:
        if window <= 1:
            raise ValueError("telemetry window must be at least 2 requests")
        if not percentiles or any(not 0.0 < p <= 100.0 for p in percentiles):
            raise ValueError("percentiles must be non-empty and lie in (0, 100]")
        self.window = window
        self.percentiles = tuple(percentiles)
        self._clock = clock
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=window)
        self._tier_counts: Counter = Counter()
        self._cache_hits = 0
        self._requests = 0

    # ------------------------------------------------------------------ #
    def record(self, latency_ms: float, tier: Any, cache_hit: bool = False) -> None:
        """Record one served request (``tier`` is a ``ServingTier`` or string)."""
        self._samples.append((self._clock(), float(latency_ms)))
        self._tier_counts[str(getattr(tier, "value", tier))] += 1
        self._cache_hits += int(cache_hit)
        self._requests += 1

    # ------------------------------------------------------------------ #
    def latency_percentiles(self) -> Dict[str, float]:
        """Configured latency percentiles (ms) over the window; NaN when empty."""
        return latency_percentiles_of([latency for _, latency in self._samples],
                                      self.percentiles)

    def qps(self) -> float:
        """Requests per second across the rolling window (NaN if undefined)."""
        return qps_of([timestamp for timestamp, _ in self._samples])

    @property
    def requests(self) -> int:
        return self._requests

    def cache_hit_rate(self) -> float:
        """Cumulative hit rate; NaN before any traffic (empty ≠ 0% hits)."""
        if not self._requests:
            return float("nan")
        return self._cache_hits / self._requests

    def tier_counts(self) -> Dict[str, int]:
        return dict(self._tier_counts)

    # ------------------------------------------------------------------ #
    def export_state(self) -> Dict[str, Any]:
        """The mergeable representation: raw window + cumulative counters.

        ``samples`` is the rolling window as ``(timestamp, latency_ms)``
        pairs in arrival order; the counters are cumulative since reset.
        Aggregators pool several states and recompute exact percentiles/QPS
        over the union (see :class:`repro.cluster.ClusterTelemetry`).
        """
        return {
            "samples": tuple(self._samples),
            "tier_counts": dict(self._tier_counts),
            "cache_hits": self._cache_hits,
            "requests": self._requests,
        }

    def snapshot(self) -> Dict[str, Any]:
        """One dict with everything a dashboard (or a test) wants to scrape."""
        return {
            "requests": self._requests,
            "qps": self.qps(),
            "latency_ms": self.latency_percentiles(),
            "cache_hit_rate": self.cache_hit_rate(),
            "tiers": self.tier_counts(),
        }

    def reset(self) -> None:
        self._samples.clear()
        self._tier_counts.clear()
        self._cache_hits = 0
        self._requests = 0
