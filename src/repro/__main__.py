"""``python -m repro`` — the repository's single CLI (see :mod:`repro.cli`)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
