"""Builders that turn an interaction dataset into a knowledge graph.

This is the data-processing step shared with PGPR/ADAC-style pipelines: users,
items, brands and features become entities; purchases, mentions, descriptions
and catalogue co-occurrences become relations (plus automatically added
inverses); the Amazon category metadata becomes the item → category map used
to derive the category knowledge graph ``Gc``.

Only *training* interactions are used to build the graph so the held-out test
items remain reachable only through genuine multi-hop structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..data.schema import Interaction, InteractionDataset
from .category_graph import CategoryGraph
from .entities import EntityStore, EntityType
from .graph import KnowledgeGraph
from .relations import Relation

_ITEM_RELATION_MAP = {
    "also_bought": Relation.ALSO_BOUGHT,
    "also_viewed": Relation.ALSO_VIEWED,
    "bought_together": Relation.BOUGHT_TOGETHER,
}


class KGBuilder:
    """Builds a :class:`KnowledgeGraph` (and its ``Gc``) from a dataset."""

    def __init__(self, dataset: InteractionDataset) -> None:
        self.dataset = dataset
        self.entities = EntityStore()
        self.user_entity: Dict[int, int] = {}
        self.item_entity: Dict[int, int] = {}
        self.brand_entity: Dict[int, int] = {}
        self.feature_entity: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def build(self, train_interactions: Optional[Iterable[Interaction]] = None
              ) -> Tuple[KnowledgeGraph, CategoryGraph]:
        """Construct the KG and its category graph.

        Parameters
        ----------
        train_interactions:
            The interactions to materialise as ``purchase``/``mention`` edges.
            Defaults to the full log (useful for exploratory analysis); the
            experiment harness always passes the training split.
        """
        interactions = list(train_interactions if train_interactions is not None
                            else self.dataset.interactions)
        self._register_entities()
        graph = KnowledgeGraph(self.entities)
        graph.set_category_names(self.dataset.category_names)

        self._add_catalogue_edges(graph)
        self._add_interaction_edges(graph, interactions)
        self._assign_categories(graph)

        category_graph = CategoryGraph.from_knowledge_graph(graph)
        return graph, category_graph

    # ------------------------------------------------------------------ #
    def _register_entities(self) -> None:
        for user_id in range(self.dataset.num_users):
            entity = self.entities.add(EntityType.USER, f"user_{user_id}")
            self.user_entity[user_id] = entity.entity_id
        for product in self.dataset.products:
            entity = self.entities.add(EntityType.ITEM, product.name)
            self.item_entity[product.item_id] = entity.entity_id
        for brand_id, name in enumerate(self.dataset.brand_names):
            entity = self.entities.add(EntityType.BRAND, name)
            self.brand_entity[brand_id] = entity.entity_id
        for feature_id, name in enumerate(self.dataset.feature_names):
            entity = self.entities.add(EntityType.FEATURE, name)
            self.feature_entity[feature_id] = entity.entity_id

    def _add_catalogue_edges(self, graph: KnowledgeGraph) -> None:
        for product in self.dataset.products:
            item = self.item_entity[product.item_id]
            graph.add_triplet(item, Relation.PRODUCED_BY, self.brand_entity[product.brand_id])
            for feature_id in product.feature_ids:
                graph.add_triplet(item, Relation.DESCRIBED_BY, self.feature_entity[feature_id])
        for relation in self.dataset.item_relations:
            source = self.item_entity[relation.source_item_id]
            target = self.item_entity[relation.target_item_id]
            graph.add_triplet(source, _ITEM_RELATION_MAP[relation.relation], target)

    def _add_interaction_edges(self, graph: KnowledgeGraph,
                               interactions: Iterable[Interaction]) -> None:
        for interaction in interactions:
            user = self.user_entity[interaction.user_id]
            item = self.item_entity[interaction.item_id]
            graph.add_triplet(user, Relation.PURCHASE, item)
            for feature_id in interaction.mentioned_feature_ids:
                graph.add_triplet(user, Relation.MENTION, self.feature_entity[feature_id])

    def _assign_categories(self, graph: KnowledgeGraph) -> None:
        for product in self.dataset.products:
            graph.set_item_category(self.item_entity[product.item_id], product.category_id)

    # ------------------------------------------------------------------ #
    # id translation helpers used by evaluation and the experiment harness
    # ------------------------------------------------------------------ #
    def user_to_entity(self, user_id: int) -> int:
        """Entity id of dataset user ``user_id``."""
        return self.user_entity[user_id]

    def item_to_entity(self, item_id: int) -> int:
        """Entity id of dataset item ``item_id``."""
        return self.item_entity[item_id]

    def entity_to_item(self, entity_id: int) -> Optional[int]:
        """Dataset item id of an item entity (``None`` for non-items)."""
        if not hasattr(self, "_entity_to_item"):
            self._entity_to_item = {ent: item for item, ent in self.item_entity.items()}
        return self._entity_to_item.get(entity_id)


def build_knowledge_graph(dataset: InteractionDataset,
                          train_interactions: Optional[Iterable[Interaction]] = None
                          ) -> Tuple[KnowledgeGraph, CategoryGraph, KGBuilder]:
    """Convenience wrapper returning the graph, its ``Gc`` and the builder."""
    builder = KGBuilder(dataset)
    graph, category_graph = builder.build(train_interactions)
    return graph, category_graph, builder
