"""The knowledge-graph substrate: triplet store + adjacency with O(1) lookups.

``KnowledgeGraph`` is the environment every recommender in this repository
walks over.  It stores typed triplets ``(head, relation, tail)`` together with
the automatically added inverse triplets (Section III of the paper), offers
neighbour queries used by both the CGGNN and the RL agents, and records the
item → category assignment from which the category knowledge graph ``Gc`` is
derived.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .adjacency import CSRAdjacency, compile_adjacency, patch_adjacency
from .entities import EntityStore, EntityType
from .relations import Relation, inverse_of, schema_is_valid


@dataclass(frozen=True)
class Triplet:
    """A directed, typed edge ``head --relation--> tail``."""

    head: int
    relation: Relation
    tail: int


class KnowledgeGraph:
    """Multi-relational graph over the entities of :class:`EntityStore`.

    Parameters
    ----------
    entities:
        The entity registry.  The graph does not own it, merely references it.
    validate_schema:
        If ``True`` (default), :meth:`add_triplet` rejects edges that violate
        the Amazon relation schema (e.g. a ``purchase`` edge between two items).
    """

    def __init__(self, entities: EntityStore, validate_schema: bool = True) -> None:
        self.entities = entities
        self.validate_schema = validate_schema
        self._triplets: List[Triplet] = []
        self._edges: Set[Tuple[int, Relation, int]] = set()
        self._outgoing: Dict[int, List[Tuple[Relation, int]]] = defaultdict(list)
        self._incoming: Dict[int, List[Tuple[Relation, int]]] = defaultdict(list)
        self._item_category: Dict[int, int] = {}
        self._category_names: List[str] = []
        # Mutation counter + cached compiled view (see :meth:`adjacency`).
        # The validity key includes the entity count: the graph does not own
        # its EntityStore, so entities can appear without any edge write.
        self._version = 0
        self._adjacency: Optional[CSRAdjacency] = None
        self._adjacency_key: Tuple[int, int] = (-1, -1)
        # Entities whose outgoing row or category changed since the cached
        # view was built; lets :meth:`adjacency` delta-patch instead of
        # recompiling when the change is small relative to the graph.
        self._dirty_entities: Set[int] = set()
        self._full_compiles = 0
        self._delta_patches = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_triplet(self, head: int, relation: Relation, tail: int,
                    add_inverse: bool = True) -> bool:
        """Add a triplet (and by default its inverse).

        Returns ``True`` if the forward edge was new, ``False`` if it already
        existed.  Raises ``ValueError`` if the edge violates the schema and
        schema validation is enabled.
        """
        head_entity = self.entities.get(head)
        tail_entity = self.entities.get(tail)
        if self.validate_schema and not schema_is_valid(
                head_entity.entity_type, relation, tail_entity.entity_type):
            raise ValueError(
                f"triplet violates schema: ({head_entity.entity_type.value}, "
                f"{relation.value}, {tail_entity.entity_type.value})")
        key = (head, relation, tail)
        if key in self._edges:
            return False
        self._edges.add(key)
        self._triplets.append(Triplet(head, relation, tail))
        self._outgoing[head].append((relation, tail))
        self._incoming[tail].append((relation, head))
        self._dirty_entities.add(head)
        self._version += 1
        if add_inverse:
            self.add_triplet(tail, inverse_of(relation), head, add_inverse=False)
        return True

    def set_item_category(self, item_id: int, category_id: int) -> None:
        """Assign an item to a category (top-level ontology, not an entity)."""
        if not self.entities.is_item(item_id):
            raise ValueError(f"entity {item_id} is not an item")
        if category_id < 0:
            raise ValueError("category id must be non-negative")
        self._item_category[item_id] = category_id
        self._dirty_entities.add(item_id)
        self._version += 1

    def set_category_names(self, names: Sequence[str]) -> None:
        """Record human-readable category labels (index = category id)."""
        self._category_names = list(names)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_entities(self) -> int:
        return len(self.entities)

    @property
    def num_triplets(self) -> int:
        """Number of stored directed edges (forward + inverse)."""
        return len(self._triplets)

    @property
    def num_categories(self) -> int:
        if self._category_names:
            return len(self._category_names)
        if not self._item_category:
            return 0
        return max(self._item_category.values()) + 1

    def triplets(self) -> Iterator[Triplet]:
        """Iterate over all stored directed edges."""
        return iter(self._triplets)

    def has_edge(self, head: int, relation: Relation, tail: int) -> bool:
        """True if the directed edge exists."""
        return (head, relation, tail) in self._edges

    def category_of(self, item_id: int) -> Optional[int]:
        """Category id of ``item_id``, or ``None`` if unassigned / not an item."""
        return self._item_category.get(item_id)

    def category_name(self, category_id: int) -> str:
        """Human-readable label of a category."""
        if self._category_names and 0 <= category_id < len(self._category_names):
            return self._category_names[category_id]
        return f"category_{category_id}"

    def items_in_category(self, category_id: int) -> List[int]:
        """All item entity ids assigned to ``category_id``."""
        return [item for item, cat in self._item_category.items() if cat == category_id]

    def item_category_map(self) -> Dict[int, int]:
        """Copy of the item → category assignment."""
        return dict(self._item_category)

    # ------------------------------------------------------------------ #
    # compiled adjacency
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Mutation counter; bumped by every triplet/category write."""
        return self._version

    #: Delta-patch the cached CSR view instead of recompiling when at most
    #: this fraction of its rows is dirty; beyond it the bulk span copies stop
    #: paying for themselves and the one-pass full compile wins.
    ADJACENCY_PATCH_FRACTION = 0.25

    def adjacency(self) -> CSRAdjacency:
        """The compiled CSR view of this graph (cached until the graph mutates).

        This is the substrate of every vectorised hot path: action pruning,
        beam search and TransE pre-training all slice these arrays instead of
        walking the dict-of-lists adjacency.  Small mutations (a streaming
        ingestion burst) are folded in by :func:`patch_adjacency` — rebuilding
        only the dirty rows — and large ones fall back to the full recompile;
        both produce element-identical arrays.
        """
        key = (self._version, self.num_entities)
        if self._adjacency is None or self._adjacency_key != key:
            if self._patch_is_profitable():
                self._adjacency = patch_adjacency(self._adjacency, self,
                                                  self._dirty_entities)
                self._delta_patches += 1
            else:
                self._adjacency = compile_adjacency(self)
                self._full_compiles += 1
            self._adjacency_key = key
            self._dirty_entities.clear()
        return self._adjacency

    def _patch_is_profitable(self) -> bool:
        """Patch only small deltas over an existing view of the same history."""
        old = self._adjacency
        if old is None or old.num_entities > self.num_entities:
            return False
        if len(self._triplets) < old.num_edges:
            return False
        budget = max(1, int(self.ADJACENCY_PATCH_FRACTION * old.num_entities))
        new_entities = self.num_entities - old.num_entities
        return len(self._dirty_entities) + new_entities <= budget

    def adjacency_compile_stats(self) -> Dict[str, int]:
        """How the cached CSR view has been kept fresh so far."""
        return {"full_compiles": self._full_compiles,
                "delta_patches": self._delta_patches}

    # ------------------------------------------------------------------ #
    # neighbourhood queries
    # ------------------------------------------------------------------ #
    def outgoing(self, entity_id: int) -> List[Tuple[Relation, int]]:
        """Outgoing ``(relation, neighbour)`` pairs of an entity."""
        return list(self._outgoing.get(entity_id, ()))

    def incoming(self, entity_id: int) -> List[Tuple[Relation, int]]:
        """Incoming ``(relation, neighbour)`` pairs of an entity."""
        return list(self._incoming.get(entity_id, ()))

    def neighbors(self, entity_id: int) -> List[Tuple[Relation, int]]:
        """Alias for :meth:`outgoing` — inverse edges make the graph symmetric."""
        return self.outgoing(entity_id)

    def degree(self, entity_id: int) -> int:
        """Out-degree of an entity (== in-degree thanks to inverse edges)."""
        return len(self._outgoing.get(entity_id, ()))

    def neighbors_of_type(self, entity_id: int, entity_type: EntityType
                          ) -> List[Tuple[Relation, int]]:
        """Outgoing neighbours restricted to a given entity type."""
        return [(rel, tail) for rel, tail in self._outgoing.get(entity_id, ())
                if self.entities.type_of(tail) == entity_type]

    def neighbor_categories(self, item_id: int) -> List[int]:
        """Categories of the item-neighbours of ``item_id`` (Definition 2, N^c_v).

        The item's own category is included, matching the paper's use of the
        category context as meta-data shared with neighbouring items.
        """
        categories: List[int] = []
        seen: Set[int] = set()
        own = self.category_of(item_id)
        if own is not None:
            seen.add(own)
            categories.append(own)
        for _, tail in self._outgoing.get(item_id, ()):
            category = self.category_of(tail)
            if category is not None and category not in seen:
                seen.add(category)
                categories.append(category)
        return categories

    def purchased_items(self, user_id: int) -> List[int]:
        """Items the user purchased, read straight from the graph."""
        return [tail for rel, tail in self._outgoing.get(user_id, ())
                if rel == Relation.PURCHASE]

    # ------------------------------------------------------------------ #
    # statistics / reporting
    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, int]:
        """Summary counts matching the columns of Table II."""
        interactions = sum(1 for triplet in self._triplets
                           if triplet.relation == Relation.PURCHASE)
        return {
            "users": self.entities.count(EntityType.USER),
            "items": self.entities.count(EntityType.ITEM),
            "entities": self.num_entities,
            "interactions": interactions,
            "triplets": self.num_triplets,
            "categories": self.num_categories,
        }

    def average_items_per_category(self) -> float:
        """Items per category, the sparsity driver discussed for Clothing (RQ1)."""
        if self.num_categories == 0:
            return float("nan")  # no categories: the average is undefined, not 0
        return len(self._item_category) / self.num_categories

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.statistics()
        return (f"KnowledgeGraph(users={stats['users']}, items={stats['items']}, "
                f"entities={stats['entities']}, triplets={stats['triplets']})")
