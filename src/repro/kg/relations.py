"""Semantic relations of the Amazon-style KG, including inverse relations.

The paper's KGs have 14 relation types: 7 forward relations (Purchase,
Mention, Described_by, Produced_by, Also_bought, Also_viewed, Bought_together)
and their 7 inverses (Section V-A.1).  The entity agent walks over all of
them; the Purchase relation additionally anchors the semantic-strength
attention in the GGNN's adaptive propagation layer (Eq. 1).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Tuple

from .entities import EntityType


class Relation(str, Enum):
    """Forward and inverse relation types."""

    PURCHASE = "purchase"
    MENTION = "mention"
    DESCRIBED_BY = "described_by"
    PRODUCED_BY = "produced_by"
    ALSO_BOUGHT = "also_bought"
    ALSO_VIEWED = "also_viewed"
    BOUGHT_TOGETHER = "bought_together"
    REV_PURCHASE = "rev_purchase"
    REV_MENTION = "rev_mention"
    REV_DESCRIBED_BY = "rev_described_by"
    REV_PRODUCED_BY = "rev_produced_by"
    REV_ALSO_BOUGHT = "rev_also_bought"
    REV_ALSO_VIEWED = "rev_also_viewed"
    REV_BOUGHT_TOGETHER = "rev_bought_together"
    SELF_LOOP = "self_loop"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


FORWARD_RELATIONS: List[Relation] = [
    Relation.PURCHASE,
    Relation.MENTION,
    Relation.DESCRIBED_BY,
    Relation.PRODUCED_BY,
    Relation.ALSO_BOUGHT,
    Relation.ALSO_VIEWED,
    Relation.BOUGHT_TOGETHER,
]

_INVERSE: Dict[Relation, Relation] = {
    Relation.PURCHASE: Relation.REV_PURCHASE,
    Relation.MENTION: Relation.REV_MENTION,
    Relation.DESCRIBED_BY: Relation.REV_DESCRIBED_BY,
    Relation.PRODUCED_BY: Relation.REV_PRODUCED_BY,
    Relation.ALSO_BOUGHT: Relation.REV_ALSO_BOUGHT,
    Relation.ALSO_VIEWED: Relation.REV_ALSO_VIEWED,
    Relation.BOUGHT_TOGETHER: Relation.REV_BOUGHT_TOGETHER,
}
_INVERSE.update({inverse: forward for forward, inverse in list(_INVERSE.items())})
_INVERSE[Relation.SELF_LOOP] = Relation.SELF_LOOP


def inverse_of(relation: Relation) -> Relation:
    """Return the inverse relation (self-loop is its own inverse)."""
    return _INVERSE[relation]


def is_inverse(relation: Relation) -> bool:
    """True if ``relation`` is one of the reverse relation types."""
    return relation.value.startswith("rev_")


# Domain/range constraints: (head type, relation) -> tail type.  These mirror
# the schema of the Amazon KGs and let the builder validate triplets.
RELATION_SCHEMA: Dict[Relation, Tuple[EntityType, EntityType]] = {
    Relation.PURCHASE: (EntityType.USER, EntityType.ITEM),
    Relation.MENTION: (EntityType.USER, EntityType.FEATURE),
    Relation.DESCRIBED_BY: (EntityType.ITEM, EntityType.FEATURE),
    Relation.PRODUCED_BY: (EntityType.ITEM, EntityType.BRAND),
    Relation.ALSO_BOUGHT: (EntityType.ITEM, EntityType.ITEM),
    Relation.ALSO_VIEWED: (EntityType.ITEM, EntityType.ITEM),
    Relation.BOUGHT_TOGETHER: (EntityType.ITEM, EntityType.ITEM),
}
RELATION_SCHEMA.update({
    inverse_of(rel): (tail, head) for rel, (head, tail) in list(RELATION_SCHEMA.items())
})


#: Definition-order list of every relation; index = embedding-table row.
RELATION_LIST: List[Relation] = list(Relation)

_RELATION_INDEX: Dict[Relation, int] = {rel: i for i, rel in enumerate(RELATION_LIST)}

NUM_RELATIONS: int = len(RELATION_LIST)


def relation_index(relation: Relation) -> int:
    """Stable integer id for a relation (used by embedding tables)."""
    return _RELATION_INDEX[relation]


def relation_from_index(index: int) -> Relation:
    """Inverse of :func:`relation_index`."""
    return RELATION_LIST[index]


def all_relations() -> List[Relation]:
    """Every relation, including inverses and the self-loop."""
    return list(RELATION_LIST)


def schema_is_valid(head_type: EntityType, relation: Relation, tail_type: EntityType) -> bool:
    """Check a triplet's types against the relation schema."""
    if relation == Relation.SELF_LOOP:
        return head_type == tail_type
    expected = RELATION_SCHEMA.get(relation)
    if expected is None:
        return False
    return expected == (head_type, tail_type)
