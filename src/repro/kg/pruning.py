"""Action-space pruning strategies for RL walkers over the KG.

PGPR introduced score-based action pruning to keep the per-step action space
bounded; CADRL keeps a bound on both agents' action spaces (``|Ac| ≤ 10`` and
``|Ae| ≤ 50`` in the paper's hyper-parameter section) and additionally narrows
the entity agent's choices with category guidance.  Both strategies live here
so the baselines and CADRL share the exact same machinery.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .graph import KnowledgeGraph
from .relations import Relation

# An entity-level action is (relation, next_entity).
Action = Tuple[Relation, int]
ScoreFunction = Callable[[int, Relation, int], float]


def degree_prune(graph: KnowledgeGraph, entity_id: int, max_actions: int,
                 rng: Optional[np.random.Generator] = None) -> List[Action]:
    """Keep the ``max_actions`` neighbours with the highest degree.

    High-degree neighbours are hubs that keep many onward options open; this is
    the cheap structural prior PGPR-style methods use before any scoring model
    is available.  Ties are broken deterministically unless ``rng`` is given.
    """
    actions = graph.outgoing(entity_id)
    if len(actions) <= max_actions:
        return actions
    scored = [(graph.degree(tail), i) for i, (_, tail) in enumerate(actions)]
    if rng is not None:
        jitter = rng.random(len(scored)) * 1e-6
        scored = [(score + jitter[i], i) for (score, i) in scored]
    scored.sort(reverse=True)
    keep = [actions[i] for _, i in scored[:max_actions]]
    return keep


def score_prune(graph: KnowledgeGraph, entity_id: int, max_actions: int,
                score_fn: ScoreFunction) -> List[Action]:
    """Keep the ``max_actions`` highest-scoring actions under ``score_fn``.

    ``score_fn(head, relation, tail)`` is typically a TransE or CGGNN
    compatibility score; this is the "multi-hop scoring function" pruning used
    by PGPR and inherited by CADRL's entity agent.
    """
    actions = graph.outgoing(entity_id)
    if len(actions) <= max_actions:
        return actions
    scores = np.array([score_fn(entity_id, rel, tail) for rel, tail in actions])
    keep_indices = np.argsort(-scores)[:max_actions]
    return [actions[i] for i in keep_indices]


def category_guided_prune(graph: KnowledgeGraph, entity_id: int, max_actions: int,
                          target_category: Optional[int],
                          score_fn: Optional[ScoreFunction] = None) -> List[Action]:
    """CADRL's guidance-aware pruning.

    Actions leading to items inside ``target_category`` (the category agent's
    current milestone) are kept first; remaining slots are filled by the best
    scored (or highest-degree) alternatives.  With no guidance this degrades
    gracefully to plain score/degree pruning, which is what the
    ``CADRL w/o DARL`` ablation uses.
    """
    actions = graph.outgoing(entity_id)
    if len(actions) <= max_actions:
        return actions

    guided: List[Action] = []
    rest: List[Action] = []
    for relation, tail in actions:
        if target_category is not None and graph.category_of(tail) == target_category:
            guided.append((relation, tail))
        else:
            rest.append((relation, tail))

    if len(guided) >= max_actions:
        return guided[:max_actions]

    remaining = max_actions - len(guided)
    if score_fn is not None:
        scores = np.array([score_fn(entity_id, rel, tail) for rel, tail in rest])
        order = np.argsort(-scores)
    else:
        order = np.argsort([-graph.degree(tail) for _, tail in rest])
    guided.extend(rest[i] for i in order[:remaining])
    return guided


def ensure_self_loop(actions: Sequence[Action], entity_id: int) -> List[Action]:
    """Append a self-loop action so the walker can stop early (PGPR convention)."""
    result = list(actions)
    if not any(rel == Relation.SELF_LOOP for rel, _ in result):
        result.append((Relation.SELF_LOOP, entity_id))
    return result
