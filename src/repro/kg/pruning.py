"""Action-space pruning strategies for RL walkers over the KG.

PGPR introduced score-based action pruning to keep the per-step action space
bounded; CADRL keeps a bound on both agents' action spaces (``|Ac| ≤ 10`` and
``|Ae| ≤ 50`` in the paper's hyper-parameter section) and additionally narrows
the entity agent's choices with category guidance.  Both strategies live here
so the baselines and CADRL share the exact same machinery.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .adjacency import SELF_LOOP_INDEX, CSRAdjacency
from .graph import KnowledgeGraph
from .relations import Relation

# An entity-level action is (relation, next_entity).
Action = Tuple[Relation, int]
ScoreFunction = Callable[[int, Relation, int], float]

# An array-backed action set: (relation_index, target_entity) int arrays.
ActionArrays = Tuple[np.ndarray, np.ndarray]


def entity_prune_rng(seed: int, entity_id: int) -> np.random.Generator:
    """Seeded per-entity RNG substream for pruning tie-breaks.

    Deriving the stream from ``(seed, entity_id)`` makes the pruned action set
    of an entity a pure function of the graph and the seed — independent of
    the *order* in which entities are visited — so cached action sets are
    replay-deterministic across runs and across serving processes.
    """
    return np.random.default_rng((seed, entity_id))


def degree_prune(graph: KnowledgeGraph, entity_id: int, max_actions: int,
                 rng: Optional[np.random.Generator] = None) -> List[Action]:
    """Keep the ``max_actions`` neighbours with the highest degree.

    High-degree neighbours are hubs that keep many onward options open; this is
    the cheap structural prior PGPR-style methods use before any scoring model
    is available.  Ties are broken deterministically unless ``rng`` is given.
    """
    actions = graph.outgoing(entity_id)
    if len(actions) <= max_actions:
        return actions
    scored = [(graph.degree(tail), i) for i, (_, tail) in enumerate(actions)]
    if rng is not None:
        jitter = rng.random(len(scored)) * 1e-6
        scored = [(score + jitter[i], i) for (score, i) in scored]
    scored.sort(reverse=True)
    keep = [actions[i] for _, i in scored[:max_actions]]
    return keep


def score_prune(graph: KnowledgeGraph, entity_id: int, max_actions: int,
                score_fn: ScoreFunction) -> List[Action]:
    """Keep the ``max_actions`` highest-scoring actions under ``score_fn``.

    ``score_fn(head, relation, tail)`` is typically a TransE or CGGNN
    compatibility score; this is the "multi-hop scoring function" pruning used
    by PGPR and inherited by CADRL's entity agent.
    """
    actions = graph.outgoing(entity_id)
    if len(actions) <= max_actions:
        return actions
    scores = np.array([score_fn(entity_id, rel, tail) for rel, tail in actions])
    keep_indices = np.argsort(-scores)[:max_actions]
    return [actions[i] for i in keep_indices]


def category_guided_prune(graph: KnowledgeGraph, entity_id: int, max_actions: int,
                          target_category: Optional[int],
                          score_fn: Optional[ScoreFunction] = None) -> List[Action]:
    """CADRL's guidance-aware pruning.

    Actions leading to items inside ``target_category`` (the category agent's
    current milestone) are kept first; remaining slots are filled by the best
    scored (or highest-degree) alternatives.  With no guidance this degrades
    gracefully to plain score/degree pruning, which is what the
    ``CADRL w/o DARL`` ablation uses.
    """
    actions = graph.outgoing(entity_id)
    if len(actions) <= max_actions:
        return actions

    guided: List[Action] = []
    rest: List[Action] = []
    for relation, tail in actions:
        if target_category is not None and graph.category_of(tail) == target_category:
            guided.append((relation, tail))
        else:
            rest.append((relation, tail))

    if len(guided) >= max_actions:
        return guided[:max_actions]

    remaining = max_actions - len(guided)
    if score_fn is not None:
        scores = np.array([score_fn(entity_id, rel, tail) for rel, tail in rest])
        order = np.argsort(-scores)
    else:
        order = np.argsort([-graph.degree(tail) for _, tail in rest])
    guided.extend(rest[i] for i in order[:remaining])
    return guided


# --------------------------------------------------------------------------- #
# vectorised pruning on the compiled CSR view
# --------------------------------------------------------------------------- #
# These mirror the list-based functions above action for action (same order,
# same tie-breaking) but operate on int arrays: one slice + one argsort per
# call instead of a Python loop per neighbour.  The RL environments use them
# as the hot-path implementation; the list-based versions remain the readable
# reference (and are what the equivalence tests compare against).

def degree_prune_arrays(adjacency: CSRAdjacency, entity_id: int, max_actions: int,
                        rng: Optional[np.random.Generator] = None) -> ActionArrays:
    """Array-backed :func:`degree_prune`: identical action set and order."""
    relations, targets = adjacency.out_edges(entity_id)
    if len(targets) <= max_actions:
        return relations.copy(), targets.copy()
    scores = adjacency.degrees[targets].astype(np.float64)
    if rng is not None:
        scores = scores + rng.random(len(scores)) * 1e-6
    # Desc by score, ties broken towards the larger index — the sort order of
    # the list implementation's ``(score, index)`` tuples under reverse=True.
    order = np.lexsort((np.arange(len(scores)), scores))[::-1][:max_actions]
    return relations[order], targets[order]


def category_guided_prune_arrays(adjacency: CSRAdjacency, entity_id: int,
                                 max_actions: int,
                                 target_category: Optional[int]) -> ActionArrays:
    """Array-backed :func:`category_guided_prune` (degree-scored variant)."""
    relations, targets = adjacency.out_edges(entity_id)
    if len(targets) <= max_actions:
        return relations.copy(), targets.copy()

    if target_category is None:
        guided_mask = np.zeros(len(targets), dtype=bool)
    else:
        guided_mask = adjacency.entity_category[targets] == target_category
    guided = np.flatnonzero(guided_mask)
    if len(guided) >= max_actions:
        keep = guided[:max_actions]
        return relations[keep], targets[keep]

    rest = np.flatnonzero(~guided_mask)
    # Same np.argsort call on the same negated-degree array as the list
    # implementation, so equal-degree ties resolve identically.
    order = np.argsort(-adjacency.degrees[targets[rest]])
    keep = np.concatenate([guided, rest[order[: max_actions - len(guided)]]])
    return relations[keep], targets[keep]


def ensure_self_loop_arrays(actions: ActionArrays, entity_id: int) -> ActionArrays:
    """Array-backed :func:`ensure_self_loop`."""
    relations, targets = actions
    if not (relations == SELF_LOOP_INDEX).any():
        relations = np.append(relations, np.int32(SELF_LOOP_INDEX))
        targets = np.append(targets, np.int32(entity_id))
    return relations, targets


def ensure_self_loop(actions: Sequence[Action], entity_id: int) -> List[Action]:
    """Append a self-loop action so the walker can stop early (PGPR convention)."""
    result = list(actions)
    if not any(rel == Relation.SELF_LOOP for rel, _ in result):
        result.append((Relation.SELF_LOOP, entity_id))
    return result
