"""Knowledge-graph substrate: entities, relations, the KG, ``Gc`` and pruning."""

from .builder import KGBuilder, build_knowledge_graph
from .category_graph import CategoryGraph
from .entities import Entity, EntityStore, EntityType
from .graph import KnowledgeGraph, Triplet
from .pruning import category_guided_prune, degree_prune, ensure_self_loop, score_prune
from .relations import (
    FORWARD_RELATIONS,
    Relation,
    all_relations,
    inverse_of,
    is_inverse,
    relation_index,
    schema_is_valid,
)

__all__ = [
    "CategoryGraph",
    "Entity",
    "EntityStore",
    "EntityType",
    "FORWARD_RELATIONS",
    "KGBuilder",
    "KnowledgeGraph",
    "Relation",
    "Triplet",
    "all_relations",
    "build_knowledge_graph",
    "category_guided_prune",
    "degree_prune",
    "ensure_self_loop",
    "inverse_of",
    "is_inverse",
    "relation_index",
    "schema_is_valid",
    "score_prune",
]
