"""Knowledge-graph substrate: entities, relations, the KG, ``Gc`` and pruning."""

from .adjacency import CSRAdjacency, compile_adjacency, patch_adjacency
from .builder import KGBuilder, build_knowledge_graph
from .category_graph import CategoryGraph
from .entities import Entity, EntityStore, EntityType
from .graph import KnowledgeGraph, Triplet
from .pruning import (
    category_guided_prune,
    category_guided_prune_arrays,
    degree_prune,
    degree_prune_arrays,
    ensure_self_loop,
    ensure_self_loop_arrays,
    entity_prune_rng,
    score_prune,
)
from .relations import (
    FORWARD_RELATIONS,
    NUM_RELATIONS,
    RELATION_LIST,
    Relation,
    all_relations,
    inverse_of,
    is_inverse,
    relation_from_index,
    relation_index,
    schema_is_valid,
)

__all__ = [
    "CSRAdjacency",
    "CategoryGraph",
    "Entity",
    "EntityStore",
    "EntityType",
    "FORWARD_RELATIONS",
    "KGBuilder",
    "KnowledgeGraph",
    "NUM_RELATIONS",
    "RELATION_LIST",
    "Relation",
    "Triplet",
    "all_relations",
    "build_knowledge_graph",
    "category_guided_prune",
    "category_guided_prune_arrays",
    "compile_adjacency",
    "degree_prune",
    "degree_prune_arrays",
    "ensure_self_loop",
    "ensure_self_loop_arrays",
    "entity_prune_rng",
    "inverse_of",
    "is_inverse",
    "patch_adjacency",
    "relation_from_index",
    "relation_index",
    "schema_is_valid",
    "score_prune",
]
