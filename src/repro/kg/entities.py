"""Typed entities of the Amazon-style product knowledge graph.

The paper maps users, items, brands and (review) features to entities
(Section III: ``U, V, F, B ⊆ E``).  Entities are identified globally by an
integer id; the :class:`EntityStore` keeps the id ↔ (type, name) mapping and
the per-type index spaces needed by the embedding tables and the agents.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Tuple


class EntityType(str, Enum):
    """The four entity types used by the Amazon KGs in the paper."""

    USER = "user"
    ITEM = "item"
    BRAND = "brand"
    FEATURE = "feature"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Entity:
    """A single knowledge-graph entity.

    Attributes
    ----------
    entity_id:
        Global id, unique across all types.
    entity_type:
        One of :class:`EntityType`.
    name:
        Human-readable label used in explanation paths (e.g. ``"AJ Basketball"``).
    local_id:
        Index within the entity's own type (0-based), used by per-type tables.
    """

    entity_id: int
    entity_type: EntityType
    name: str
    local_id: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.entity_type.value}:{self.name}"


class EntityStore:
    """Registry of all entities with O(1) lookups by id, name or type."""

    def __init__(self) -> None:
        self._entities: List[Entity] = []
        self._by_type: Dict[EntityType, List[int]] = {etype: [] for etype in EntityType}
        self._by_name: Dict[Tuple[EntityType, str], int] = {}

    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._entities)

    def __contains__(self, entity_id: int) -> bool:
        return 0 <= entity_id < len(self._entities)

    def add(self, entity_type: EntityType, name: str) -> Entity:
        """Register a new entity and return it.

        Adding the same ``(type, name)`` twice returns the existing entity, so
        builders may call this idempotently.
        """
        key = (entity_type, name)
        if key in self._by_name:
            return self._entities[self._by_name[key]]
        entity_id = len(self._entities)
        local_id = len(self._by_type[entity_type])
        entity = Entity(entity_id=entity_id, entity_type=entity_type,
                        name=name, local_id=local_id)
        self._entities.append(entity)
        self._by_type[entity_type].append(entity_id)
        self._by_name[key] = entity_id
        return entity

    def get(self, entity_id: int) -> Entity:
        """Return the entity with global id ``entity_id``."""
        if entity_id not in self:
            raise KeyError(f"unknown entity id {entity_id}")
        return self._entities[entity_id]

    def find(self, entity_type: EntityType, name: str) -> Optional[Entity]:
        """Return the entity with the given type and name, or ``None``."""
        index = self._by_name.get((entity_type, name))
        return None if index is None else self._entities[index]

    def ids_of_type(self, entity_type: EntityType) -> List[int]:
        """Global ids of all entities of ``entity_type`` (in insertion order)."""
        return list(self._by_type[entity_type])

    def count(self, entity_type: EntityType) -> int:
        """Number of entities of ``entity_type``."""
        return len(self._by_type[entity_type])

    def type_of(self, entity_id: int) -> EntityType:
        """Type of the entity with global id ``entity_id``."""
        return self.get(entity_id).entity_type

    def is_item(self, entity_id: int) -> bool:
        """Convenience check used heavily by the agents and rewards."""
        return self.type_of(entity_id) == EntityType.ITEM

    def is_user(self, entity_id: int) -> bool:
        """Convenience check for user entities."""
        return self.type_of(entity_id) == EntityType.USER
