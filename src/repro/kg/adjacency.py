"""Compiled CSR view of a :class:`~repro.kg.graph.KnowledgeGraph`.

The dict-of-lists adjacency of :class:`KnowledgeGraph` is ideal for
construction but slow to *walk*: every neighbour enumeration allocates a list
of ``(Relation, int)`` tuples and every degree/category lookup is a dict hit.
The RL hot paths (action pruning, beam search, TransE pre-training) touch
millions of edges per second, so this module flattens the graph once into
contiguous ``int32`` arrays — the classic compressed-sparse-row layout — and
every hot query becomes an array slice or gather:

* ``indptr[e] : indptr[e + 1]`` delimits entity ``e``'s outgoing edges;
* ``relations`` / ``targets`` hold the relation index and target entity of
  each edge, in exactly the insertion order of the source graph (so pruning
  on the CSR view reproduces the list-based results bit for bit);
* ``degrees``, ``entity_category`` (``-1`` when unassigned) and ``is_item``
  answer the per-entity queries of the walkers without touching Python dicts;
* ``triplets`` is the ``(num_edges, 3)`` ``[head, relation, tail]`` table the
  TransE trainer consumes directly.

Compilation is cheap (one pass over the edges) and cached on the graph via
:meth:`KnowledgeGraph.adjacency`; any mutation of the graph bumps its version
counter and invalidates the cached view.

For *streaming* updates a full recompile is wasteful: a burst of new
interactions touches a handful of entity rows while the rest of the CSR arrays
is unchanged.  :func:`patch_adjacency` therefore delta-rebuilds only the dirty
rows — clean row spans are bulk-copied from the previous view, the append-only
triplet table is extended in place, and the result is element-identical to a
full :func:`compile_adjacency` (the full compile is kept, verbatim, as the
equivalence oracle for the property suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from .entities import EntityType
from .relations import Relation, relation_index

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .graph import KnowledgeGraph

#: Embedding-table row of the self-loop relation, shared by the array walkers.
SELF_LOOP_INDEX: int = relation_index(Relation.SELF_LOOP)


@dataclass(frozen=True)
class CSRAdjacency:
    """Frozen array-backed adjacency + per-entity metadata of one KG snapshot."""

    indptr: np.ndarray           # int32, shape (num_entities + 1,)
    relations: np.ndarray        # int32, shape (num_edges,) — relation_index per edge
    targets: np.ndarray          # int32, shape (num_edges,) — target entity per edge
    degrees: np.ndarray          # int32, shape (num_entities,) — out-degree
    entity_category: np.ndarray  # int32, shape (num_entities,) — category id, -1 if none
    is_item: np.ndarray          # bool,  shape (num_entities,)
    triplets: np.ndarray         # int64, shape (num_edges, 3) — [head, rel_idx, tail]

    @property
    def num_entities(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def out_edges(self, entity_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(relation_indices, targets)`` views of an entity's outgoing edges."""
        start, stop = self.indptr[entity_id], self.indptr[entity_id + 1]
        return self.relations[start:stop], self.targets[start:stop]

    def degree(self, entity_id: int) -> int:
        return int(self.degrees[entity_id])


def compile_adjacency(graph: "KnowledgeGraph") -> CSRAdjacency:
    """One-pass flattening of ``graph`` into a :class:`CSRAdjacency`.

    Edge order within each entity matches ``graph.outgoing(entity)`` exactly,
    which is what lets the vectorised pruning return identical action sets to
    the list-based implementation.
    """
    num_entities = graph.num_entities
    counts = np.zeros(num_entities, dtype=np.int64)
    outgoing = graph._outgoing
    for entity_id, edges in outgoing.items():
        counts[entity_id] = len(edges)
    indptr = np.zeros(num_entities + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])

    num_edges = int(indptr[-1])
    relations = np.zeros(num_edges, dtype=np.int32)
    targets = np.zeros(num_edges, dtype=np.int32)
    for entity_id, edges in outgoing.items():
        start = indptr[entity_id]
        for offset, (relation, target) in enumerate(edges):
            relations[start + offset] = relation_index(relation)
            targets[start + offset] = target

    entity_category = np.full(num_entities, -1, dtype=np.int32)
    for item_id, category in graph._item_category.items():
        entity_category[item_id] = category

    is_item = np.zeros(num_entities, dtype=bool)
    for item_id in graph.entities.ids_of_type(EntityType.ITEM):
        is_item[item_id] = True

    # The triplet table preserves *global* insertion order (the order of
    # ``graph.triplets()``): the TransE trainer permutes row indices, so the
    # row order is part of the reproducible training trajectory.
    triplets = np.empty((num_edges, 3), dtype=np.int64)
    for row, triplet in enumerate(graph._triplets):
        triplets[row, 0] = triplet.head
        triplets[row, 1] = relation_index(triplet.relation)
        triplets[row, 2] = triplet.tail

    return CSRAdjacency(indptr=indptr, relations=relations, targets=targets,
                        degrees=np.diff(indptr).astype(np.int32),
                        entity_category=entity_category, is_item=is_item,
                        triplets=triplets)


def patch_adjacency(old: CSRAdjacency, graph: "KnowledgeGraph",
                    dirty_entities: "set") -> CSRAdjacency:
    """Delta-rebuild ``old`` into the current state of ``graph``.

    ``dirty_entities`` must contain every entity whose outgoing row or
    category assignment changed since ``old`` was compiled (the graph tracks
    this set itself — see ``KnowledgeGraph._dirty_entities``).  Entities added
    after the compile are implicitly dirty: they have no row in ``old`` and
    are rebuilt by id range.  The graph history must be append-only (edges and
    entities are never deleted anywhere in this repository), which is what
    makes the previous triplet table and every clean row reusable verbatim.

    The result is element-identical to ``compile_adjacency(graph)``: dirty
    rows are rebuilt from the dict-of-lists source of truth in insertion
    order, clean row spans between consecutive dirty entities are copied as
    single array slices, and new triplet rows are appended in global
    insertion order.
    """
    num_entities = graph.num_entities
    old_entities = old.num_entities
    all_triplets = graph._triplets
    if num_entities < old_entities or len(all_triplets) < old.num_edges:
        raise ValueError("patch_adjacency requires an append-only graph history")
    outgoing = graph._outgoing
    dirty = sorted(entity for entity in dirty_entities if entity < old_entities)

    counts = np.zeros(num_entities, dtype=np.int64)
    counts[:old_entities] = old.degrees
    for entity_id in dirty:
        counts[entity_id] = len(outgoing.get(entity_id, ()))
    for entity_id in range(old_entities, num_entities):
        counts[entity_id] = len(outgoing.get(entity_id, ()))
    indptr = np.zeros(num_entities + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])
    num_edges = int(indptr[-1])
    if num_edges != len(all_triplets):
        raise ValueError("dirty-entity set is incomplete: edge totals disagree "
                         f"({num_edges} CSR edges vs {len(all_triplets)} triplets)")

    relations = np.zeros(num_edges, dtype=np.int32)
    targets = np.zeros(num_edges, dtype=np.int32)

    def rebuild_row(entity_id: int) -> None:
        start = indptr[entity_id]
        for offset, (relation, target) in enumerate(outgoing.get(entity_id, ())):
            relations[start + offset] = relation_index(relation)
            targets[start + offset] = target

    def copy_span(first: int, stop: int) -> None:
        """Bulk-copy the clean rows ``first .. stop`` (old-entity ids)."""
        old_lo, old_hi = old.indptr[first], old.indptr[stop]
        new_lo = indptr[first]
        relations[new_lo:new_lo + (old_hi - old_lo)] = old.relations[old_lo:old_hi]
        targets[new_lo:new_lo + (old_hi - old_lo)] = old.targets[old_lo:old_hi]

    previous = 0
    for entity_id in dirty:
        if entity_id > previous:
            copy_span(previous, entity_id)
        rebuild_row(entity_id)
        previous = entity_id + 1
    if previous < old_entities:
        copy_span(previous, old_entities)
    for entity_id in range(old_entities, num_entities):
        rebuild_row(entity_id)

    entity_category = np.full(num_entities, -1, dtype=np.int32)
    entity_category[:old_entities] = old.entity_category
    is_item = np.zeros(num_entities, dtype=bool)
    is_item[:old_entities] = old.is_item
    item_category = graph._item_category
    for entity_id in dirty:
        category = item_category.get(entity_id)
        entity_category[entity_id] = -1 if category is None else category
    for entity_id in range(old_entities, num_entities):
        category = item_category.get(entity_id)
        entity_category[entity_id] = -1 if category is None else category
        is_item[entity_id] = graph.entities.is_item(entity_id)

    triplets = np.empty((num_edges, 3), dtype=np.int64)
    triplets[:old.num_edges] = old.triplets
    for row in range(old.num_edges, num_edges):
        triplet = all_triplets[row]
        triplets[row, 0] = triplet.head
        triplets[row, 1] = relation_index(triplet.relation)
        triplets[row, 2] = triplet.tail

    return CSRAdjacency(indptr=indptr, relations=relations, targets=targets,
                        degrees=np.diff(indptr).astype(np.int32),
                        entity_category=entity_category, is_item=is_item,
                        triplets=triplets)
