"""Compiled CSR view of a :class:`~repro.kg.graph.KnowledgeGraph`.

The dict-of-lists adjacency of :class:`KnowledgeGraph` is ideal for
construction but slow to *walk*: every neighbour enumeration allocates a list
of ``(Relation, int)`` tuples and every degree/category lookup is a dict hit.
The RL hot paths (action pruning, beam search, TransE pre-training) touch
millions of edges per second, so this module flattens the graph once into
contiguous ``int32`` arrays — the classic compressed-sparse-row layout — and
every hot query becomes an array slice or gather:

* ``indptr[e] : indptr[e + 1]`` delimits entity ``e``'s outgoing edges;
* ``relations`` / ``targets`` hold the relation index and target entity of
  each edge, in exactly the insertion order of the source graph (so pruning
  on the CSR view reproduces the list-based results bit for bit);
* ``degrees``, ``entity_category`` (``-1`` when unassigned) and ``is_item``
  answer the per-entity queries of the walkers without touching Python dicts;
* ``triplets`` is the ``(num_edges, 3)`` ``[head, relation, tail]`` table the
  TransE trainer consumes directly.

Compilation is cheap (one pass over the edges) and cached on the graph via
:meth:`KnowledgeGraph.adjacency`; any mutation of the graph bumps its version
counter and invalidates the cached view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from .entities import EntityType
from .relations import Relation, relation_index

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .graph import KnowledgeGraph

#: Embedding-table row of the self-loop relation, shared by the array walkers.
SELF_LOOP_INDEX: int = relation_index(Relation.SELF_LOOP)


@dataclass(frozen=True)
class CSRAdjacency:
    """Frozen array-backed adjacency + per-entity metadata of one KG snapshot."""

    indptr: np.ndarray           # int32, shape (num_entities + 1,)
    relations: np.ndarray        # int32, shape (num_edges,) — relation_index per edge
    targets: np.ndarray          # int32, shape (num_edges,) — target entity per edge
    degrees: np.ndarray          # int32, shape (num_entities,) — out-degree
    entity_category: np.ndarray  # int32, shape (num_entities,) — category id, -1 if none
    is_item: np.ndarray          # bool,  shape (num_entities,)
    triplets: np.ndarray         # int64, shape (num_edges, 3) — [head, rel_idx, tail]

    @property
    def num_entities(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.targets)

    def out_edges(self, entity_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(relation_indices, targets)`` views of an entity's outgoing edges."""
        start, stop = self.indptr[entity_id], self.indptr[entity_id + 1]
        return self.relations[start:stop], self.targets[start:stop]

    def degree(self, entity_id: int) -> int:
        return int(self.degrees[entity_id])


def compile_adjacency(graph: "KnowledgeGraph") -> CSRAdjacency:
    """One-pass flattening of ``graph`` into a :class:`CSRAdjacency`.

    Edge order within each entity matches ``graph.outgoing(entity)`` exactly,
    which is what lets the vectorised pruning return identical action sets to
    the list-based implementation.
    """
    num_entities = graph.num_entities
    counts = np.zeros(num_entities, dtype=np.int64)
    outgoing = graph._outgoing
    for entity_id, edges in outgoing.items():
        counts[entity_id] = len(edges)
    indptr = np.zeros(num_entities + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])

    num_edges = int(indptr[-1])
    relations = np.zeros(num_edges, dtype=np.int32)
    targets = np.zeros(num_edges, dtype=np.int32)
    for entity_id, edges in outgoing.items():
        start = indptr[entity_id]
        for offset, (relation, target) in enumerate(edges):
            relations[start + offset] = relation_index(relation)
            targets[start + offset] = target

    entity_category = np.full(num_entities, -1, dtype=np.int32)
    for item_id, category in graph._item_category.items():
        entity_category[item_id] = category

    is_item = np.zeros(num_entities, dtype=bool)
    for item_id in graph.entities.ids_of_type(EntityType.ITEM):
        is_item[item_id] = True

    # The triplet table preserves *global* insertion order (the order of
    # ``graph.triplets()``): the TransE trainer permutes row indices, so the
    # row order is part of the reproducible training trajectory.
    triplets = np.empty((num_edges, 3), dtype=np.int64)
    for row, triplet in enumerate(graph._triplets):
        triplets[row, 0] = triplet.head
        triplets[row, 1] = relation_index(triplet.relation)
        triplets[row, 2] = triplet.tail

    return CSRAdjacency(indptr=indptr, relations=relations, targets=targets,
                        degrees=np.diff(indptr).astype(np.int32),
                        entity_category=entity_category, is_item=is_item,
                        triplets=triplets)
