"""The category knowledge graph ``Gc`` (Definition 4 in the paper).

``Gc`` is a dense virtual mapping of the entity-level KG: its nodes are item
categories and two categories are connected whenever at least one relation
links entities of the two categories.  The category agent of DARL walks over
this graph; because ``|C| ≪ |E|`` its action space is tiny, which is exactly
the action-space reduction argument the paper makes in the efficiency study
(Table III).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .entities import EntityType
from .graph import KnowledgeGraph
from .relations import Relation


class CategoryGraph:
    """Directed graph over item categories derived from a :class:`KnowledgeGraph`."""

    def __init__(self, num_categories: int) -> None:
        if num_categories < 0:
            raise ValueError("number of categories must be non-negative")
        self.num_categories = num_categories
        self._adjacency: Dict[int, Set[int]] = defaultdict(set)
        self._edge_relations: Dict[Tuple[int, int], Set[Relation]] = defaultdict(set)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_knowledge_graph(cls, graph: KnowledgeGraph) -> "CategoryGraph":
        """Build ``Gc`` by projecting every item↔item (and item↔attribute↔item)
        edge of the KG onto the category assignment of its endpoints."""
        category_graph = cls(graph.num_categories)
        item_category = graph.item_category_map()
        for triplet in graph.triplets():
            head_category = item_category.get(triplet.head)
            tail_category = item_category.get(triplet.tail)
            if head_category is None or tail_category is None:
                continue
            category_graph.add_edge(head_category, tail_category, triplet.relation)
        # Attribute-mediated connections: two items sharing a brand or feature
        # are category-adjacent even without a direct item-item edge.
        for attribute_type in (EntityType.BRAND, EntityType.FEATURE):
            for attribute_id in graph.entities.ids_of_type(attribute_type):
                linked_categories = {
                    item_category[tail]
                    for _, tail in graph.outgoing(attribute_id)
                    if tail in item_category
                }
                for source in linked_categories:
                    for target in linked_categories:
                        category_graph.add_edge(source, target, Relation.SELF_LOOP
                                                if source == target else Relation.ALSO_VIEWED)
        return category_graph

    def add_edge(self, source: int, target: int, relation: Relation) -> None:
        """Connect two categories (both directions are stored explicitly)."""
        if not (0 <= source < self.num_categories and 0 <= target < self.num_categories):
            raise ValueError("category id out of range")
        self._adjacency[source].add(target)
        self._adjacency[target].add(source)
        self._edge_relations[(source, target)].add(relation)
        self._edge_relations[(target, source)].add(relation)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def neighbors(self, category_id: int) -> List[int]:
        """Adjacent categories (excluding ``category_id`` itself)."""
        return sorted(c for c in self._adjacency.get(category_id, ()) if c != category_id)

    def actions(self, category_id: int, include_self_loop: bool = True) -> List[int]:
        """Valid moves for the category agent from ``category_id``.

        The self-loop action keeps the category agent synchronised with the
        entity agent when the category-level path is shorter (Section IV-C.1).
        """
        moves = self.neighbors(category_id)
        if include_self_loop:
            moves = [category_id] + moves
        return moves

    def are_connected(self, source: int, target: int) -> bool:
        """True if the two categories share at least one projected relation."""
        return target in self._adjacency.get(source, set()) or source == target

    def relations_between(self, source: int, target: int) -> FrozenSet[Relation]:
        """Relations that induced the edge between two categories."""
        return frozenset(self._edge_relations.get((source, target), set()))

    def degree(self, category_id: int) -> int:
        """Number of adjacent categories."""
        return len(self.neighbors(category_id))

    def density(self) -> float:
        """Edge density of ``Gc`` — the paper notes ``Gc`` is densely connected."""
        if self.num_categories <= 1:
            return float("nan")  # density needs at least one possible edge
        possible = self.num_categories * (self.num_categories - 1)
        actual = sum(len(self.neighbors(c)) for c in range(self.num_categories))
        return actual / possible

    def shortest_distance(self, source: int, target: int,
                          max_depth: Optional[int] = None) -> Optional[int]:
        """Breadth-first shortest hop count between two categories.

        Returns ``None`` when unreachable (or beyond ``max_depth``).  Used by
        the category agent's reward shaping tests and the case-study tooling.
        """
        if source == target:
            return 0
        frontier = {source}
        visited = {source}
        depth = 0
        while frontier:
            depth += 1
            if max_depth is not None and depth > max_depth:
                return None
            next_frontier: Set[int] = set()
            for node in frontier:
                for neighbor in self._adjacency.get(node, ()):
                    if neighbor == target:
                        return depth
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.add(neighbor)
            frontier = next_frontier
        return None
