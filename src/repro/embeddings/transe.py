"""TransE knowledge-graph embeddings (Bordes et al., 2013).

The paper initialises every entity, relation and category representation with
TransE (Section IV-B) before the CGGNN refines item representations.  This
implementation trains with the standard margin ranking loss

    L = Σ max(0, γ + d(h + r, t) − d(h' + r, t'))

over corrupted triplets, using hand-derived gradients (TransE's gradient is
simple enough that routing it through the autograd engine would only slow the
pre-training stage down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..kg.graph import KnowledgeGraph
from ..kg.relations import Relation, all_relations, relation_index


@dataclass
class TransEConfig:
    """Hyper-parameters of the TransE pre-training stage."""

    embedding_dim: int = 100
    margin: float = 1.0
    learning_rate: float = 0.01
    epochs: int = 30
    batch_size: int = 256
    negative_samples: int = 1
    normalize_entities: bool = True
    seed: int = 0

    def validate(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")


class TransEModel:
    """Holds TransE embedding tables and scoring utilities."""

    def __init__(self, num_entities: int, config: Optional[TransEConfig] = None) -> None:
        self.config = config or TransEConfig()
        self.config.validate()
        rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        bound = 6.0 / np.sqrt(dim)
        self.num_entities = num_entities
        self.entity_embeddings = rng.uniform(-bound, bound, size=(num_entities, dim))
        self.relation_embeddings = rng.uniform(-bound, bound, size=(len(all_relations()), dim))
        self.relation_embeddings /= np.linalg.norm(self.relation_embeddings, axis=1,
                                                   keepdims=True) + 1e-12
        self._normalize_entities()

    @classmethod
    def from_arrays(cls, entity_embeddings: np.ndarray,
                    relation_embeddings: np.ndarray,
                    config: Optional[TransEConfig] = None) -> "TransEModel":
        """Rebuild a model from persisted embedding tables.

        Skips the random initialisation of ``__init__`` entirely (the tables
        are about to be replaced anyway) — this is the artifact-restore path,
        which sits on the serving cold-start critical path.
        """
        entity_embeddings = np.asarray(entity_embeddings, dtype=np.float64)
        relation_embeddings = np.asarray(relation_embeddings, dtype=np.float64)
        config = config or TransEConfig()
        config.validate()
        expected = (len(all_relations()), config.embedding_dim)
        if relation_embeddings.shape != expected:
            raise ValueError(f"relation table shape {relation_embeddings.shape} "
                             f"does not match the configuration ({expected})")
        if entity_embeddings.ndim != 2 or entity_embeddings.shape[1] != config.embedding_dim:
            raise ValueError(f"entity table shape {entity_embeddings.shape} does not "
                             f"match embedding_dim={config.embedding_dim}")
        model = cls.__new__(cls)
        model.config = config
        model.num_entities = entity_embeddings.shape[0]
        model.entity_embeddings = entity_embeddings
        model.relation_embeddings = relation_embeddings
        return model

    # ------------------------------------------------------------------ #
    def _normalize_entities(self) -> None:
        if self.config.normalize_entities:
            norms = np.linalg.norm(self.entity_embeddings, axis=1, keepdims=True) + 1e-12
            self.entity_embeddings = self.entity_embeddings / np.maximum(norms, 1.0)

    def entity(self, entity_id: int) -> np.ndarray:
        """Embedding vector of an entity."""
        return self.entity_embeddings[entity_id]

    def relation(self, relation: Relation) -> np.ndarray:
        """Embedding vector of a relation."""
        return self.relation_embeddings[relation_index(relation)]

    def score(self, head: int, relation: Relation, tail: int) -> float:
        """Negative translation distance: higher means more plausible."""
        diff = self.entity(head) + self.relation(relation) - self.entity(tail)
        return -float(np.linalg.norm(diff))

    def score_tails(self, head: int, relation: Relation,
                    candidate_tails: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`score` over many candidate tail entities."""
        candidates = np.asarray(candidate_tails, dtype=np.int64)
        translated = self.entity(head) + self.relation(relation)
        diffs = translated[None, :] - self.entity_embeddings[candidates]
        return -np.linalg.norm(diffs, axis=1)

    def top_k_items(self, user_entity: int, candidate_items: np.ndarray, k: int,
                    relation: Relation = Relation.PURCHASE,
                    exclude: Optional[Iterable[int]] = None) -> List[int]:
        """Top-``k`` candidates by translation score, best first.

        One vectorised score-and-partition pass over the candidate set; this is
        the cold-start / over-budget fallback tier of ``repro.serving``, so it
        has to stay cheap (no per-item Python loops).
        """
        candidates = np.asarray(candidate_items, dtype=np.int64)
        if exclude is not None:
            excluded = np.fromiter(exclude, dtype=np.int64)
            if excluded.size:
                candidates = candidates[~np.isin(candidates, excluded)]
        if k <= 0 or candidates.size == 0:
            return []
        return top_k_by_score(candidates, self.score_tails(user_entity, relation,
                                                           candidates), k)


def top_k_by_score(candidates: np.ndarray, scores: np.ndarray, k: int) -> List[int]:
    """Ids of the ``k`` best-scoring candidates, best first (vectorised).

    Shared by :meth:`TransEModel.top_k_items` and the serving fallback rankers
    so the partition/sort selection logic lives in one place.
    """
    if k <= 0 or candidates.size == 0:
        return []
    if k < candidates.size:
        top = np.argpartition(-scores, k - 1)[:k]
    else:
        top = np.arange(candidates.size)
    order = top[np.argsort(-scores[top])]
    return [int(candidate) for candidate in candidates[order]]


def train_transe(graph: KnowledgeGraph, config: Optional[TransEConfig] = None
                 ) -> Tuple[TransEModel, List[float]]:
    """Train TransE on all triplets of ``graph``.

    Returns the model and the per-epoch average margin loss (for convergence
    inspection in tests and notebooks).
    """
    config = config or TransEConfig()
    config.validate()
    model = TransEModel(graph.num_entities, config)
    rng = np.random.default_rng(config.seed + 1)

    triplets = np.array([(t.head, relation_index(t.relation), t.tail)
                         for t in graph.triplets()], dtype=np.int64)
    if len(triplets) == 0:
        return model, []

    losses: List[float] = []
    num_entities = graph.num_entities
    for _ in range(config.epochs):
        order = rng.permutation(len(triplets))
        epoch_loss = 0.0
        count = 0
        for start in range(0, len(order), config.batch_size):
            batch = triplets[order[start:start + config.batch_size]]
            heads, relations, tails = batch[:, 0], batch[:, 1], batch[:, 2]
            for _ in range(config.negative_samples):
                corrupt_heads = rng.random(len(batch)) < 0.5
                neg_heads = heads.copy()
                neg_tails = tails.copy()
                replacements = rng.integers(0, num_entities, size=len(batch))
                neg_heads[corrupt_heads] = replacements[corrupt_heads]
                neg_tails[~corrupt_heads] = replacements[~corrupt_heads]

                loss = _margin_step(model, config, heads, relations, tails,
                                    neg_heads, neg_tails)
                epoch_loss += loss
                count += 1
        model._normalize_entities()
        losses.append(epoch_loss / max(count, 1))
    return model, losses


def _margin_step(model: TransEModel, config: TransEConfig,
                 heads: np.ndarray, relations: np.ndarray, tails: np.ndarray,
                 neg_heads: np.ndarray, neg_tails: np.ndarray) -> float:
    """One SGD step of the margin ranking loss; returns the batch loss."""
    ent = model.entity_embeddings
    rel = model.relation_embeddings

    pos_diff = ent[heads] + rel[relations] - ent[tails]
    neg_diff = ent[neg_heads] + rel[relations] - ent[neg_tails]
    pos_dist = np.linalg.norm(pos_diff, axis=1)
    neg_dist = np.linalg.norm(neg_diff, axis=1)
    violation = config.margin + pos_dist - neg_dist
    active = violation > 0
    if not np.any(active):
        return 0.0

    lr = config.learning_rate
    # d/dx ||x|| = x / ||x||
    pos_grad = pos_diff[active] / (pos_dist[active, None] + 1e-12)
    neg_grad = neg_diff[active] / (neg_dist[active, None] + 1e-12)

    np.add.at(ent, heads[active], -lr * pos_grad)
    np.add.at(ent, tails[active], lr * pos_grad)
    np.add.at(rel, relations[active], -lr * pos_grad)
    np.add.at(ent, neg_heads[active], lr * neg_grad)
    np.add.at(ent, neg_tails[active], -lr * neg_grad)
    np.add.at(rel, relations[active], lr * neg_grad)

    return float(np.mean(violation[active]))


def category_embeddings(model: TransEModel, graph: KnowledgeGraph) -> np.ndarray:
    """Category vectors as the mean embedding of their items (Section IV-B.2).

    Categories with no assigned items get a zero vector.
    """
    dim = model.config.embedding_dim
    num_categories = graph.num_categories
    sums = np.zeros((num_categories, dim))
    counts = np.zeros(num_categories)
    for item_id, category in graph.item_category_map().items():
        sums[category] += model.entity(item_id)
        counts[category] += 1
    counts = np.maximum(counts, 1.0)
    return sums / counts[:, None]
