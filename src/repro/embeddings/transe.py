"""TransE knowledge-graph embeddings (Bordes et al., 2013).

The paper initialises every entity, relation and category representation with
TransE (Section IV-B) before the CGGNN refines item representations.  This
implementation trains with the standard margin ranking loss

    L = Σ max(0, γ + d(h + r, t) − d(h' + r, t'))

over corrupted triplets, using hand-derived gradients (TransE's gradient is
simple enough that routing it through the autograd engine would only slow the
pre-training stage down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from ..kg.graph import KnowledgeGraph
from ..kg.relations import Relation, all_relations, relation_index


@dataclass
class TransEConfig:
    """Hyper-parameters of the TransE pre-training stage."""

    embedding_dim: int = 100
    margin: float = 1.0
    learning_rate: float = 0.01
    epochs: int = 30
    batch_size: int = 256
    negative_samples: int = 1
    normalize_entities: bool = True
    seed: int = 0

    def validate(self) -> None:
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if self.margin <= 0:
            raise ValueError("margin must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")


class TransEModel:
    """Holds TransE embedding tables and scoring utilities."""

    def __init__(self, num_entities: int, config: Optional[TransEConfig] = None) -> None:
        self.config = config or TransEConfig()
        self.config.validate()
        rng = np.random.default_rng(self.config.seed)
        dim = self.config.embedding_dim
        bound = 6.0 / np.sqrt(dim)
        self.num_entities = num_entities
        self.entity_embeddings = rng.uniform(-bound, bound, size=(num_entities, dim))
        self.relation_embeddings = rng.uniform(-bound, bound, size=(len(all_relations()), dim))
        self.relation_embeddings /= np.linalg.norm(self.relation_embeddings, axis=1,
                                                   keepdims=True) + 1e-12
        self._normalize_entities()

    @classmethod
    def from_arrays(cls, entity_embeddings: np.ndarray,
                    relation_embeddings: np.ndarray,
                    config: Optional[TransEConfig] = None) -> "TransEModel":
        """Rebuild a model from persisted embedding tables.

        Skips the random initialisation of ``__init__`` entirely (the tables
        are about to be replaced anyway) — this is the artifact-restore path,
        which sits on the serving cold-start critical path.
        """
        entity_embeddings = np.asarray(entity_embeddings, dtype=np.float64)
        relation_embeddings = np.asarray(relation_embeddings, dtype=np.float64)
        config = config or TransEConfig()
        config.validate()
        expected = (len(all_relations()), config.embedding_dim)
        if relation_embeddings.shape != expected:
            raise ValueError(f"relation table shape {relation_embeddings.shape} "
                             f"does not match the configuration ({expected})")
        if entity_embeddings.ndim != 2 or entity_embeddings.shape[1] != config.embedding_dim:
            raise ValueError(f"entity table shape {entity_embeddings.shape} does not "
                             f"match embedding_dim={config.embedding_dim}")
        model = cls.__new__(cls)
        model.config = config
        model.num_entities = entity_embeddings.shape[0]
        model.entity_embeddings = entity_embeddings
        model.relation_embeddings = relation_embeddings
        return model

    # ------------------------------------------------------------------ #
    def _normalize_entities(self) -> None:
        if self.config.normalize_entities:
            norms = np.linalg.norm(self.entity_embeddings, axis=1, keepdims=True) + 1e-12
            self.entity_embeddings = self.entity_embeddings / np.maximum(norms, 1.0)

    def entity(self, entity_id: int) -> np.ndarray:
        """Embedding vector of an entity."""
        return self.entity_embeddings[entity_id]

    def relation(self, relation: Relation) -> np.ndarray:
        """Embedding vector of a relation."""
        return self.relation_embeddings[relation_index(relation)]

    def score(self, head: int, relation: Relation, tail: int) -> float:
        """Negative translation distance: higher means more plausible."""
        diff = self.entity(head) + self.relation(relation) - self.entity(tail)
        return -float(np.linalg.norm(diff))

    def score_tails(self, head: int, relation: Relation,
                    candidate_tails: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`score` over many candidate tail entities."""
        candidates = np.asarray(candidate_tails, dtype=np.int64)
        translated = self.entity(head) + self.relation(relation)
        diffs = translated[None, :] - self.entity_embeddings[candidates]
        return -np.linalg.norm(diffs, axis=1)

    def top_k_items(self, user_entity: int, candidate_items: np.ndarray, k: int,
                    relation: Relation = Relation.PURCHASE,
                    exclude: Optional[Iterable[int]] = None) -> List[int]:
        """Top-``k`` candidates by translation score, best first.

        One vectorised score-and-partition pass over the candidate set; this is
        the cold-start / over-budget fallback tier of ``repro.serving``, so it
        has to stay cheap (no per-item Python loops).
        """
        candidates = np.asarray(candidate_items, dtype=np.int64)
        if exclude is not None:
            excluded = np.fromiter(exclude, dtype=np.int64)
            if excluded.size:
                candidates = candidates[~np.isin(candidates, excluded)]
        if k <= 0 or candidates.size == 0:
            return []
        return top_k_by_score(candidates, self.score_tails(user_entity, relation,
                                                           candidates), k)


def top_k_by_score(candidates: np.ndarray, scores: np.ndarray, k: int) -> List[int]:
    """Ids of the ``k`` best-scoring candidates, best first (vectorised).

    Shared by :meth:`TransEModel.top_k_items` and the serving fallback rankers
    so the partition/sort selection logic lives in one place.
    """
    if k <= 0 or candidates.size == 0:
        return []
    if k < candidates.size:
        top = np.argpartition(-scores, k - 1)[:k]
    else:
        top = np.arange(candidates.size)
    order = top[np.argsort(-scores[top])]
    return [int(candidate) for candidate in candidates[order]]


#: Above this table size (rows × dim) the flat-bincount scatter would spend
#: more time zeroing its dense accumulator than adding updates; fall back to
#: a single fused ``np.add.at`` instead.
_BINCOUNT_SCATTER_LIMIT = 1 << 21


#: Tables with at most this many rows scatter through a one-hot matmul — at
#: relation-table size the dense (rows, batch) GEMM is far cheaper than any
#: histogram over the update elements.
_DENSE_SCATTER_ROWS = 64


class _ScatterAdd:
    """``table[indices] += values`` with duplicate indices accumulated.

    Strategy by table size, chosen once at construction:

    * tiny tables (relations): accumulate via a one-hot ``(rows, batch)``
      matmul — BLAS turns the scatter into a few microseconds;
    * small/medium tables (entities of this repository's graphs): one flat
      weighted ``np.bincount`` over ``rows * dim`` cells, several times faster
      than ``np.add.at``;
    * very large tables: the dense accumulator stops paying for itself and
      the buffered ``np.add.at`` path takes over.

    All workspaces are preallocated, so the hot loop allocates nothing but
    the accumulator output.
    """

    def __init__(self, table_rows: int, dim: int, max_indices: int) -> None:
        self.dim = dim
        self.rows = table_rows
        self.cells = table_rows * dim
        self.use_dense = table_rows <= _DENSE_SCATTER_ROWS
        self.use_bincount = (not self.use_dense
                             and self.cells <= _BINCOUNT_SCATTER_LIMIT)
        if self.use_dense:
            self._one_hot = np.zeros((table_rows, max_indices))
            self._accumulator = np.empty((table_rows, dim))
        elif self.use_bincount:
            self._flat = np.empty((max_indices, dim), dtype=np.int64)
            self._columns = np.arange(dim, dtype=np.int64)

    def __call__(self, table: np.ndarray, indices: np.ndarray,
                 values: np.ndarray) -> None:
        size = len(indices)
        if self.use_dense:
            one_hot = self._one_hot[:, :size]
            one_hot[:] = 0.0
            one_hot[indices, np.arange(size)] = 1.0
            np.matmul(one_hot, values, out=self._accumulator)
            table += self._accumulator
        elif self.use_bincount:
            flat = self._flat[:size]
            np.add(np.multiply(indices, self.dim)[:, None], self._columns,
                   out=flat)
            table += np.bincount(flat.ravel(), weights=values.ravel(),
                                 minlength=self.cells).reshape(table.shape)
        else:
            np.add.at(table, indices, values)


#: Accepted warm-start forms: a prior model or an ``(entity, relation)`` pair.
TransEInitialState = Union["TransEModel", Tuple[np.ndarray, np.ndarray]]


def _resolve_initial_state(initial_state: TransEInitialState
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise a warm-start argument into ``(entity, relation)`` arrays."""
    if isinstance(initial_state, TransEModel):
        return initial_state.entity_embeddings, initial_state.relation_embeddings
    try:
        entity_table, relation_table = initial_state
    except (TypeError, ValueError):
        raise TypeError(
            "initial_state must be a TransEModel or an "
            "(entity_embeddings, relation_embeddings) pair, "
            f"got {type(initial_state).__name__}") from None
    return (np.asarray(entity_table, dtype=np.float64),
            np.asarray(relation_table, dtype=np.float64))


def apply_initial_state(model: TransEModel, initial_state: TransEInitialState) -> None:
    """Overlay prior embedding tables onto a freshly initialised ``model``.

    The relation table must match exactly; the entity table may cover a
    *prefix* of the model's entities (the graph only ever grows, and entity
    ids are assigned sequentially), in which case entities beyond the prior
    count keep their seeded initialisation.  Every mismatch raises with the
    offending shapes spelled out.
    """
    entity_prior, relation_prior = _resolve_initial_state(initial_state)
    dim = model.config.embedding_dim
    if relation_prior.shape != model.relation_embeddings.shape:
        raise ValueError(
            f"warm-start relation table shape {relation_prior.shape} does not "
            f"match the model's {model.relation_embeddings.shape} — was the "
            "prior trained with a different embedding_dim?")
    if entity_prior.ndim != 2 or entity_prior.shape[1] != dim:
        raise ValueError(
            f"warm-start entity table shape {entity_prior.shape} does not "
            f"match embedding_dim={dim}")
    if entity_prior.shape[0] > model.num_entities:
        raise ValueError(
            f"warm-start entity table has {entity_prior.shape[0]} rows but the "
            f"graph has only {model.num_entities} entities — entity ids are "
            "append-only, so the prior must come from an ancestor of this graph")
    model.entity_embeddings[:entity_prior.shape[0]] = entity_prior
    model.relation_embeddings[:] = relation_prior


def train_transe(graph: KnowledgeGraph, config: Optional[TransEConfig] = None,
                 initial_state: Optional[TransEInitialState] = None
                 ) -> Tuple[TransEModel, List[float]]:
    """Train TransE on all triplets of ``graph``.

    Returns the model and the per-epoch average margin loss (for convergence
    inspection in tests and notebooks).

    ``initial_state`` warm-starts the tables from a prior model (or a raw
    ``(entity, relation)`` array pair): prior rows replace the seeded
    initialisation and entities added since the prior keep their seeded
    vectors, so a few-epoch *refresh* on a grown graph starts from the
    converged state instead of from scratch.  Shapes are validated up front
    with explicit errors (see :func:`apply_initial_state`).

    The loop is fully vectorised per mini-batch: the triplet table comes from
    the graph's compiled CSR view, index columns are contiguous arrays, both
    margin distances are einsum reductions, and all gradient contributions of
    a batch land in two scatter-adds (entities, relations).  Same-seed runs
    reproduce the scalar reference trainer
    (:func:`repro.perf.reference.train_transe_reference`) to float precision.
    """
    config = config or TransEConfig()
    config.validate()
    model = TransEModel(graph.num_entities, config)
    if initial_state is not None:
        apply_initial_state(model, initial_state)
    rng = np.random.default_rng(config.seed + 1)

    triplets = graph.adjacency().triplets
    if len(triplets) == 0:
        return model, []
    heads_all = np.ascontiguousarray(triplets[:, 0])
    relations_all = np.ascontiguousarray(triplets[:, 1])
    tails_all = np.ascontiguousarray(triplets[:, 2])

    losses: List[float] = []
    num_triplets = len(triplets)
    num_entities = graph.num_entities
    margin, lr = config.margin, config.learning_rate
    ent, rel = model.entity_embeddings, model.relation_embeddings
    dim = config.embedding_dim

    # Reusable buffers: one fused entity gather/scatter block per batch
    # (heads | neg_heads | tails | neg_tails — sources first, so positive and
    # negative triplets share every elementwise pass) instead of four.
    batch_max = min(config.batch_size, num_triplets)
    index_buffer = np.empty(4 * batch_max, dtype=np.int64)
    value_buffer = np.empty((4 * batch_max, dim))
    gather_buffer = np.empty((4 * batch_max, dim))
    relation_gather = np.empty((batch_max, dim))
    diff_buffer = np.empty((2 * batch_max, dim))
    coef_buffer = np.empty(2 * batch_max)
    scale_buffer = np.empty(batch_max)
    entity_scatter = _ScatterAdd(num_entities, dim, 4 * batch_max)
    relation_scatter = _ScatterAdd(rel.shape[0], dim, batch_max)

    for _ in range(config.epochs):
        order = rng.permutation(num_triplets)
        # Permute once per epoch so every batch slices contiguously.
        heads_epoch = heads_all[order]
        relations_epoch = relations_all[order]
        tails_epoch = tails_all[order]
        epoch_loss = 0.0
        count = 0
        for start in range(0, num_triplets, config.batch_size):
            stop = min(start + config.batch_size, num_triplets)
            heads = heads_epoch[start:stop]
            relations = relations_epoch[start:stop]
            tails = tails_epoch[start:stop]
            size = stop - start
            for _ in range(config.negative_samples):
                # Same RNG draw order as the reference trainer: one uniform
                # vector (corruption side) then one integer vector (targets).
                corrupt_heads = rng.random(size) < 0.5
                replacements = rng.integers(0, num_entities, size=size)

                # Corrupted triplets are written straight into the fused index
                # block: neg_heads = heads / neg_tails = tails with the
                # corrupted side overwritten by the replacements.
                indices = index_buffer[:4 * size]
                indices[0 * size:1 * size] = heads
                indices[1 * size:2 * size] = heads
                indices[2 * size:3 * size] = tails
                indices[3 * size:4 * size] = tails
                np.copyto(indices[1 * size:2 * size], replacements,
                          where=corrupt_heads)
                np.copyto(indices[3 * size:4 * size], replacements,
                          where=~corrupt_heads)
                gathered = gather_buffer[:4 * size]
                # mode="clip" skips the bounds-check pass of the default mode
                # (indices come straight from the triplet table, so they are
                # always in range); with it, take-into-buffer is the fastest
                # gather NumPy offers.
                np.take(ent, indices, axis=0, out=gathered, mode="clip")
                relation_rows = relation_gather[:size]
                np.take(rel, relations, axis=0, out=relation_rows, mode="clip")

                # diffs = [h + r - t ; h' + r - t'] in one stacked block, so
                # every elementwise pass covers positives and negatives at once.
                diffs = diff_buffer[:2 * size]
                stacked = diffs.reshape(2, size, dim)
                np.add(gathered[:2 * size].reshape(2, size, dim), relation_rows,
                       out=stacked)
                stacked -= gathered[2 * size:].reshape(2, size, dim)
                distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
                pos_dist = distances[:size]
                neg_dist = distances[size:]
                violation = margin + pos_dist - neg_dist
                active = violation > 0
                count += 1
                if not np.any(active):
                    continue

                # d/dx ||x|| = x / ||x||; inactive rows are scaled to zero so
                # the scatter needs no boolean gathers of the index arrays.
                # Head sources get [-pos_grad ; +neg_grad], tail targets the
                # negation, matching the [heads|neg_heads|tails|neg_tails]
                # index layout above.
                scaled_active = scale_buffer[:size]
                np.multiply(active, lr, out=scaled_active)
                coef = coef_buffer[:2 * size]
                np.divide(scaled_active, pos_dist + 1e-12, out=coef[:size])
                np.divide(scaled_active, neg_dist + 1e-12, out=coef[size:])
                np.negative(coef[:size], out=coef[:size])
                values = value_buffer[:4 * size]
                np.multiply(diffs, coef[:, None], out=values[:2 * size])
                np.negative(values[:2 * size], out=values[2 * size:])
                entity_scatter(ent, indices, values)
                relation_scatter(rel, relations,
                                 values[0 * size:1 * size] + values[1 * size:2 * size])
                epoch_loss += float(violation.dot(active) / active.sum())
        model._normalize_entities()
        ent, rel = model.entity_embeddings, model.relation_embeddings
        losses.append(epoch_loss / max(count, 1))
    return model, losses


def category_embeddings(model: TransEModel, graph: KnowledgeGraph) -> np.ndarray:
    """Category vectors as the mean embedding of their items (Section IV-B.2).

    Categories with no assigned items get a zero vector.
    """
    dim = model.config.embedding_dim
    num_categories = graph.num_categories
    sums = np.zeros((num_categories, dim))
    counts = np.zeros(num_categories)
    for item_id, category in graph.item_category_map().items():
        sums[category] += model.entity(item_id)
        counts[category] += 1
    counts = np.maximum(counts, 1.0)
    return sums / counts[:, None]
