"""KG embedding substrate (TransE pre-training)."""

from .transe import (
    TransEConfig,
    TransEModel,
    apply_initial_state,
    category_embeddings,
    top_k_by_score,
    train_transe,
)

__all__ = ["TransEConfig", "TransEModel", "apply_initial_state",
           "category_embeddings", "top_k_by_score", "train_transe"]
