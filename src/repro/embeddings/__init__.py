"""KG embedding substrate (TransE pre-training)."""

from .transe import TransEConfig, TransEModel, category_embeddings, train_transe

__all__ = ["TransEConfig", "TransEModel", "category_embeddings", "train_transe"]
