"""KG embedding substrate (TransE pre-training)."""

from .transe import TransEConfig, TransEModel, category_embeddings, top_k_by_score, train_transe

__all__ = ["TransEConfig", "TransEModel", "category_embeddings", "top_k_by_score",
           "train_transe"]
