"""``python -m repro lint`` — the static-analysis front end.

Exit codes: 0 clean, 1 findings, 2 usage error (bad paths/flags, malformed
baseline).  ``--format json`` emits one machine-readable document;
``--update-baseline`` rewrites the baseline to accept the current findings
(the burn-down workflow: shrink it, never grow it casually).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import run_lint
from .rules import rule_table

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint flags on ``parser`` (shared with the repro CLI)."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", default="text", choices=("text", "json"),
                        help="report format (default: text)")
    parser.add_argument("--baseline", type=Path, default=None, metavar="FILE",
                        help=f"baseline of accepted findings (default: "
                             f"{DEFAULT_BASELINE_NAME} when present)")
    parser.add_argument("--update-baseline", action="store_true",
                        dest="update_baseline",
                        help="rewrite the baseline to accept current findings")
    parser.add_argument("--list-rules", action="store_true", dest="list_rules",
                        help="print the rule table and exit")


def _resolve_baseline_path(arguments: argparse.Namespace) -> Optional[Path]:
    if arguments.baseline is not None:
        return arguments.baseline
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists() or arguments.update_baseline:
        return default
    return None


def run_lint_command(arguments: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if arguments.list_rules:
        for rule_id, description in sorted(rule_table().items()):
            print(f"{rule_id}  {description}")
        return EXIT_CLEAN

    baseline_path = _resolve_baseline_path(arguments)
    baseline: Optional[Baseline] = None
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE

    try:
        report = run_lint(arguments.paths,
                          baseline=None if arguments.update_baseline else baseline)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE

    if arguments.update_baseline:
        assert baseline_path is not None
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"wrote {len(report.findings)} accepted finding(s) to {baseline_path}")
        return EXIT_CLEAN

    if arguments.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format_text())
        summary = (f"{len(report.findings)} finding(s) in "
                   f"{report.files_checked} file(s)")
        if report.baselined:
            summary += f", {len(report.baselined)} baselined"
        if report.suppressed_count:
            summary += f", {report.suppressed_count} suppressed inline"
        print(("" if not report.findings else "\n") + summary)
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST-based invariant linter for the repro codebase")
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
