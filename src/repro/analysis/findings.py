"""The :class:`Finding` record every lint rule emits.

A finding pins one convention violation to a file/line/rule triple.  Findings
are value objects: hashable, orderable by location, JSON-serialisable, and
carry a *baseline key* — a line-number-free identity used by the committed
baseline so grandfathered findings survive unrelated edits above them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    ``path`` is stored as a POSIX-style path relative to the lint root so
    reports and baselines are machine-independent.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str
    source_line: str = ""

    def format_text(self) -> str:
        """``path:line:col: RULE message`` — the one-line report form."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict:
        return asdict(self)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-number-free identity: (path, rule, stripped source text).

        Keying on the offending line's text instead of its number keeps a
        baseline entry attached to its finding while code above it moves.
        """
        return (self.path, self.rule_id, self.source_line.strip())


def sort_findings(findings) -> list:
    """Deterministic report order: by path, then line, then column, then rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.column, f.rule_id))
