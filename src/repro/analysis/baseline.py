"""Committed baseline of grandfathered findings.

The baseline is a JSON file listing findings that are *known and accepted*:
``repro lint`` subtracts them from its report, so CI can gate on "no NEW
findings" while the existing debt is burned down deliberately.  Entries match
on :meth:`Finding.baseline_key` — (path, rule, stripped source text) — with
multiset semantics, so two identical offending lines in one file need two
entries, and an entry stops matching the moment the offending line is edited.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


class Baseline:
    """A multiset of accepted finding keys, with JSON round-trip."""

    def __init__(self, entries: Iterable[Dict] = ()) -> None:
        self.entries: List[Dict] = list(entries)
        self._keys: Counter = Counter(self._entry_key(entry) for entry in self.entries)

    @staticmethod
    def _entry_key(entry: Dict) -> Tuple[str, str, str]:
        return (str(entry.get("path", "")), str(entry.get("rule", "")),
                str(entry.get("code", "")).strip())

    # ------------------------------------------------------------------ #
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries = [{"path": finding.path, "rule": finding.rule_id,
                    "line": finding.line, "code": finding.source_line.strip(),
                    "message": finding.message}
                   for finding in findings]
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(document, dict) or "entries" not in document:
            raise ValueError(f"malformed baseline file: {path}")
        version = document.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline version {version!r} in {path}")
        return cls(document["entries"])

    def save(self, path: Path) -> None:
        document = {"version": BASELINE_VERSION, "entries": self.entries}
        Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                              encoding="utf-8")

    # ------------------------------------------------------------------ #
    def partition(self, findings: Iterable[Finding]
                  ) -> Tuple[List[Finding], List[Finding]]:
        """Split findings into (new, baselined), consuming multiset entries."""
        remaining = Counter(self._keys)
        new: List[Finding] = []
        matched: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                matched.append(finding)
            else:
                new.append(finding)
        return new, matched

    def __len__(self) -> int:
        return len(self.entries)
