"""The rule battery. ``default_rules()`` builds one fresh instance of each.

Rules keep per-run state (the cross-file pass), so the engine must always be
given fresh instances — hence a factory rather than a module-level list.
"""

from __future__ import annotations

from typing import Dict, List

from .base import BaseRule, Rule
from .clock import DEFAULT_CLOCK_ALLOWLIST, WallClockRule
from .conventions import MutableDefaultRule, NaNMeasurementRule, OverbroadExceptRule
from .determinism import OrderedSignatureRule, SeededRandomnessRule

RULE_CLASSES = (
    SeededRandomnessRule,    # DET001
    WallClockRule,           # CLK001
    NaNMeasurementRule,      # NAN001
    MutableDefaultRule,      # MUT001
    OverbroadExceptRule,     # EXC001
    OrderedSignatureRule,    # SIG001
)


def default_rules() -> List[Rule]:
    """Fresh instances of the whole battery, in rule-id order."""
    return [rule_class() for rule_class in RULE_CLASSES]


def rule_table() -> Dict[str, str]:
    """``{rule_id: description}`` for ``--list-rules`` and the docs."""
    return {rule_class.rule_id: rule_class.description
            for rule_class in RULE_CLASSES}


__all__ = [
    "BaseRule",
    "DEFAULT_CLOCK_ALLOWLIST",
    "MutableDefaultRule",
    "NaNMeasurementRule",
    "OrderedSignatureRule",
    "OverbroadExceptRule",
    "RULE_CLASSES",
    "Rule",
    "SeededRandomnessRule",
    "WallClockRule",
    "default_rules",
    "rule_table",
]
