"""Determinism rules: seeded randomness (DET001) and ordered signatures (SIG001).

The whole repo rests on bit-reproducible replays: every RNG must arrive as a
parameter or derive from an explicit seed, and anything folded into a replay
``signature()``/fingerprint must iterate in a deterministic order.  These
rules make both conventions machine-checked instead of review-time folklore.
"""

from __future__ import annotations

import ast
from typing import List, Set

from .base import BaseRule, dotted_name, resolve_call

# numpy.random.* entry points that are deterministic when given an argument.
_SEEDABLE_CONSTRUCTORS = {"default_rng", "Generator", "SeedSequence", "PCG64",
                          "Philox", "MT19937", "SFC64", "RandomState"}
# stdlib random constructors that are fine when seeded.
_STDLIB_CONSTRUCTORS = {"Random"}


class SeededRandomnessRule(BaseRule):
    """DET001 — randomness must be injected or derived from an explicit seed.

    Flags ``np.random.default_rng()`` (and friends) called without a seed, any
    legacy module-level ``np.random.*`` call (hidden global state), and
    module-level ``random.*`` calls from the stdlib.  ``default_rng(seed)``,
    ``random.Random(seed)`` and methods on generator *instances* all pass.
    """

    rule_id = "DET001"
    description = ("RNG must be injected as a parameter or constructed from an "
                   "explicit seed; module-level random state is forbidden")

    def check_file(self, context) -> List:
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = resolve_call(node, context.aliases)
            if chain is None:
                continue
            message = self._violation(node, chain)
            if message is not None:
                findings.append(self.finding(context, node, message))
        return findings

    @staticmethod
    def _violation(node: ast.Call, chain) -> str:
        has_arguments = bool(node.args or node.keywords)
        if len(chain) >= 2 and chain[0] == "numpy" and chain[1] == "random":
            tail = chain[-1]
            if tail in _SEEDABLE_CONSTRUCTORS:
                if not has_arguments:
                    return (f"unseeded np.random.{tail}() — pass a seed or accept "
                            f"an injected Generator")
                return None
            return (f"module-level np.random.{tail}() uses hidden global state — "
                    f"call it on an injected, seeded Generator instead")
        if len(chain) == 2 and chain[0] == "random":
            tail = chain[1]
            if tail in _STDLIB_CONSTRUCTORS:
                if not has_arguments:
                    return "unseeded random.Random() — pass an explicit seed"
                return None
            if tail == "SystemRandom":
                return "random.SystemRandom is nondeterministic by design"
            return (f"module-level random.{tail}() uses hidden global state — "
                    f"use a seeded random.Random or numpy Generator instance")
        return None


_SIGNATURE_MARKERS = ("signature", "fingerprint", "ledger")


class OrderedSignatureRule(BaseRule):
    """SIG001 — no iteration over unordered sets inside signature code.

    Inside any function whose name marks it as producing a signature,
    fingerprint or ledger, iterating a ``set`` (literal, comprehension,
    ``set()``/``frozenset()`` call, or a local variable assigned one) is a
    replay-determinism hazard: wrap it in ``sorted(...)`` first.
    """

    rule_id = "SIG001"
    description = ("signature/fingerprint/ledger code must not iterate "
                   "unordered sets — sort them first")

    def check_file(self, context) -> List:
        findings = []
        for function, qualified in context.functions():
            name = function.name.lower()
            if not any(marker in name for marker in _SIGNATURE_MARKERS):
                continue
            set_locals = self._set_valued_locals(function)
            for iter_node in self._iteration_sources(function):
                if self._is_set_like(iter_node, set_locals, context.aliases):
                    findings.append(self.finding(
                        context, iter_node,
                        f"iteration over an unordered set inside {qualified}() "
                        f"— wrap it in sorted(...) to keep the "
                        f"signature replay-deterministic"))
        return findings

    # ------------------------------------------------------------------ #
    @staticmethod
    def _iteration_sources(function: ast.AST):
        for node in ast.walk(function):
            if isinstance(node, ast.For):
                yield node.iter
            elif isinstance(node, ast.comprehension):
                yield node.iter

    @staticmethod
    def _set_valued_locals(function: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign):
                continue
            if not OrderedSignatureRule._is_set_expression(node.value):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _is_set_expression(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            return chain in (("set",), ("frozenset",))
        return False

    @classmethod
    def _is_set_like(cls, node: ast.AST, set_locals: Set[str], aliases) -> bool:
        if cls._is_set_expression(node):
            return True
        return isinstance(node, ast.Name) and node.id in set_locals
