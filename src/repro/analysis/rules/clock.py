"""CLK001 — virtual-time code must never read the wall clock directly.

Replays are bit-reproducible because every latency, TTL and schedule derives
from an injected clock (``TraceClock`` or a ``Callable[[], float]``).  A
direct ``time.time()`` / ``time.perf_counter()`` / ``datetime.now()`` call
silently couples behaviour to the host, so those calls are only allowed in the
explicit wall-timing allowlist (benchmark harness, efficiency measurement,
CLI timing blocks).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from .base import BaseRule, resolve_call

_WALL_CLOCK_CALLS: Tuple[Tuple[str, ...], ...] = (
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "datetime", "now"),
    ("datetime", "datetime", "utcnow"),
    ("datetime", "datetime", "today"),
    ("datetime", "date", "today"),
)

# Files whose whole purpose is measuring wall time.
DEFAULT_CLOCK_ALLOWLIST: Tuple[str, ...] = (
    "repro/eval/timing.py",
    "repro/perf/bench.py",
    "repro/cli.py",
)


class WallClockRule(BaseRule):
    """Flag direct wall-clock reads outside the timing allowlist."""

    rule_id = "CLK001"
    description = ("wall-clock reads are only allowed in the timing allowlist; "
                   "virtual-time code must use an injected clock")

    def __init__(self, allowlist: Iterable[str] = DEFAULT_CLOCK_ALLOWLIST) -> None:
        self.allowlist = tuple(allowlist)

    def check_file(self, context) -> List:
        posix_path = context.path.replace("\\", "/")
        if any(posix_path.endswith(entry) for entry in self.allowlist):
            return []
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = resolve_call(node, context.aliases)
            if chain in _WALL_CLOCK_CALLS:
                findings.append(self.finding(
                    context, node,
                    f"direct wall-clock call {'.'.join(chain)}() — inject a "
                    f"clock (TraceClock or Callable[[], float]) instead"))
        return findings
