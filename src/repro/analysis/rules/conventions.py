"""Repo-convention rules: NaN measurements (NAN001) and generic Python
hazards the serving stack has been bitten by (MUT001, EXC001).

NAN001 encodes the repo-wide *undefined-measurement-is-NaN* convention: a
rate, latency, average or similar measurement with no data must return
``float("nan")`` — never ``0.0``, which silently reads as "measured and
perfect" in dashboards, regression gates and merged telemetry.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .base import BaseRule, dotted_name, name_tokens

# A function is "measurement-like" when its name contains one of these tokens…
_MEASUREMENT_NAME_TOKENS = frozenset({
    "rate", "ratio", "latency", "avg", "average", "mean", "density",
    "duration", "qps", "throughput", "reward", "loss", "fraction", "share",
})
# …or its docstring's first line contains one of these phrases.
_MEASUREMENT_DOC_PHRASES = (
    "fraction of", "share of", "average", "per second", "latency",
    "density", "duration", "loss",
)


def _is_measurement_function(node: ast.AST) -> bool:
    if _MEASUREMENT_NAME_TOKENS & set(name_tokens(node.name)):
        return True
    docstring = ast.get_docstring(node)
    if not docstring:
        return False
    first_line = docstring.strip().splitlines()[0].lower()
    return any(phrase in first_line for phrase in _MEASUREMENT_DOC_PHRASES)


def _own_statements(function: ast.AST):
    """Walk a function's body without descending into nested defs/classes."""
    stack = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class NaNMeasurementRule(BaseRule):
    """NAN001 — undefined measurements return NaN, never a literal zero."""

    rule_id = "NAN001"
    description = ("measurement-like functions (rates, latencies, averages, …) "
                   "must return float('nan') for the undefined case, not 0.0")

    def check_file(self, context) -> List:
        findings = []
        for function, qualified in context.functions():
            if not _is_measurement_function(function):
                continue
            for node in _own_statements(function):
                if not isinstance(node, ast.Return):
                    continue
                if self._is_zero_literal(node.value):
                    findings.append(self.finding(
                        context, node,
                        f"{qualified}() looks like a measurement but returns a "
                        f"literal zero — undefined measurements must be "
                        f"float('nan') (annotate genuine zeros with "
                        f"`# repro: ignore[NAN001] <reason>`)"))
        return findings

    @staticmethod
    def _is_zero_literal(node: Optional[ast.AST]) -> bool:
        return (isinstance(node, ast.Constant)
                and not isinstance(node.value, bool)
                and isinstance(node.value, (int, float))
                and node.value == 0)


class MutableDefaultRule(BaseRule):
    """MUT001 — mutable default arguments are shared across calls."""

    rule_id = "MUT001"
    description = "mutable default argument (list/dict/set) — default to None"

    def check_file(self, context) -> List:
        findings = []
        for function, qualified in context.functions():
            defaults = list(function.args.defaults)
            defaults += [item for item in function.args.kw_defaults if item is not None]
            for default in defaults:
                if self._is_mutable(default):
                    findings.append(self.finding(
                        context, default,
                        f"mutable default argument in {qualified}() is shared "
                        f"across calls — use None and create it in the body"))
        return findings

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in (("list",), ("dict",), ("set",))
        return False


class OverbroadExceptRule(BaseRule):
    """EXC001 — bare/overbroad exception handlers swallow real failures.

    Flags ``except:``, ``except BaseException`` and ``except Exception``
    handlers that do not re-raise; a handler containing a ``raise`` keeps the
    failure observable and passes.
    """

    rule_id = "EXC001"
    description = ("bare or overbroad except clause — catch specific "
                   "exceptions or re-raise")

    def check_file(self, context) -> List:
        findings = []
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._overbroad_label(node.type)
            if label is None:
                continue
            if label != "bare except:" and self._reraises(node):
                continue
            findings.append(self.finding(
                context, node,
                f"{label} swallows unrelated failures — catch specific "
                f"exception types or re-raise"))
        return findings

    @staticmethod
    def _overbroad_label(type_node: Optional[ast.AST]) -> Optional[str]:
        if type_node is None:
            return "bare except:"
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [dotted_name(item) for item in type_node.elts]
        else:
            names = [dotted_name(type_node)]
        for name in names:
            if name in (("Exception",), ("BaseException",)):
                return f"except {name[0]} without re-raise"
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(node, ast.Raise) for node in ast.walk(handler))
