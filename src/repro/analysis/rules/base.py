"""The pluggable rule framework: :class:`Rule` protocol + shared AST helpers.

A rule sees one parsed file at a time through :meth:`Rule.check_file` and may
keep state across files, emitting project-wide findings from
:meth:`Rule.finish` once every file has been visited (the cross-file pass).
Stateless per-file rules simply leave ``finish`` at its empty default.

Rules receive a :class:`~repro.analysis.engine.FileContext` — path, source,
AST, import aliases — and return plain :class:`Finding` lists; the engine owns
suppression, baselining, ordering and reporting.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Protocol, Tuple, runtime_checkable

from ..findings import Finding


@runtime_checkable
class Rule(Protocol):
    """What the engine requires of a lint rule."""

    rule_id: str
    description: str

    def check_file(self, context: "FileContext") -> List[Finding]:  # noqa: F821
        """Per-file pass: findings for one parsed module."""
        ...

    def finish(self) -> List[Finding]:
        """Cross-file pass: findings that need the whole project (default none)."""
        ...


class BaseRule:
    """Convenience base: subclass, set ``rule_id``/``description``, override hooks."""

    rule_id = "RULE000"
    description = ""

    def check_file(self, context) -> List[Finding]:
        return []

    def finish(self) -> List[Finding]:
        return []

    # ------------------------------------------------------------------ #
    def finding(self, context, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node`` inside ``context``'s file."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        source_line = context.line(line)
        return Finding(path=context.path, line=line, column=column,
                       rule_id=self.rule_id, message=message,
                       source_line=source_line)


# --------------------------------------------------------------------------- #
# shared AST helpers
# --------------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Resolve ``a.b.c`` attribute chains to ``("a", "b", "c")``; None otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def resolve_call(node: ast.Call, aliases: Dict[str, str]) -> Optional[Tuple[str, ...]]:
    """Dotted call target with the leading import alias canonicalised.

    ``np.random.default_rng(...)`` resolves to ``("numpy", "random",
    "default_rng")`` when the file did ``import numpy as np``.
    """
    chain = dotted_name(node.func)
    if chain is None:
        return None
    root = aliases.get(chain[0])
    if root is not None:
        return tuple(root.split(".")) + chain[1:]
    return chain


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the modules/objects they were imported as.

    ``import numpy as np`` → ``{"np": "numpy"}``; ``from datetime import
    datetime as dt`` → ``{"dt": "datetime.datetime"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def name_tokens(identifier: str) -> List[str]:
    """Lower-case word tokens of a snake_case or CamelCase identifier."""
    flattened = _CAMEL_BOUNDARY.sub("_", identifier)
    return [token for token in flattened.lower().split("_") if token]


def iter_functions(tree: ast.Module) -> Iterable[Tuple[ast.AST, str]]:
    """Yield every (def node, qualified name) pair, including methods."""

    def walk(node: ast.AST, prefix: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualified = f"{prefix}{child.name}"
                yield child, qualified
                yield from walk(child, f"{qualified}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")
