"""The lint engine: file discovery, parsing, rule dispatch, reporting.

``run_lint`` is the library entry point (the CLI is a thin wrapper): collect
``*.py`` files, parse each once into a :class:`FileContext`, run every rule's
per-file pass, then every rule's cross-file ``finish`` pass, subtract inline
suppressions and the committed baseline, and return a :class:`LintReport`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .baseline import Baseline
from .findings import Finding, sort_findings
from .rules import default_rules
from .rules.base import Rule, import_aliases, iter_functions
from .suppress import SuppressionIndex

PARSE_RULE_ID = "PARSE"


class FileContext:
    """Everything a rule may want about one source file, parsed once."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.aliases = import_aliases(tree)
        self.suppressions = SuppressionIndex.from_source(self.lines)
        self._functions: Optional[List[Tuple[ast.AST, str]]] = None

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def functions(self) -> List[Tuple[ast.AST, str]]:
        """Cached (def node, qualified name) pairs, methods included."""
        if self._functions is None:
            self._functions = list(iter_functions(self.tree))
        return self._functions


@dataclass
class LintReport:
    """What one lint run produced, after suppression and baselining."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict:
        return {
            "files_checked": self.files_checked,
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": len(self.baselined),
            "suppressed": self.suppressed_count,
            "clean": self.clean,
        }


# --------------------------------------------------------------------------- #
# file discovery
# --------------------------------------------------------------------------- #
_SKIP_DIRECTORIES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def collect_files(paths: Sequence[Path], root: Optional[Path] = None) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``*.py`` list."""
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRECTORIES.intersection(candidate.parts):
                    collected.append(candidate)
        elif path.suffix == ".py":
            collected.append(path)
    unique: List[Path] = []
    seen = set()
    for path in collected:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def relative_posix(path: Path, root: Optional[Path] = None) -> str:
    """``path`` relative to ``root`` (default: cwd) when possible, POSIX style."""
    base = (root or Path.cwd()).resolve()
    resolved = path.resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


# --------------------------------------------------------------------------- #
# the run
# --------------------------------------------------------------------------- #
def lint_files(files: Sequence[Path], rules: Optional[Sequence[Rule]] = None,
               baseline: Optional[Baseline] = None,
               root: Optional[Path] = None) -> LintReport:
    """Lint pre-collected files; see :func:`run_lint` for path expansion."""
    active_rules = list(rules) if rules is not None else default_rules()
    report = LintReport()
    raw_findings: List[Finding] = []
    contexts: Dict[str, FileContext] = {}

    for path in files:
        rel = relative_posix(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError) as error:
            line = getattr(error, "lineno", 1) or 1
            raw_findings.append(Finding(
                path=rel, line=line, column=1, rule_id=PARSE_RULE_ID,
                message=f"file could not be parsed: {error.msg if isinstance(error, SyntaxError) else error}"))
            report.files_checked += 1
            continue
        context = FileContext(rel, source, tree)
        contexts[rel] = context
        report.files_checked += 1
        for rule in active_rules:
            raw_findings.extend(rule.check_file(context))

    # Cross-file pass: rules that accumulated project-wide state report here.
    for rule in active_rules:
        raw_findings.extend(rule.finish())

    visible: List[Finding] = []
    for finding in sort_findings(raw_findings):
        context = contexts.get(finding.path)
        if context is not None and context.suppressions.suppresses(finding):
            report.suppressed_count += 1
            continue
        visible.append(finding)

    if baseline is not None:
        visible, matched = baseline.partition(visible)
        report.baselined = matched
    report.findings = visible
    return report


def run_lint(paths: Sequence, rules: Optional[Sequence[Rule]] = None,
             baseline: Optional[Baseline] = None,
             root: Optional[Path] = None) -> LintReport:
    """Lint files/directories and return the post-baseline report."""
    files = collect_files([Path(path) for path in paths], root=root)
    return lint_files(files, rules=rules, baseline=baseline, root=root)
