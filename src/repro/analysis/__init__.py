"""repro.analysis — AST-based invariant linter for the repo's conventions.

Seven PRs of growth rest on conventions nothing used to enforce: seeded and
injected RNGs, virtual-time code that never reads the wall clock, NaN (never
``0.0``) for undefined measurements, provenance threading, deterministic
signatures.  This package checks them *at review time, over all code* — the
static complement to the runtime oracle battery in :mod:`repro.simulate`.

Battery
-------
======  =====================================================================
DET001  RNG must be injected or built from an explicit seed; no module-level
        ``np.random.*`` / ``random.*`` global state
CLK001  no direct wall-clock reads outside the timing allowlist
NAN001  measurement-like functions return NaN for the undefined case, not 0.0
MUT001  no mutable default arguments
EXC001  no bare/overbroad ``except`` without re-raise
SIG001  signature/fingerprint/ledger code must not iterate unordered sets
======  =====================================================================

Suppress one finding inline with ``# repro: ignore[RULE] reason`` (same line
or a standalone comment on the line above); grandfather existing findings in
``.repro-lint-baseline.json`` via ``repro lint --update-baseline``.
"""

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import FileContext, LintReport, collect_files, lint_files, run_lint
from .findings import Finding, sort_findings
from .rules import RULE_CLASSES, BaseRule, Rule, default_rules, rule_table
from .suppress import SuppressionIndex

__all__ = [
    "Baseline",
    "BaseRule",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "LintReport",
    "RULE_CLASSES",
    "Rule",
    "SuppressionIndex",
    "collect_files",
    "default_rules",
    "lint_files",
    "rule_table",
    "run_lint",
    "sort_findings",
]
