"""Inline suppression comments: ``# repro: ignore[RULE1,RULE2] reason``.

A suppression silences matching findings on the *same* physical line, or — for
a comment that stands alone on its own line — on the next line, so long
messages can sit above the statement they annotate::

    rng = np.random.default_rng()  # repro: ignore[DET001] fixture only

    # repro: ignore[NAN001] zero reward is a real reward, not a measurement
    return 0.0

``ignore[*]`` suppresses every rule on the target line.  Suppressions are
parsed lexically (no AST) so they also work in files the parser rejects.

Rules in :data:`REASON_REQUIRED` (currently ``EXC001``, the bare/broad
``except`` rule) only accept a suppression that carries a trailing reason —
a naked ``# repro: ignore[EXC001]`` does not silence the finding.  Swallowed
exceptions are exactly where silent faults hide, so every one the tree keeps
must say why it is safe.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

from .findings import Finding

SUPPRESS_PATTERN = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_*,\s]+)\]\s*(\S?)")

#: Rules whose suppression must carry a trailing free-text reason.
REASON_REQUIRED = frozenset({"EXC001"})

_WILDCARD = "*"


class SuppressionIndex:
    """Maps 1-based line numbers to the set of rule ids suppressed there."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]],
                 reasoned: Dict[int, FrozenSet[str]]) -> None:
        self._by_line = by_line
        self._reasoned = reasoned

    @classmethod
    def from_source(cls, source_lines: Sequence[str]) -> "SuppressionIndex":
        by_line: Dict[int, FrozenSet[str]] = {}
        reasoned: Dict[int, FrozenSet[str]] = {}
        for index, text in enumerate(source_lines, start=1):
            match = SUPPRESS_PATTERN.search(text)
            if match is None:
                continue
            rules = frozenset(token.strip() for token in match.group(1).split(",")
                              if token.strip())
            if not rules:
                continue
            target = index + 1 if text.lstrip().startswith("#") else index
            by_line[target] = by_line.get(target, frozenset()) | rules
            if match.group(2):
                reasoned[target] = reasoned.get(target, frozenset()) | rules
        return cls(by_line, reasoned)

    def suppresses(self, finding: Finding) -> bool:
        rules = self._by_line.get(finding.line)
        if not rules:
            return False
        if finding.rule_id in REASON_REQUIRED:
            rules = self._reasoned.get(finding.line, frozenset())
        return _WILDCARD in rules or finding.rule_id in rules

    def __len__(self) -> int:
        return len(self._by_line)
