"""Inline suppression comments: ``# repro: ignore[RULE1,RULE2] reason``.

A suppression silences matching findings on the *same* physical line, or — for
a comment that stands alone on its own line — on the next line, so long
messages can sit above the statement they annotate::

    rng = np.random.default_rng()  # repro: ignore[DET001] fixture only

    # repro: ignore[NAN001] zero reward is a real reward, not a measurement
    return 0.0

``ignore[*]`` suppresses every rule on the target line.  Suppressions are
parsed lexically (no AST) so they also work in files the parser rejects.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

from .findings import Finding

SUPPRESS_PATTERN = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_*,\s]+)\]")

_WILDCARD = "*"


class SuppressionIndex:
    """Maps 1-based line numbers to the set of rule ids suppressed there."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]]) -> None:
        self._by_line = by_line

    @classmethod
    def from_source(cls, source_lines: Sequence[str]) -> "SuppressionIndex":
        by_line: Dict[int, FrozenSet[str]] = {}
        for index, text in enumerate(source_lines, start=1):
            match = SUPPRESS_PATTERN.search(text)
            if match is None:
                continue
            rules = frozenset(token.strip() for token in match.group(1).split(",")
                              if token.strip())
            if not rules:
                continue
            target = index + 1 if text.lstrip().startswith("#") else index
            by_line[target] = by_line.get(target, frozenset()) | rules
        return cls(by_line)

    def suppresses(self, finding: Finding) -> bool:
        rules = self._by_line.get(finding.line)
        if not rules:
            return False
        return _WILDCARD in rules or finding.rule_id in rules

    def __len__(self) -> int:
        return len(self._by_line)
