"""Dual-Agent Reinforcement Learning (DARL) and the CADRL model facade."""

from .agents import CategoryAgent, CategoryDecision, EntityAgent, EntityDecision
from .collaborative import GuidanceModel, action_target_categories
from .inference import InferenceConfig, PathRecommender
from .model import CADRL, CADRLConfig
from .shared_policy import PolicyConfig, SharedPolicyNetworks
from .trainer import DARLConfig, DARLTrainer, EpochStats
from .variants import VARIANT_FACTORIES, build_variant

__all__ = [
    "CADRL",
    "CADRLConfig",
    "CategoryAgent",
    "CategoryDecision",
    "DARLConfig",
    "DARLTrainer",
    "EntityAgent",
    "EntityDecision",
    "EpochStats",
    "GuidanceModel",
    "InferenceConfig",
    "PathRecommender",
    "PolicyConfig",
    "SharedPolicyNetworks",
    "VARIANT_FACTORIES",
    "action_target_categories",
    "build_variant",
]
