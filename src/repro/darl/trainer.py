"""Joint REINFORCE training of the dual agents (Section IV-C).

One training episode walks both agents for ``L`` steps starting from a user:
the category agent over ``Gc`` and the entity agent over the KG, with the
entity agent's action space narrowed towards the category agent's current
milestone.  Per-step partner rewards (KL guidance and cosine consistency) are
combined with the binary terminal rewards (Eq. 20-21), and both policies are
updated through the shared networks with REINFORCE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .. import nn
from ..cggnn.model import Representations
from ..kg.category_graph import CategoryGraph
from ..kg.graph import KnowledgeGraph
from ..kg.relations import Relation
from ..nn import Tensor
from ..rl.environment import CategoryEnvironment, EntityEnvironment
from ..rl.reinforce import MovingBaseline, ReinforceConfig, apply_update, policy_gradient_loss
from ..rl.rewards import collaborative_rewards, consistency_reward
from ..rl.trajectory import CategoryStep, EntityStep, EpisodeResult
from .agents import CategoryAgent, EntityAgent
from .collaborative import GuidanceModel
from .shared_policy import PolicyConfig, SharedPolicyNetworks


@dataclass
class DARLConfig:
    """Hyper-parameters of the dual-agent RL stage (paper Section V-A.3)."""

    max_path_length: int = 6          # L
    epochs: int = 20
    learning_rate: float = 1e-3
    gamma: float = 0.95
    alpha_pe: float = 0.4             # weight of the consistency reward in R^c
    alpha_pc: float = 0.5             # weight of the guidance reward in R^e
    max_entity_actions: int = 50      # |A^e| bound
    max_category_actions: int = 10    # |A^c| bound
    guidance_strength: float = 2.0    # logit bonus of the category intervention
    hidden_size: int = 64
    mlp_hidden: int = 128
    episodes_per_user: int = 1
    gradient_clip: float = 5.0
    entropy_weight: float = 0.01      # entropy regularisation against policy collapse
    # Ablation switches (Table IV / Fig. 4)
    use_dual_agent: bool = True       # False => "CADRL w/o DARL" (single agent)
    use_collaborative_rewards: bool = True  # False => RCRM
    share_history: bool = True        # False => RSHI
    seed: int = 0

    def validate(self) -> None:
        if self.max_path_length < 1:
            raise ValueError("max_path_length must be at least 1")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0.0 <= self.alpha_pe <= 1.0 and 0.0 <= self.alpha_pc <= 1.0):
            raise ValueError("reward discount factors must lie in [0, 1]")


@dataclass
class EpochStats:
    """Per-epoch training diagnostics."""

    epoch: int
    mean_entity_reward: float
    mean_category_reward: float
    hit_rate: float
    policy_loss: float


class DARLTrainer:
    """Trains the dual-agent policies for one dataset."""

    def __init__(self, graph: KnowledgeGraph, category_graph: CategoryGraph,
                 representations: Representations,
                 config: Optional[DARLConfig] = None) -> None:
        self.config = config or DARLConfig()
        self.config.validate()
        self.graph = graph
        self.category_graph = category_graph
        self.representations = representations
        self.rng = np.random.default_rng(self.config.seed)

        self.entity_environment = EntityEnvironment(
            graph, representations, max_actions=self.config.max_entity_actions,
            rng=np.random.default_rng(self.config.seed + 1))
        self.category_environment = CategoryEnvironment(
            category_graph, graph, representations,
            max_actions=self.config.max_category_actions)

        policy_config = PolicyConfig(
            embedding_dim=representations.dim,
            hidden_size=self.config.hidden_size,
            mlp_hidden=self.config.mlp_hidden,
            share_history=self.config.share_history,
            seed=self.config.seed,
        )
        self.policy = SharedPolicyNetworks(policy_config)
        self.guidance = GuidanceModel(strength=self.config.guidance_strength)
        self.category_agent = CategoryAgent(self.category_environment, self.policy)
        self.entity_agent = EntityAgent(self.entity_environment, self.policy, self.guidance)

        self.optimiser = nn.Adam(self.policy.parameters(), lr=self.config.learning_rate)
        self.reinforce_config = ReinforceConfig(gamma=self.config.gamma,
                                                gradient_clip=self.config.gradient_clip,
                                                entropy_weight=self.config.entropy_weight)
        self._entity_baseline = MovingBaseline()
        self._category_baseline = MovingBaseline()
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train(self, user_positive_items: Dict[int, List[int]]) -> List[EpochStats]:
        """Run REINFORCE training over all users for ``config.epochs`` epochs.

        ``user_positive_items`` maps user *entity ids* to the entity ids of
        their training items (the reward targets V_u).
        """
        users = [user for user, items in user_positive_items.items() if items]
        for epoch in range(self.config.epochs):
            order = self.rng.permutation(len(users))
            entity_rewards: List[float] = []
            category_rewards: List[float] = []
            hits = 0
            episodes = 0
            losses: List[float] = []
            for index in order:
                user = users[index]
                positives = set(user_positive_items[user])
                for _ in range(self.config.episodes_per_user):
                    episode, loss = self._run_training_episode(user, positives)
                    episodes += 1
                    entity_rewards.append(episode.total_entity_reward())
                    category_rewards.append(episode.total_category_reward())
                    if episode.final_entity in positives:
                        hits += 1
                    losses.append(loss)
            # Empty episodes report a NaN loss (nothing was measured); average
            # only over episodes that actually performed an update.
            measured_losses = [loss for loss in losses if not np.isnan(loss)]
            stats = EpochStats(
                epoch=epoch,
                mean_entity_reward=float(np.mean(entity_rewards)) if entity_rewards else 0.0,
                mean_category_reward=float(np.mean(category_rewards)) if category_rewards else 0.0,
                hit_rate=hits / max(episodes, 1),
                policy_loss=(float(np.mean(measured_losses))
                             if measured_losses else float("nan")),
            )
            self.history.append(stats)
        return self.history

    # ------------------------------------------------------------------ #
    def _run_training_episode(self, user_entity: int, positives: Set[int]
                              ) -> Tuple[EpisodeResult, float]:
        """Roll out one dual-agent (or single-agent) episode and update the policy."""
        target_categories = {
            category for category in
            (self.graph.category_of(item) for item in positives)
            if category is not None
        }

        episode = EpisodeResult(user_id=user_entity, start_entity=user_entity)
        entity_state = self.entity_environment.initial_state(user_entity)
        entity_lstm = self.policy.initial_entity_state()
        category_lstm = self.policy.initial_category_state()

        user_vector = self.representations.entity_vector(user_entity)
        entity_hidden, entity_lstm = self.policy.encode_entity_step(
            self.representations.relation_vector(Relation.SELF_LOOP), user_vector,
            None, entity_lstm)

        use_dual = self.config.use_dual_agent
        category_state = None
        category_hidden = None
        if use_dual:
            start_category = self.category_environment.start_category_for(user_entity)
            category_state = self.category_environment.initial_state(user_entity, start_category)
            category_hidden, category_lstm = self.policy.encode_category_step(
                self.representations.category_vector(start_category), None, category_lstm)

        entity_log_probs: List[Tensor] = []
        category_log_probs: List[Tensor] = []
        entity_entropies: List[Tensor] = []
        category_entropies: List[Tensor] = []
        guidance_rewards: List[float] = []
        consistency_rewards: List[float] = []
        last_relation = Relation.SELF_LOOP

        for _ in range(self.config.max_path_length):
            guided_category: Optional[int] = None
            category_decision = None
            if use_dual:
                category_decision = self.category_agent.decide(
                    category_state, entity_hidden, category_hidden, category_lstm, self.rng)
                guided_category = category_decision.chosen_category

            entity_decision = self.entity_agent.decide(
                entity_state, last_relation, category_hidden, entity_hidden, entity_lstm,
                self.rng, guided_category=guided_category)

            # Per-step partner rewards (collaborative reward mechanism).
            if use_dual and self.config.use_collaborative_rewards:
                step_guidance = self.guidance.kl_guidance_reward(
                    entity_decision.base_logits, entity_decision.target_categories,
                    category_decision.chosen_category,
                    category_decision.alternative_categories,
                    category_decision.alternative_probabilities)
            else:
                step_guidance = 0.0

            next_entity_state = self.entity_environment.step(entity_state,
                                                             entity_decision.chosen_action)
            if use_dual:
                next_category_state = self.category_environment.step(
                    category_state, category_decision.chosen_category)
                if self.config.use_collaborative_rewards:
                    step_consistency = consistency_reward(
                        self.category_environment.state_vector(next_category_state),
                        self.entity_environment.state_vector(next_entity_state))
                else:
                    step_consistency = 0.0
            else:
                next_category_state = None
                step_consistency = 0.0

            guidance_rewards.append(step_guidance)
            consistency_rewards.append(step_consistency)
            entity_log_probs.append(entity_decision.log_prob)
            entity_entropies.append(entity_decision.entropy)
            if use_dual:
                category_log_probs.append(category_decision.log_prob)
                category_entropies.append(category_decision.entropy)

            episode.entity_steps.append(EntityStep(
                entity_id=entity_decision.chosen_action[1],
                relation=entity_decision.chosen_action[0],
                log_prob=entity_decision.log_prob))
            if use_dual:
                episode.category_steps.append(CategoryStep(
                    category_id=category_decision.chosen_category,
                    log_prob=category_decision.log_prob))

            # Advance states and history encoders.
            entity_state = next_entity_state
            last_relation = entity_decision.chosen_action[0]
            entity_hidden = entity_decision.new_hidden
            entity_lstm = entity_decision.new_lstm_state
            if use_dual:
                category_state = next_category_state
                category_hidden = category_decision.new_hidden
                category_lstm = category_decision.new_lstm_state

        terminal_entity = self.entity_environment.terminal_reward(entity_state, positives)
        terminal_category = (
            self.category_environment.terminal_reward(category_state, target_categories)
            if use_dual else 0.0)

        rewards = collaborative_rewards(
            terminal_category=terminal_category,
            terminal_entity=terminal_entity,
            guidance=guidance_rewards,
            consistency=consistency_rewards,
            alpha_pe=self.config.alpha_pe if self.config.use_collaborative_rewards else 0.0,
            alpha_pc=self.config.alpha_pc if self.config.use_collaborative_rewards else 0.0,
        )
        for step, reward in zip(episode.entity_steps, rewards["entity"]):
            step.reward = reward
        for step, reward in zip(episode.category_steps, rewards["category"]):
            step.reward = reward

        category_reward_stream = rewards["category"] if category_log_probs else []
        loss_value = self._update_policy(entity_log_probs, rewards["entity"],
                                         category_log_probs, category_reward_stream,
                                         entity_entropies, category_entropies)
        return episode, loss_value

    def _update_policy(self, entity_log_probs: List[Tensor], entity_rewards: List[float],
                       category_log_probs: List[Tensor], category_rewards: List[float],
                       entity_entropies: Optional[List[Tensor]] = None,
                       category_entropies: Optional[List[Tensor]] = None) -> float:
        """One REINFORCE update over both agents' losses."""
        entity_loss = policy_gradient_loss(entity_log_probs, entity_rewards,
                                           self.reinforce_config, self._entity_baseline,
                                           entropies=entity_entropies)
        category_loss = policy_gradient_loss(category_log_probs, category_rewards,
                                             self.reinforce_config, self._category_baseline,
                                             entropies=category_entropies)
        if entity_loss is None and category_loss is None:
            return float("nan")  # neither agent recorded a decision: no loss measured
        if entity_loss is None:
            total = category_loss
        elif category_loss is None:
            total = entity_loss
        else:
            total = entity_loss + category_loss
        return apply_update(total, self.policy.parameters(), self.optimiser,
                            self.reinforce_config)
