"""The category agent and the entity agent (Section IV-C.1 and IV-C.2).

Each agent bundles its environment view with the shared policy networks and
exposes a single ``decide`` method that scores the candidate actions, samples
(or greedily picks) one, and advances its history encoder.  The trainer and
the beam-search inference both drive the agents exclusively through this
interface, so training-time and inference-time behaviour cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..kg.pruning import Action
from ..kg.relations import Relation
from ..nn import Tensor
from ..nn import functional as F
from ..rl.environment import CategoryEnvironment, CategoryState, EntityEnvironment, EntityState
from .collaborative import GuidanceModel, action_target_categories
from .shared_policy import LSTMState, SharedPolicyNetworks


@dataclass
class CategoryDecision:
    """Outcome of one category-agent step."""

    actions: List[int]
    probabilities: np.ndarray
    chosen_index: int
    chosen_category: int
    log_prob: Tensor
    entropy: Tensor
    new_hidden: Tensor
    new_lstm_state: LSTMState

    @property
    def alternative_categories(self) -> List[int]:
        return [c for i, c in enumerate(self.actions) if i != self.chosen_index]

    @property
    def alternative_probabilities(self) -> List[float]:
        return [float(p) for i, p in enumerate(self.probabilities) if i != self.chosen_index]


@dataclass
class EntityDecision:
    """Outcome of one entity-agent step."""

    actions: List[Action]
    base_logits: np.ndarray
    target_categories: List[Optional[int]]
    probabilities: np.ndarray
    chosen_index: int
    chosen_action: Action
    log_prob: Tensor
    entropy: Tensor
    new_hidden: Tensor
    new_lstm_state: LSTMState


class CategoryAgent:
    """Walks the category knowledge graph ``Gc`` and emits milestone guidance."""

    def __init__(self, environment: CategoryEnvironment, policy: SharedPolicyNetworks) -> None:
        self.environment = environment
        self.policy = policy

    def decide(self, state: CategoryState, partner_hidden: Optional[Tensor],
               history_hidden: Tensor, lstm_state: LSTMState,
               rng: np.random.Generator, greedy: bool = False) -> CategoryDecision:
        """Score candidate categories, pick one, and advance the history LSTM."""
        actions = self.environment.actions(state)
        action_matrix = self.environment.action_matrix(actions)
        user_vector = self.environment.representations.entity_vector(state.user_entity)
        current_vector = self.environment.representations.category_vector(state.current_category)

        logits = self.policy.category_action_logits(user_vector, current_vector,
                                                    history_hidden, action_matrix)
        log_probs = F.log_softmax(logits, axis=-1)
        entropy = -(log_probs.exp() * log_probs).sum()
        probabilities = np.exp(log_probs.data)
        probabilities = probabilities / probabilities.sum()

        if greedy:
            chosen_index = int(np.argmax(probabilities))
        else:
            chosen_index = int(rng.choice(len(actions), p=probabilities))
        chosen_category = actions[chosen_index]

        chosen_vector = self.environment.representations.category_vector(chosen_category)
        new_hidden, new_lstm_state = self.policy.encode_category_step(
            chosen_vector, partner_hidden, lstm_state)

        return CategoryDecision(
            actions=actions,
            probabilities=probabilities,
            chosen_index=chosen_index,
            chosen_category=chosen_category,
            log_prob=log_probs[chosen_index],
            entropy=entropy,
            new_hidden=new_hidden,
            new_lstm_state=new_lstm_state,
        )


class EntityAgent:
    """Walks the entity-level KG under (optional) category guidance."""

    def __init__(self, environment: EntityEnvironment, policy: SharedPolicyNetworks,
                 guidance: Optional[GuidanceModel] = None) -> None:
        self.environment = environment
        self.policy = policy
        self.guidance = guidance or GuidanceModel()

    def decide(self, state: EntityState, last_relation: Relation,
               partner_hidden: Optional[Tensor], history_hidden: Tensor,
               lstm_state: LSTMState, rng: np.random.Generator,
               guided_category: Optional[int] = None, greedy: bool = False) -> EntityDecision:
        """Score candidate hops (with guidance), pick one, advance the LSTM."""
        actions = self.environment.actions(state, target_category=guided_category)
        action_matrix = self.environment.action_matrix(actions)
        entity_vector = self.environment.representations.entity_vector(state.current_entity)
        relation_vector = self.environment.representations.relation_vector(last_relation)

        logits = self.policy.entity_action_logits(entity_vector, relation_vector,
                                                  history_hidden, action_matrix)
        target_categories = action_target_categories(self.environment.graph, actions)
        bonus = self.guidance.guidance_bonus(target_categories, guided_category)
        guided_logits = logits + Tensor(bonus)

        log_probs = F.log_softmax(guided_logits, axis=-1)
        entropy = -(log_probs.exp() * log_probs).sum()
        probabilities = np.exp(log_probs.data)
        probabilities = probabilities / probabilities.sum()

        if greedy:
            chosen_index = int(np.argmax(probabilities))
        else:
            chosen_index = int(rng.choice(len(actions), p=probabilities))
        chosen_action = actions[chosen_index]

        chosen_relation_vector = self.environment.representations.relation_vector(
            chosen_action[0])
        chosen_entity_vector = self.environment.representations.entity_vector(chosen_action[1])
        new_hidden, new_lstm_state = self.policy.encode_entity_step(
            chosen_relation_vector, chosen_entity_vector, partner_hidden, lstm_state)

        return EntityDecision(
            actions=actions,
            base_logits=np.array(logits.data, copy=True),
            target_categories=target_categories,
            probabilities=probabilities,
            chosen_index=chosen_index,
            chosen_action=chosen_action,
            log_prob=log_probs[chosen_index],
            entropy=entropy,
            new_hidden=new_hidden,
            new_lstm_state=new_lstm_state,
        )
