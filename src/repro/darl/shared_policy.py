"""Shared policy networks of the dual-agent framework (Eq. 12-16).

Two LSTMs encode the histories of the category and entity agents.  History
*sharing* is realised by feeding each agent's previous hidden state into the
other agent's LSTM input (Eq. 13-14), so the two policies condition on a joint
view of the walk.  Action scoring follows Eq. 15-16: a two-layer perceptron
maps the (state, history) encoding to a query vector that is dotted with the
stacked action embeddings, and a softmax turns the scores into a policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import Tensor
from ..nn import functional as F

LSTMState = Tuple[Tensor, Tensor]


@dataclass
class PolicyConfig:
    """Architecture hyper-parameters of the shared policy networks."""

    embedding_dim: int = 100
    hidden_size: int = 64
    mlp_hidden: int = 128
    share_history: bool = True   # disabled by the RSHI ablation (Fig. 4)
    seed: int = 0

    def validate(self) -> None:
        if min(self.embedding_dim, self.hidden_size, self.mlp_hidden) <= 0:
            raise ValueError("policy dimensions must be positive")


class SharedPolicyNetworks(nn.Module):
    """π^c_θ and π^e_θ with cross-agent history sharing."""

    def __init__(self, config: Optional[PolicyConfig] = None) -> None:
        self.config = config or PolicyConfig()
        self.config.validate()
        rng = np.random.default_rng(self.config.seed)
        d = self.config.embedding_dim
        h = self.config.hidden_size
        m = self.config.mlp_hidden

        # History encoders (Eq. 12-14).  Inputs: the latest step embedding of
        # the agent itself concatenated with the partner's previous hidden
        # state (zeros when sharing is disabled or at step 0).
        self.entity_lstm = nn.LSTMCell(2 * d + h, h, rng=rng)
        self.category_lstm = nn.LSTMCell(d + h, h, rng=rng)

        # Entity policy head (Eq. 16): query = W2 ReLU(W1 [h_e; h_r; y^e]).
        self.entity_mlp_in = nn.Linear(2 * d + h, m, rng=rng)
        self.entity_mlp_out = nn.Linear(m, 2 * d, rng=rng)

        # Category policy head (Eq. 15): query = W2 ReLU(W1 [u; c; y^c]).
        self.category_mlp_in = nn.Linear(2 * d + h, m, rng=rng)
        self.category_mlp_out = nn.Linear(m, d, rng=rng)

    # ------------------------------------------------------------------ #
    # history encoding
    # ------------------------------------------------------------------ #
    def initial_entity_state(self) -> LSTMState:
        return self.entity_lstm.initial_state()

    def initial_category_state(self) -> LSTMState:
        return self.category_lstm.initial_state()

    def zero_hidden(self) -> Tensor:
        return Tensor(np.zeros(self.config.hidden_size))

    def _partner(self, partner_hidden: Optional[Tensor]) -> Tensor:
        if partner_hidden is None or not self.config.share_history:
            return self.zero_hidden()
        return partner_hidden

    def encode_entity_step(self, relation_vector: np.ndarray, entity_vector: np.ndarray,
                           partner_hidden: Optional[Tensor],
                           state: LSTMState) -> Tuple[Tensor, LSTMState]:
        """Advance the entity history encoder with the latest hop (Eq. 14)."""
        step = nn.concat([Tensor(relation_vector), Tensor(entity_vector),
                          self._partner(partner_hidden)], axis=-1)
        hidden, cell = self.entity_lstm(step, state)
        return hidden, (hidden, cell)

    def encode_category_step(self, category_vector: np.ndarray,
                             partner_hidden: Optional[Tensor],
                             state: LSTMState) -> Tuple[Tensor, LSTMState]:
        """Advance the category history encoder with the latest category (Eq. 13)."""
        step = nn.concat([Tensor(category_vector), self._partner(partner_hidden)], axis=-1)
        hidden, cell = self.category_lstm(step, state)
        return hidden, (hidden, cell)

    # ------------------------------------------------------------------ #
    # action scoring
    # ------------------------------------------------------------------ #
    def entity_action_logits(self, entity_vector: np.ndarray, relation_vector: np.ndarray,
                             history_hidden: Tensor, action_matrix: np.ndarray) -> Tensor:
        """Unnormalised scores over the entity agent's candidate actions (Eq. 16)."""
        state_input = nn.concat([Tensor(entity_vector), Tensor(relation_vector),
                                 history_hidden], axis=-1)
        query = self.entity_mlp_out(F.relu(self.entity_mlp_in(state_input)))
        return Tensor(action_matrix) @ query

    def category_action_logits(self, user_vector: np.ndarray, category_vector: np.ndarray,
                               history_hidden: Tensor, action_matrix: np.ndarray) -> Tensor:
        """Unnormalised scores over the category agent's candidate actions (Eq. 15)."""
        state_input = nn.concat([Tensor(user_vector), Tensor(category_vector),
                                 history_hidden], axis=-1)
        query = self.category_mlp_out(F.relu(self.category_mlp_in(state_input)))
        return Tensor(action_matrix) @ query

    @staticmethod
    def policy_distribution(logits: Tensor) -> Tensor:
        """Softmax policy over candidate actions."""
        return F.softmax(logits, axis=-1)

    # ------------------------------------------------------------------ #
    # inference fast path (plain NumPy, no autograd graph)
    # ------------------------------------------------------------------ #
    # Beam-search inference never needs gradients; these mirrors of the methods
    # above run directly on the parameter arrays, which keeps the efficiency
    # study (Table III) honest about CADRL's deployment cost.
    #
    # Every method accepts either a single state (1-D vectors) or a batch of
    # states (2-D arrays with a leading batch axis) — the serving micro-batcher
    # uses the batched form to vectorise one rollout step across many users.

    def _lstm_step_numpy(self, cell: nn.LSTMCell, step: np.ndarray,
                         state: Tuple[np.ndarray, np.ndarray]
                         ) -> Tuple[np.ndarray, np.ndarray]:
        hidden, memory = state
        gates = step @ cell.weight_ih.data + hidden @ cell.weight_hh.data + cell.bias.data
        h = cell.hidden_size
        sigmoid = lambda x: 1.0 / (1.0 + np.exp(-x))  # noqa: E731 - tiny local helper
        input_gate = sigmoid(gates[..., 0:h])
        forget_gate = sigmoid(gates[..., h:2 * h])
        candidate = np.tanh(gates[..., 2 * h:3 * h])
        output_gate = sigmoid(gates[..., 3 * h:4 * h])
        new_memory = forget_gate * memory + input_gate * candidate
        new_hidden = output_gate * np.tanh(new_memory)
        return new_hidden, new_memory

    def initial_state_numpy(self, batch_size: Optional[int] = None
                            ) -> Tuple[np.ndarray, np.ndarray]:
        h = self.config.hidden_size
        if batch_size is not None:
            return np.zeros((batch_size, h)), np.zeros((batch_size, h))
        return np.zeros(h), np.zeros(h)

    def _partner_numpy(self, partner_hidden: Optional[np.ndarray],
                       like: Optional[np.ndarray] = None) -> np.ndarray:
        if partner_hidden is None or not self.config.share_history:
            h = self.config.hidden_size
            if like is not None and like.ndim == 2:
                return np.zeros((like.shape[0], h))
            return np.zeros(h)
        return partner_hidden

    def encode_entity_step_numpy(self, relation_vector: np.ndarray, entity_vector: np.ndarray,
                                 partner_hidden: Optional[np.ndarray],
                                 state: Tuple[np.ndarray, np.ndarray]
                                 ) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        step = np.concatenate([relation_vector, entity_vector,
                               self._partner_numpy(partner_hidden, like=entity_vector)],
                              axis=-1)
        hidden, memory = self._lstm_step_numpy(self.entity_lstm, step, state)
        return hidden, (hidden, memory)

    def encode_category_step_numpy(self, category_vector: np.ndarray,
                                   partner_hidden: Optional[np.ndarray],
                                   state: Tuple[np.ndarray, np.ndarray]
                                   ) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
        step = np.concatenate([category_vector,
                               self._partner_numpy(partner_hidden, like=category_vector)],
                              axis=-1)
        hidden, memory = self._lstm_step_numpy(self.category_lstm, step, state)
        return hidden, (hidden, memory)

    def entity_query_numpy(self, entity_vector: np.ndarray, relation_vector: np.ndarray,
                           history_hidden: np.ndarray) -> np.ndarray:
        """Entity-policy query vector(s) (Eq. 16) without the action dot-product."""
        state_input = np.concatenate([entity_vector, relation_vector, history_hidden],
                                     axis=-1)
        hidden = np.maximum(state_input @ self.entity_mlp_in.weight.data
                            + self.entity_mlp_in.bias.data, 0.0)
        return hidden @ self.entity_mlp_out.weight.data + self.entity_mlp_out.bias.data

    def category_query_numpy(self, user_vector: np.ndarray, category_vector: np.ndarray,
                             history_hidden: np.ndarray) -> np.ndarray:
        """Category-policy query vector(s) (Eq. 15) without the action dot-product."""
        state_input = np.concatenate([user_vector, category_vector, history_hidden],
                                     axis=-1)
        hidden = np.maximum(state_input @ self.category_mlp_in.weight.data
                            + self.category_mlp_in.bias.data, 0.0)
        return hidden @ self.category_mlp_out.weight.data + self.category_mlp_out.bias.data

    def entity_action_logits_numpy(self, entity_vector: np.ndarray,
                                   relation_vector: np.ndarray,
                                   history_hidden: np.ndarray,
                                   action_matrix: np.ndarray) -> np.ndarray:
        return action_matrix @ self.entity_query_numpy(entity_vector, relation_vector,
                                                       history_hidden)

    def category_action_logits_numpy(self, user_vector: np.ndarray,
                                     category_vector: np.ndarray,
                                     history_hidden: np.ndarray,
                                     action_matrix: np.ndarray) -> np.ndarray:
        return action_matrix @ self.category_query_numpy(user_vector, category_vector,
                                                         history_hidden)
