"""Ablation variants of CADRL used by Table IV and Figures 3-4.

Every variant is just a :class:`CADRLConfig` with the relevant switch flipped,
so the ablations exercise the same code paths as the full model — exactly how
the paper constructs them:

* ``without_darl``   — single entity agent, binary terminal reward only
                       ("CADRL w/o DARL", Table IV).
* ``without_cggnn``  — static TransE representations ("CADRL w/o CGGNN").
* ``rggnn``          — CGGNN without the gated GNN module (Fig. 3, "RGGNN").
* ``rcgan``          — CGGNN without the category attention module (Fig. 3, "RCGAN").
* ``rshi``           — no shared history between the agents (Fig. 4, "RSHI").
* ``rcrm``           — no collaborative reward mechanism (Fig. 4, "RCRM").
"""

from __future__ import annotations

import copy
from typing import Callable, Dict

from .model import CADRL, CADRLConfig


def _clone(config: CADRLConfig) -> CADRLConfig:
    return copy.deepcopy(config)


def full(config: CADRLConfig) -> CADRL:
    """The complete CADRL model."""
    return CADRL(_clone(config))


def without_darl(config: CADRLConfig) -> CADRL:
    """CADRL w/o DARL: single-agent walker with only the binary terminal reward."""
    variant = _clone(config)
    variant.darl.use_dual_agent = False
    variant.darl.use_collaborative_rewards = False
    return CADRL(variant)


def without_cggnn(config: CADRLConfig) -> CADRL:
    """CADRL w/o CGGNN: items keep their static TransE representation."""
    variant = _clone(config)
    variant.use_cggnn = False
    return CADRL(variant)


def rggnn(config: CADRLConfig) -> CADRL:
    """RGGNN: remove the gated GNN, keep only category attention."""
    variant = _clone(config)
    variant.cggnn.use_ggnn = False
    return CADRL(variant)


def rcgan(config: CADRLConfig) -> CADRL:
    """RCGAN: remove the category attention, keep only the gated GNN."""
    variant = _clone(config)
    variant.cggnn.use_category_attention = False
    return CADRL(variant)


def rshi(config: CADRLConfig) -> CADRL:
    """RSHI: dual agents without shared history in the policy networks."""
    variant = _clone(config)
    variant.darl.share_history = False
    return CADRL(variant)


def rcrm(config: CADRLConfig) -> CADRL:
    """RCRM: dual agents without the collaborative (partner) rewards."""
    variant = _clone(config)
    variant.darl.use_collaborative_rewards = False
    return CADRL(variant)


VARIANT_FACTORIES: Dict[str, Callable[[CADRLConfig], CADRL]] = {
    "CADRL": full,
    "CADRL w/o DARL": without_darl,
    "CADRL w/o CGGNN": without_cggnn,
    "RGGNN": rggnn,
    "RCGAN": rcgan,
    "RSHI": rshi,
    "RCRM": rcrm,
}


def build_variant(name: str, config: CADRLConfig) -> CADRL:
    """Instantiate a named variant; raises ``KeyError`` for unknown names."""
    if name not in VARIANT_FACTORIES:
        raise KeyError(f"unknown CADRL variant {name!r}; available: {sorted(VARIANT_FACTORIES)}")
    return VARIANT_FACTORIES[name](config)
