"""Counterfactual guidance modelling for the collaborative reward mechanism.

The category agent influences the entity agent by biasing the entity policy
towards actions that land in the guided category.  The KL-based partner reward
(Eq. 17-18) asks the counterfactual question "how different would the entity
policy have been under another category?" — this module computes exactly that
from a single set of base logits, which keeps the reward cheap even with many
alternative categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..kg.graph import KnowledgeGraph
from ..kg.pruning import Action
from ..rl.rewards import guidance_reward


def action_target_categories(graph: KnowledgeGraph, actions: Sequence[Action]
                             ) -> List[Optional[int]]:
    """Category of each action's target entity (``None`` for non-items)."""
    return [graph.category_of(target) for _, target in actions]


@dataclass
class GuidanceModel:
    """Turns base entity logits + a guided category into guided distributions.

    ``strength`` is the logit bonus added to actions whose target item lies in
    the guided category; it plays the role of the causal intervention of the
    category action on the entity policy.
    """

    strength: float = 2.0

    def guided_probabilities(self, base_logits: np.ndarray,
                             target_categories: Sequence[Optional[int]],
                             guided_category: Optional[int]) -> np.ndarray:
        """``p(a^e | a^c = guided_category, s^e)`` as a NumPy distribution."""
        logits = np.asarray(base_logits, dtype=np.float64).copy()
        if guided_category is not None:
            bonus = np.array([self.strength if category == guided_category else 0.0
                              for category in target_categories])
            logits = logits + bonus
        logits = logits - logits.max()
        probabilities = np.exp(logits)
        return probabilities / probabilities.sum()

    def guidance_bonus(self, target_categories: Sequence[Optional[int]],
                       guided_category: Optional[int]) -> np.ndarray:
        """The additive logit bonus used when *sampling* the entity action."""
        if guided_category is None:
            return np.zeros(len(target_categories))
        return np.array([self.strength if category == guided_category else 0.0
                         for category in target_categories])

    def kl_guidance_reward(self, base_logits: np.ndarray,
                           target_categories: Sequence[Optional[int]],
                           chosen_category: int,
                           alternative_categories: Sequence[int],
                           category_probabilities: Optional[Sequence[float]] = None) -> float:
        """Partner reward R^pc of Eq. 17-18 for one recommendation step."""
        conditional = self.guided_probabilities(base_logits, target_categories,
                                                chosen_category)
        counterfactuals = [
            self.guided_probabilities(base_logits, target_categories, alternative)
            for alternative in alternative_categories
        ]
        return guidance_reward(conditional, counterfactuals, category_probabilities)
