"""The CADRL model facade: TransE → CGGNN → DARL → beam-search recommendations.

``CADRL.fit`` runs the full pipeline of the paper on a dataset split and the
resulting object answers ``recommend_items`` / ``recommend_paths`` queries in
terms of *dataset* user/item ids, which is what the evaluation harness and the
examples consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..cggnn import CGGNN, CGGNNConfig, CGGNNTrainingConfig, Representations, train_cggnn
from ..data.schema import InteractionDataset, TrainTestSplit
from ..data.splits import train_user_items
from ..embeddings import TransEConfig, train_transe
from ..kg import build_knowledge_graph
from ..rl.trajectory import RecommendationPath
from .collaborative import GuidanceModel
from .inference import InferenceConfig, PathRecommender
from .shared_policy import SharedPolicyNetworks
from .trainer import DARLConfig, DARLTrainer, EpochStats


@dataclass
class CADRLConfig:
    """End-to-end configuration of the CADRL pipeline.

    ``embedding_dim`` and ``seed`` are propagated into every stage so a single
    number controls the model size and reproducibility.  Individual stage
    configurations can still be overridden explicitly.
    """

    embedding_dim: int = 48
    seed: int = 0
    use_cggnn: bool = True            # False => "CADRL w/o CGGNN" (Table IV)
    transe: TransEConfig = field(default_factory=TransEConfig)
    cggnn: CGGNNConfig = field(default_factory=CGGNNConfig)
    cggnn_training: CGGNNTrainingConfig = field(default_factory=CGGNNTrainingConfig)
    darl: DARLConfig = field(default_factory=DARLConfig)
    inference: InferenceConfig = field(default_factory=InferenceConfig)

    def __post_init__(self) -> None:
        self.transe.embedding_dim = self.embedding_dim
        self.transe.seed = self.seed
        self.cggnn.embedding_dim = self.embedding_dim
        self.cggnn.seed = self.seed
        self.cggnn_training.seed = self.seed
        self.darl.seed = self.seed

    @classmethod
    def fast(cls, embedding_dim: int = 32, seed: int = 0, **overrides) -> "CADRLConfig":
        """A configuration tuned for quick experiments on the synthetic presets."""
        config = cls(
            embedding_dim=embedding_dim,
            seed=seed,
            transe=TransEConfig(embedding_dim=embedding_dim, epochs=25, seed=seed),
            cggnn=CGGNNConfig(embedding_dim=embedding_dim, num_ggnn_layers=2,
                              num_category_layers=1, max_neighbors=10, max_categories=4,
                              seed=seed),
            cggnn_training=CGGNNTrainingConfig(epochs=25, learning_rate=3e-3,
                                               negatives_per_positive=2, batch_size=128,
                                               seed=seed),
            darl=DARLConfig(epochs=8, max_path_length=6, hidden_size=32, mlp_hidden=64,
                            max_entity_actions=25, seed=seed),
            inference=InferenceConfig(beam_width=12, expansions_per_beam=3),
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config


class CADRL:
    """Category-Aware Dual-agent Reinforcement Learning recommender."""

    name = "CADRL"

    def __init__(self, config: Optional[CADRLConfig] = None) -> None:
        self.config = config or CADRLConfig()
        self.dataset: Optional[InteractionDataset] = None
        self.builder = None
        self.graph = None
        self.category_graph = None
        self.representations: Optional[Representations] = None
        self.trainer: Optional[DARLTrainer] = None
        self.recommender: Optional[PathRecommender] = None
        self.training_history: List[EpochStats] = []
        self.transe_losses: List[float] = []
        self.cggnn_losses: List[float] = []
        self._train_items: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------ #
    def fit(self, dataset: InteractionDataset, split: TrainTestSplit) -> "CADRL":
        """Run the full training pipeline on the training split."""
        self.dataset = dataset
        self.graph, self.category_graph, self.builder = build_knowledge_graph(
            dataset, split.train)

        transe_model, self.transe_losses = train_transe(self.graph, self.config.transe)

        cggnn = CGGNN(self.graph, transe_model, self.config.cggnn)
        if self.config.use_cggnn:
            self.representations, self.cggnn_losses = train_cggnn(
                self.graph, cggnn, self.config.cggnn_training)
        else:
            self.representations = cggnn.static_representations()
            self.cggnn_losses = []

        self.trainer = DARLTrainer(self.graph, self.category_graph, self.representations,
                                   self.config.darl)
        user_items = self._entity_level_train_items(split)
        self.training_history = self.trainer.train(user_items)
        self._train_items = {user: set(items) for user, items in user_items.items()}

        self.recommender = self._build_recommender(self.trainer.policy)
        return self

    def _build_recommender(self, policy: SharedPolicyNetworks) -> PathRecommender:
        """A fresh beam-search recommender over ``policy`` (no shared caches)."""
        return PathRecommender(
            self.graph, self.category_graph, self.representations, policy,
            guidance=GuidanceModel(strength=self.config.darl.guidance_strength),
            max_path_length=self.config.darl.max_path_length,
            max_entity_actions=self.config.darl.max_entity_actions,
            max_category_actions=self.config.darl.max_category_actions,
            use_dual_agent=self.config.darl.use_dual_agent,
            config=self.config.inference,
        )

    @classmethod
    def from_components(cls, config: CADRLConfig, dataset: InteractionDataset,
                        split: TrainTestSplit, graph, category_graph, builder,
                        representations: Representations,
                        policy: SharedPolicyNetworks,
                        training_history: Optional[List[EpochStats]] = None
                        ) -> "CADRL":
        """Assemble a ready-to-recommend facade from pre-trained components.

        This is the restore path of :mod:`repro.pipeline`: the components come
        from an artifact directory (or another process) instead of a live
        :meth:`fit` call, so ``trainer`` stays ``None`` — everything else
        behaves exactly like a fitted model, including a fresh
        :class:`PathRecommender` with cold caches.
        """
        model = cls(config)
        model.dataset = dataset
        model.graph = graph
        model.category_graph = category_graph
        model.builder = builder
        model.representations = representations
        model.training_history = list(training_history or [])
        user_items = model._entity_level_train_items(split)
        model._train_items = {user: set(items) for user, items in user_items.items()}
        model.recommender = model._build_recommender(policy)
        return model

    def reset_recommender(self) -> None:
        """Replace the recommender with a fresh one (all inference caches cold).

        Timing studies that receive a shared stack (e.g. via
        ``experiments.common.trained_cadrl``) call this so their cold-path
        measurements do not benefit from milestone/action caches warmed by
        earlier consumers.
        """
        self._require_fitted()
        self.recommender = self._build_recommender(self.recommender.policy)

    @property
    def policy(self) -> Optional[SharedPolicyNetworks]:
        """The trained shared policy (from the live trainer or the restore path)."""
        if self.recommender is not None:
            return self.recommender.policy
        if self.trainer is not None:
            return self.trainer.policy
        return None

    def _entity_level_train_items(self, split: TrainTestSplit) -> Dict[int, List[int]]:
        items_by_user = train_user_items(split)
        return {
            self.builder.user_to_entity(user): [self.builder.item_to_entity(item)
                                                for item in items]
            for user, items in items_by_user.items()
        }

    def _require_fitted(self) -> None:
        if self.recommender is None:
            raise RuntimeError("CADRL.fit must be called before recommending")

    # ------------------------------------------------------------------ #
    # recommendation API (dataset-level ids)
    # ------------------------------------------------------------------ #
    def recommend_paths(self, user_id: int, top_k: int = 10) -> List[RecommendationPath]:
        """Top-k recommendations for a dataset user, as explanation paths."""
        self._require_fitted()
        user_entity = self.builder.user_to_entity(user_id)
        exclude = self._train_items.get(user_entity, set())
        return self.recommender.recommend(user_entity, exclude_items=exclude, top_k=top_k)

    def score_items(self, user_id: int) -> np.ndarray:
        """Representation score ``-||u + r_purchase - h_v||²`` for every item.

        Uses the CGGNN-refined item vectors, i.e. the same scoring geometry the
        representation stage was trained with.
        """
        self._require_fitted()
        from ..kg.relations import Relation  # local import to avoid cycle at module load

        user_entity = self.builder.user_to_entity(user_id)
        query = (self.representations.entity_vector(user_entity)
                 + self.representations.relation_vector(Relation.PURCHASE))
        if not hasattr(self, "_item_matrix"):
            item_entities = np.array([self.builder.item_to_entity(item)
                                      for item in range(self.dataset.num_items)])
            self._item_matrix = self.representations.entity[item_entities]
        differences = self._item_matrix - query[None, :]
        return -np.sum(differences * differences, axis=1)

    def recommend_items(self, user_id: int, top_k: int = 10,
                        path_bonus: float = 0.5) -> List[int]:
        """Top-k recommended dataset item ids for a dataset user.

        The ranking fuses two signals, mirroring how PGPR-family systems rank
        candidates: the representation score of every item and a bonus for the
        items the dual-agent policy actually reached (weighted by their path
        probability rank).  ``path_bonus`` is expressed in units of the score's
        standard deviation; setting it to 0 disables the path evidence.
        """
        self._require_fitted()
        scores = self.score_items(user_id).astype(np.float64)
        spread = float(np.std(scores)) or 1.0
        scores = (scores - float(np.mean(scores))) / spread

        if path_bonus > 0.0:
            paths = self.recommend_paths(user_id, top_k)
            for rank, path in enumerate(paths):
                item = self.builder.entity_to_item(path.item_entity)
                if item is None:
                    continue
                scores[item] += path_bonus * (1.0 + 1.0 / (rank + 1.0))

        user_entity = self.builder.user_to_entity(user_id)
        exclude_entities = self._train_items.get(user_entity, set())
        exclude = {self.builder.entity_to_item(entity) for entity in exclude_entities}
        ranked = [int(item) for item in np.argsort(-scores) if int(item) not in exclude]
        return ranked[:top_k]

    def find_paths(self, user_id: int, num_paths: int) -> List[RecommendationPath]:
        """Raw path discovery for the efficiency study (Table III)."""
        self._require_fitted()
        user_entity = self.builder.user_to_entity(user_id)
        return self.recommender.find_paths(user_entity, num_paths)

    # ------------------------------------------------------------------ #
    def describe_path(self, path: RecommendationPath) -> str:
        """Render a path as a human-readable explanation string."""
        self._require_fitted()
        parts = [str(self.graph.entities.get(path.user_entity))]
        for relation, entity in path.hops:
            parts.append(f"--{relation.value}--> {self.graph.entities.get(entity)}")
        return " ".join(parts)
