"""Beam-search inference: from a trained policy to top-k items + explanation paths.

The paper's recommendation protocol searches paths from each user and ranks
the reached items; the path itself is the explanation (Fig. 7).  This module
performs a guided beam search:

* the **category agent** rolls out one greedy milestone trajectory per user —
  a single category-level path, exactly as in training;
* the **entity agent** expands a beam of KG walks, scored by the shared policy
  with the guidance bonus towards the current milestone.

Inference never needs gradients, so it runs on the policy's NumPy fast path;
this is what the efficiency study (Table III) measures.  The search itself is
*vectorised over the whole frontier*: at every depth the candidate actions of
all live beams — across all users of a batch in :meth:`recommend_many` — are
concatenated into one ``(total_candidates, 2 * dim)`` gather from the frozen
representation tables and scored with a single policy-query matmul, instead of
one Python iteration (LSTM step, MLP, sort) per beam.  The scalar reference
implementation this replaced lives on as :class:`repro.perf.reference.
ScalarPathRecommender` and is pinned equal by the equivalence tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from dataclasses import dataclass

from ..cggnn.model import Representations
from ..kg.category_graph import CategoryGraph
from ..kg.graph import KnowledgeGraph
from ..kg.relations import RELATION_LIST, Relation, relation_index
from ..rl.environment import CategoryEnvironment, EntityEnvironment
from ..rl.trajectory import RecommendationPath
from .collaborative import GuidanceModel
from .shared_policy import SharedPolicyNetworks

NumpyLSTMState = Tuple[np.ndarray, np.ndarray]

_SELF_LOOP_INDEX = relation_index(Relation.SELF_LOOP)


@dataclass
class InferenceConfig:
    """Beam-search hyper-parameters."""

    beam_width: int = 20
    expansions_per_beam: int = 3
    top_k: int = 10
    min_path_length: int = 2

    def validate(self) -> None:
        if self.beam_width <= 0 or self.expansions_per_beam <= 0 or self.top_k <= 0:
            raise ValueError("beam-search sizes must be positive")
        if self.min_path_length <= 0:
            raise ValueError("min_path_length must be positive")


#: Compiled inference is used up to this many entities: beyond it the dense
#: per-depth ``(beams, num_entities)`` score table (and the precomputed
#: projection tables themselves) stop paying for themselves and the search
#: falls back to the uncompiled policy calls.
_COMPILED_MAX_ENTITIES = 4096


class _CompiledInference:
    """Frozen-policy inference tables: embeddings pre-multiplied through
    the policy weights.

    Beam search only ever feeds the entity LSTM and the query MLP with rows
    of the (frozen) representation tables, so the input-side matmuls can be
    done once per table instead of once per depth: a step's LSTM gates become
    two row gathers plus the ``hidden @ W_hh`` product, and candidate scoring
    becomes one ``(B, mlp_hidden)`` activation against score tables that
    already absorbed the output projection.  Exactly the same arithmetic as
    :class:`SharedPolicyNetworks`'s numpy fast path, re-associated.
    """

    def __init__(self, policy: SharedPolicyNetworks,
                 representations: Representations) -> None:
        dim = representations.dim
        entity_table = representations.entity
        relation_table = representations.relation

        cell = policy.entity_lstm
        weight_ih = cell.weight_ih.data            # (2*dim + h, 4h)
        self.hidden_size = cell.hidden_size
        self.lstm_relation = relation_table @ weight_ih[:dim]
        self.lstm_entity = entity_table @ weight_ih[dim:2 * dim]
        self.lstm_weight_hh = cell.weight_hh.data
        self.lstm_bias = cell.bias.data

        weight_in = policy.entity_mlp_in.weight.data    # (2*dim + h, m)
        self.query_entity = entity_table @ weight_in[:dim]
        self.query_relation = relation_table @ weight_in[dim:2 * dim]
        self.query_hidden = weight_in[2 * dim:]
        self.query_bias = policy.entity_mlp_in.bias.data

        weight_out = policy.entity_mlp_out.weight.data  # (m, 2*dim)
        bias_out = policy.entity_mlp_out.bias.data
        self.score_relation = weight_out[:, :dim] @ relation_table.T   # (m, R)
        self.score_relation_bias = bias_out[:dim] @ relation_table.T   # (R,)
        self.score_entity = weight_out[:, dim:] @ entity_table.T       # (m, N)
        self.score_entity_bias = bias_out[dim:] @ entity_table.T       # (N,)

    @classmethod
    def fits(cls, representations: Representations) -> bool:
        return representations.entity.shape[0] <= _COMPILED_MAX_ENTITIES

    def lstm_step(self, relation_idx: np.ndarray, entity_idx: np.ndarray,
                  state: NumpyLSTMState) -> Tuple[np.ndarray, NumpyLSTMState]:
        """Batched entity-LSTM step from table rows (partner share is zero
        during inference, exactly as in the uncompiled fast path)."""
        hidden, memory = state
        gates = self.lstm_relation[relation_idx] + self.lstm_entity[entity_idx]
        gates += hidden @ self.lstm_weight_hh
        gates += self.lstm_bias
        h = self.hidden_size
        sigmoid = lambda x: 1.0 / (1.0 + np.exp(-x))  # noqa: E731
        input_gate = sigmoid(gates[..., 0:h])
        forget_gate = sigmoid(gates[..., h:2 * h])
        candidate = np.tanh(gates[..., 2 * h:3 * h])
        output_gate = sigmoid(gates[..., 3 * h:4 * h])
        new_memory = forget_gate * memory + input_gate * candidate
        new_hidden = output_gate * np.tanh(new_memory)
        return new_hidden, (new_hidden, new_memory)

    def score_tables(self, entity_idx: np.ndarray, relation_idx: np.ndarray,
                     hidden: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-beam ``(relation_scores, target_scores)`` dense score tables."""
        pre = self.query_entity[entity_idx] + self.query_relation[relation_idx]
        pre += hidden @ self.query_hidden
        pre += self.query_bias
        np.maximum(pre, 0.0, out=pre)
        relation_scores = pre @ self.score_relation + self.score_relation_bias
        target_scores = pre @ self.score_entity + self.score_entity_bias
        return relation_scores, target_scores


@dataclass
class _Frontier:
    """The live beams of one batched search, in struct-of-arrays form.

    Beams are kept grouped by query slot (ascending), and within one query
    sorted by descending cumulative log-probability — the invariant the
    per-depth pruning re-establishes, matching the scalar implementation's
    per-beam list order.
    """

    query: np.ndarray       # int64 (B,)  — index into the query batch
    entity: np.ndarray      # int64 (B,)  — current entity of each beam
    relation: np.ndarray    # int64 (B,)  — relation index of the last hop
    log_prob: np.ndarray    # float64 (B,)
    hidden: np.ndarray      # float64 (B, hidden_size)
    lstm: NumpyLSTMState    # float64 (B, hidden_size) pair
    hops: List[Tuple[Tuple[Relation, int], ...]]

    def __len__(self) -> int:
        return len(self.entity)


class PathRecommender:
    """Turns a trained policy into ranked recommendations with explanations."""

    def __init__(self, graph: KnowledgeGraph, category_graph: CategoryGraph,
                 representations: Representations, policy: SharedPolicyNetworks,
                 guidance: Optional[GuidanceModel] = None,
                 max_path_length: int = 6, max_entity_actions: int = 50,
                 max_category_actions: int = 10, use_dual_agent: bool = True,
                 config: Optional[InferenceConfig] = None,
                 milestone_cache_limit: int = 16384) -> None:
        self.graph = graph
        self.representations = representations
        self.policy = policy
        self.guidance = guidance or GuidanceModel()
        self.max_path_length = max_path_length
        self.use_dual_agent = use_dual_agent
        self.config = config or InferenceConfig()
        self.config.validate()
        if max_path_length <= 0:
            raise ValueError("max_path_length must be positive")
        if self.config.min_path_length > max_path_length:
            raise ValueError(
                f"min_path_length ({self.config.min_path_length}) cannot exceed "
                f"max_path_length ({max_path_length}); such a configuration can "
                "never emit a recommendation")
        if milestone_cache_limit <= 0:
            raise ValueError("milestone_cache_limit must be positive")
        # Per-user greedy milestone trajectories.  The trajectory only depends
        # on the (frozen) policy and representations, so it is safe to reuse
        # across recommend/find_paths calls; the serving micro-batcher also
        # seeds it with vectorised batch rollouts.  LRU-bounded so a long-lived
        # serving process does not grow it one entry per distinct user forever.
        self.milestone_cache: "OrderedDict[int, List[Optional[int]]]" = OrderedDict()
        self.milestone_cache_limit = milestone_cache_limit
        # Lazily compiled inference tables (policy weights folded through the
        # frozen representation tables); None until first use or when the
        # entity table is too large for the dense tables to pay off.
        self._compiled: Optional[_CompiledInference] = None
        self._compiled_checked = False
        self.entity_environment = EntityEnvironment(graph, representations,
                                                    max_actions=max_entity_actions)
        self.category_environment = CategoryEnvironment(category_graph, graph, representations,
                                                        max_actions=max_category_actions)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def recommend(self, user_entity: int, exclude_items: Optional[Set[int]] = None,
                  top_k: Optional[int] = None) -> List[RecommendationPath]:
        """Top-k recommended items for a user, each with its best explanation path."""
        exclude = exclude_items or set()
        k = top_k or self.config.top_k
        candidates = self.search(user_entity, exclude)
        ranked = sorted(candidates.values(), key=lambda path: path.score, reverse=True)
        return ranked[:k]

    def recommend_many(self, user_entities: Sequence[int],
                       exclude_items: Optional[Dict[int, Set[int]]] = None,
                       top_k: Optional[int] = None) -> Dict[int, List[RecommendationPath]]:
        """Batched :meth:`recommend`: one frontier search across all users.

        Milestone trajectories for users missing from the cache are computed
        with one vectorised batch rollout; the beam searches of all users then
        advance in lock-step, sharing every per-depth policy call.
        """
        exclude_items = exclude_items or {}
        users = list(dict.fromkeys(user_entities))
        k = top_k or self.config.top_k
        self.warm_milestones(users)
        queries = [(user, exclude_items.get(user, set()),
                    self.category_milestones(user)) for user in users]
        found = self._search_frontier(queries, keep_all_paths=False)
        results: Dict[int, List[RecommendationPath]] = {}
        for user, candidates in zip(users, found):
            ranked = sorted(candidates.values(), key=lambda path: path.score,
                            reverse=True)
            results[user] = ranked[:k]
        return results

    def recommend_requests(self, requests: Sequence[Tuple[int, Set[int], int]]
                           ) -> List[List[RecommendationPath]]:
        """Batched searches for ``(user, exclude_items, top_k)`` triples.

        One frontier search per request slot (so the same user may appear
        twice with different exclusions), all advanced in lock-step.  This is
        the entry point the serving facade's micro-batcher drives.
        """
        if not requests:
            return []
        self.warm_milestones([user for user, _, _ in requests])
        queries = [(user, exclude_items, self.category_milestones(user))
                   for user, exclude_items, _ in requests]
        found = self._search_frontier(queries, keep_all_paths=False)
        results: List[List[RecommendationPath]] = []
        for candidates, (_, _, top_k) in zip(found, requests):
            ranked = sorted(candidates.values(), key=lambda path: path.score,
                            reverse=True)
            results.append(ranked[:top_k])
        return results

    def recommend_batch(self, user_entities: Sequence[int],
                        exclude_items: Optional[Dict[int, Set[int]]] = None,
                        top_k: Optional[int] = None) -> Dict[int, List[RecommendationPath]]:
        """Recommendations for many users (used by the evaluation harness)."""
        return self.recommend_many(user_entities, exclude_items, top_k)

    def find_paths(self, user_entity: int, num_paths: int) -> List[RecommendationPath]:
        """Enumerate up to ``num_paths`` item-terminated paths (efficiency metric).

        This is the "path finding" workload of Table III: raw path discovery
        without the top-k ranking step.
        """
        candidates = self.search(user_entity, exclude_items=set(), keep_all_paths=True)
        paths = sorted(candidates.values(), key=lambda path: path.score, reverse=True)
        return paths[:num_paths]

    # ------------------------------------------------------------------ #
    # category milestone trajectory (one per user, greedy)
    # ------------------------------------------------------------------ #
    def category_milestones(self, user_entity: int,
                            refresh: bool = False) -> List[Optional[int]]:
        """Cached greedy milestone trajectory for ``user_entity``.

        The trajectory is deterministic given the frozen policy, so repeated
        searches for the same user (warm-up, batched serving, find_paths after
        recommend) skip the category-agent rollout entirely.
        """
        if refresh or user_entity not in self.milestone_cache:
            self.store_milestones(user_entity, self._category_milestones(user_entity))
        else:
            self.milestone_cache.move_to_end(user_entity)
        return self.milestone_cache[user_entity]

    def store_milestones(self, user_entity: int,
                         milestones: List[Optional[int]]) -> None:
        """Insert one trajectory, evicting least-recently-used beyond the limit."""
        self.milestone_cache[user_entity] = milestones
        self.milestone_cache.move_to_end(user_entity)
        while len(self.milestone_cache) > self.milestone_cache_limit:
            self.milestone_cache.popitem(last=False)

    def clear_milestone_cache(self) -> None:
        """Drop all cached milestone trajectories."""
        self.milestone_cache.clear()

    def warm_milestones(self, user_entities: Sequence[int]) -> int:
        """Batch-compute milestone trajectories for users missing from the cache.

        Returns the number of users actually rolled out; users already cached
        (or duplicated within ``user_entities``) cost nothing.
        """
        missing = [user for user in dict.fromkeys(user_entities)
                   if user not in self.milestone_cache]
        if not missing:
            return 0
        if len(missing) == 1:
            self.category_milestones(missing[0])
            return 1
        for user, milestones in self._batched_category_milestones(missing).items():
            self.store_milestones(user, milestones)
        return len(missing)

    def _category_milestones(self, user_entity: int) -> List[Optional[int]]:
        """Greedy category-level path of length ``max_path_length``."""
        if not self.use_dual_agent:
            return [None] * self.max_path_length
        start = self.category_environment.start_category_for(user_entity)
        state = self.category_environment.initial_state(user_entity, start)
        lstm_state = self.policy.initial_state_numpy()
        hidden, lstm_state = self.policy.encode_category_step_numpy(
            self.representations.category_vector(start), None, lstm_state)
        user_vector = self.representations.entity_vector(user_entity)

        milestones: List[Optional[int]] = []
        for _ in range(self.max_path_length):
            actions = self.category_environment.actions(state)
            action_matrix = self.category_environment.action_matrix(actions)
            logits = self.policy.category_action_logits_numpy(
                user_vector, self.representations.category_vector(state.current_category),
                hidden, action_matrix)
            chosen = actions[int(np.argmax(logits))]
            milestones.append(chosen)
            state = self.category_environment.step(state, chosen)
            hidden, lstm_state = self.policy.encode_category_step_numpy(
                self.representations.category_vector(chosen), hidden, lstm_state)
        return milestones

    def _batched_category_milestones(self, users: Sequence[int]
                                     ) -> Dict[int, List[Optional[int]]]:
        """Greedy milestone trajectories for many users in one vectorised rollout.

        Mirrors :meth:`_category_milestones` step for step, but runs the LSTM
        history encoding and the policy-query MLP for the whole batch at once;
        only the per-user action enumeration and argmax stay in Python (the
        action sets have different sizes per user).
        """
        users = list(dict.fromkeys(users))
        length = self.max_path_length
        if not users:
            return {}
        if not self.use_dual_agent:
            return {user: [None] * length for user in users}

        environment = self.category_environment
        policy = self.policy
        representations = self.representations

        starts = [environment.start_category_for(user) for user in users]
        states = [environment.initial_state(user, start)
                  for user, start in zip(users, starts)]
        lstm_state = policy.initial_state_numpy(batch_size=len(users))
        start_vectors = np.stack([representations.category_vector(s) for s in starts])
        hidden, lstm_state = policy.encode_category_step_numpy(start_vectors, None,
                                                               lstm_state)
        user_vectors = np.stack([representations.entity_vector(u) for u in users])

        milestones: Dict[int, List[Optional[int]]] = {user: [] for user in users}
        for _ in range(length):
            current_vectors = np.stack([
                representations.category_vector(state.current_category)
                for state in states])
            queries = policy.category_query_numpy(user_vectors, current_vectors, hidden)
            chosen: List[int] = []
            for index, state in enumerate(states):
                actions = environment.actions(state)
                logits = environment.action_matrix(actions) @ queries[index]
                category = actions[int(np.argmax(logits))]
                chosen.append(category)
                milestones[users[index]].append(category)
                states[index] = environment.step(state, category)
            chosen_vectors = np.stack([representations.category_vector(c) for c in chosen])
            hidden, lstm_state = policy.encode_category_step_numpy(chosen_vectors, hidden,
                                                                   lstm_state)
        return milestones

    # ------------------------------------------------------------------ #
    # vectorised beam search over the entity-level KG
    # ------------------------------------------------------------------ #
    def search(self, user_entity: int, exclude_items: Set[int],
               keep_all_paths: bool = False,
               milestones: Optional[List[Optional[int]]] = None
               ) -> Dict[int, RecommendationPath]:
        """Single-search core: beam search guided by the milestone trajectory.

        This is the reusable unit the serving micro-batcher drives directly —
        ``milestones`` may be injected (e.g. from a vectorised batch rollout);
        otherwise the per-user cached trajectory is used.
        """
        if milestones is None:
            milestones = self.category_milestones(user_entity)
        return self._search_frontier([(user_entity, exclude_items, milestones)],
                                     keep_all_paths=keep_all_paths)[0]

    def _compiled_inference(self) -> Optional[_CompiledInference]:
        """The compiled inference tables, or ``None`` on oversized graphs."""
        if not self._compiled_checked:
            self._compiled_checked = True
            if _CompiledInference.fits(self.representations):
                self._compiled = _CompiledInference(self.policy, self.representations)
        return self._compiled

    def _initial_frontier(self, queries: Sequence[Tuple[int, Set[int],
                                                        List[Optional[int]]]]
                          ) -> _Frontier:
        """One root beam per query, history seeded with the user self-loop hop."""
        users = np.array([user for user, _, _ in queries], dtype=np.int64)
        batch = len(users)
        relation_indices = np.full(batch, _SELF_LOOP_INDEX, dtype=np.int64)
        compiled = self._compiled_inference()
        if compiled is not None:
            hidden, lstm = compiled.lstm_step(
                relation_indices, users,
                self.policy.initial_state_numpy(batch_size=batch))
        else:
            hidden, lstm = self.policy.encode_entity_step_numpy(
                np.broadcast_to(self.representations.relation[_SELF_LOOP_INDEX],
                                (batch, self.representations.dim)),
                self.representations.entity[users], None,
                self.policy.initial_state_numpy(batch_size=batch))
        return _Frontier(query=np.arange(batch, dtype=np.int64), entity=users,
                         relation=relation_indices,
                         log_prob=np.zeros(batch), hidden=hidden, lstm=lstm,
                         hops=[() for _ in range(batch)])

    def _candidate_actions(self, frontier: _Frontier, users: np.ndarray,
                           guided: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated candidate actions of every live beam.

        Returns ``(relations, targets, beam_of, segment_lengths)`` where the
        first three are parallel arrays over all candidates.  Only the cached
        per-``(entity, milestone)`` array lookups stay in Python; the per-user
        return-to-user ban is one vectorised mask over the concatenation (the
        caches stay user-agnostic).
        """
        action_arrays = self.entity_environment.action_arrays
        beam_count = len(frontier)
        relation_chunks: List[np.ndarray] = []
        target_chunks: List[np.ndarray] = []
        lengths = np.zeros(beam_count, dtype=np.int64)
        entities = frontier.entity.tolist()
        categories = guided.tolist()
        # Per-call memo: a large frontier revisits the same (entity, milestone)
        # pair many times; skip even the LRU bookkeeping for repeats.
        memo: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        for index, key in enumerate(zip(entities, categories)):
            chunk = memo.get(key)
            if chunk is None:
                entity, category = key
                chunk = action_arrays(entity, category if category >= 0 else None)
                memo[key] = chunk
            relation_chunks.append(chunk[0])
            target_chunks.append(chunk[1])
            lengths[index] = len(chunk[1])
        relations = np.concatenate(relation_chunks).astype(np.int64)
        targets = np.concatenate(target_chunks).astype(np.int64)
        beam_of = np.repeat(np.arange(beam_count, dtype=np.int64), lengths)

        # Ban hops back to the query's user (unless the beam sits on the user).
        user_of = users[frontier.query[beam_of]]
        banned = (targets == user_of) & (frontier.entity[beam_of] != user_of)
        if banned.any():
            keep = ~banned
            relations, targets, beam_of = (relations[keep], targets[keep],
                                           beam_of[keep])
            lengths = np.bincount(beam_of, minlength=beam_count)
        return relations, targets, beam_of, lengths

    def _search_frontier(self, queries: Sequence[Tuple[int, Set[int],
                                                       List[Optional[int]]]],
                         keep_all_paths: bool) -> List[Dict[int, RecommendationPath]]:
        """Run all queries' beam searches in lock-step, one score call per depth.

        Each query is ``(user_entity, exclude_items, milestones)``.  Returns
        one ``{key: RecommendationPath}`` dict per query (keyed by item for
        deduplicated search, by running index with ``keep_all_paths``).
        """
        representations = self.representations
        policy = self.policy
        adjacency = self.graph.adjacency()
        compiled = self._compiled_inference()
        strength = self.guidance.strength
        beam_width = self.config.beam_width
        expansions = self.config.expansions_per_beam

        users = np.array([user for user, _, _ in queries], dtype=np.int64)
        # Milestones as ints with -1 standing in for "no guidance".
        guided_by_depth = np.full((self.max_path_length, len(queries)), -1,
                                  dtype=np.int64)
        for slot, (_, _, milestones) in enumerate(queries):
            # Extra trailing entries are ignored, like the scalar search did.
            for depth, milestone in enumerate(milestones[:self.max_path_length]):
                if milestone is not None:
                    guided_by_depth[depth, slot] = milestone

        frontier = self._initial_frontier(queries)
        found: List[Dict[int, RecommendationPath]] = [{} for _ in queries]

        for depth in range(1, self.max_path_length + 1):
            guided = guided_by_depth[depth - 1][frontier.query]
            relations, targets, beam_of, lengths = self._candidate_actions(
                frontier, users, guided)
            if len(targets) == 0:
                break

            # One policy call for every live beam:
            # logits[i] = action_vector(i) · query(beam_of[i]), with the query
            # split into its relation and target halves so every logit is two
            # scalar gathers out of dense per-beam score tables.  With
            # compiled inference the tables come straight out of the folded
            # projection matrices; otherwise the relation half is a dense
            # (B, num_relations) product and the target half is dense up to a
            # size heuristic, falling back to a per-candidate einsum on large
            # graphs where the dense rectangle would not pay for itself.
            if compiled is not None:
                relation_scores, target_scores = compiled.score_tables(
                    frontier.entity, frontier.relation, frontier.hidden)
                logits = (relation_scores[beam_of, relations]
                          + target_scores[beam_of, targets])
            else:
                queries_matrix = policy.entity_query_numpy(
                    representations.entity[frontier.entity],
                    representations.relation[frontier.relation],
                    frontier.hidden)
                dim = representations.dim
                relation_queries = queries_matrix[:, :dim]
                target_queries = queries_matrix[:, dim:]
                relation_scores = relation_queries @ representations.relation.T
                num_entities = representations.entity.shape[0]
                if len(frontier) * num_entities <= 32 * len(targets):
                    target_scores = target_queries @ representations.entity.T
                    logits = (relation_scores[beam_of, relations]
                              + target_scores[beam_of, targets])
                else:
                    logits = (relation_scores[beam_of, relations]
                              + np.einsum("ij,ij->i",
                                          representations.entity[targets],
                                          target_queries[beam_of]))
            guided_of_candidate = guided[beam_of]
            logits = logits + strength * (
                (adjacency.entity_category[targets] == guided_of_candidate)
                & (guided_of_candidate >= 0))

            # Per-beam log-softmax + top expansions on a padded (B, max_len)
            # matrix; padding scores -inf so it never wins.
            starts = np.zeros(len(frontier), dtype=np.int64)
            np.cumsum(lengths[:-1], out=starts[1:])
            columns = np.arange(len(targets), dtype=np.int64) - starts[beam_of]
            padded = np.full((len(frontier), int(lengths.max())), -np.inf)
            padded[beam_of, columns] = logits
            shifted = padded - padded.max(axis=1, keepdims=True)
            log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))

            if log_probs.shape[1] > expansions:
                # Top-e per row: O(n) partition, then sort just the e winners.
                rows = np.arange(len(frontier))[:, None]
                part = np.argpartition(-log_probs, expansions - 1,
                                       axis=1)[:, :expansions]
                order = part[rows, np.argsort(-log_probs[rows, part], axis=1)]
            else:
                order = np.argsort(-log_probs, axis=1)[:, :expansions]
            valid = (order < lengths[:, None]).ravel()
            parent = np.repeat(np.arange(len(frontier), dtype=np.int64),
                               order.shape[1])[valid]
            column = order.ravel()[valid]
            if len(parent) == 0:
                break
            flat = starts[parent] + column
            child_relation = relations[flat]
            child_target = targets[flat]
            child_total = frontier.log_prob[parent] + log_probs[parent, column]
            child_query = frontier.query[parent]

            # Per-query pruning to beam_width: stable sort by (query asc,
            # score desc), then keep each query's first beam_width children.
            ranked = np.lexsort((np.arange(len(child_total)), -child_total,
                                 child_query))
            counts = np.bincount(child_query, minlength=len(queries))
            block_starts = np.zeros(len(queries), dtype=np.int64)
            np.cumsum(counts[:-1], out=block_starts[1:])
            within_block = np.arange(len(ranked)) - block_starts[child_query[ranked]]
            keep = ranked[within_block < beam_width]

            survivors_parent = parent[keep]
            hops = [frontier.hops[p] + ((RELATION_LIST[r], int(t)),)
                    for p, r, t in zip(survivors_parent.tolist(),
                                       child_relation[keep].tolist(),
                                       child_target[keep].tolist())]
            if depth < self.max_path_length:
                # Advance the history encoder for the surviving beams; at the
                # final depth the hidden states are never read again, so the
                # (batched) LSTM step is skipped outright.
                parent_state = (frontier.lstm[0][survivors_parent],
                                frontier.lstm[1][survivors_parent])
                if compiled is not None:
                    hidden, lstm = compiled.lstm_step(
                        child_relation[keep], child_target[keep], parent_state)
                else:
                    hidden, lstm = policy.encode_entity_step_numpy(
                        representations.relation[child_relation[keep]],
                        representations.entity[child_target[keep]], None,
                        parent_state)
            else:
                hidden, lstm = frontier.hidden, frontier.lstm
            frontier = _Frontier(query=child_query[keep],
                                 entity=child_target[keep],
                                 relation=child_relation[keep],
                                 log_prob=child_total[keep],
                                 hidden=hidden, lstm=lstm, hops=hops)

            if depth >= self.config.min_path_length:
                self._collect(frontier, queries, adjacency, found, keep_all_paths)
        return found

    def _collect(self, frontier: _Frontier,
                 queries: Sequence[Tuple[int, Set[int], List[Optional[int]]]],
                 adjacency, found: List[Dict[int, RecommendationPath]],
                 keep_all_paths: bool) -> None:
        """Record every beam whose endpoint is a recommendable item."""
        is_item = adjacency.is_item[frontier.entity]
        for index in np.flatnonzero(is_item).tolist():
            slot = int(frontier.query[index])
            entity = int(frontier.entity[index])
            user, exclude_items, _ = queries[slot]
            if entity in exclude_items:
                continue
            score = float(frontier.log_prob[index])
            bucket = found[slot]
            key = entity if not keep_all_paths else len(bucket)
            existing = bucket.get(key)
            if existing is not None and score <= existing.score:
                continue
            bucket[key] = RecommendationPath(user_entity=int(user),
                                             item_entity=entity,
                                             hops=frontier.hops[index],
                                             score=score)
