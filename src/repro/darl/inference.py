"""Beam-search inference: from a trained policy to top-k items + explanation paths.

The paper's recommendation protocol searches paths from each user and ranks
the reached items; the path itself is the explanation (Fig. 7).  This module
performs a guided beam search:

* the **category agent** rolls out one greedy milestone trajectory per user —
  a single category-level path, exactly as in training;
* the **entity agent** expands a beam of KG walks, scored by the shared policy
  with the guidance bonus towards the current milestone.

Inference never needs gradients, so it runs on the policy's NumPy fast path;
this is what the efficiency study (Table III) measures.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..cggnn.model import Representations
from ..kg.category_graph import CategoryGraph
from ..kg.graph import KnowledgeGraph
from ..kg.relations import Relation
from ..rl.environment import CategoryEnvironment, CategoryState, EntityEnvironment, EntityState
from ..rl.trajectory import RecommendationPath
from .collaborative import GuidanceModel, action_target_categories
from .shared_policy import SharedPolicyNetworks

NumpyLSTMState = Tuple[np.ndarray, np.ndarray]


@dataclass
class InferenceConfig:
    """Beam-search hyper-parameters."""

    beam_width: int = 20
    expansions_per_beam: int = 3
    top_k: int = 10
    min_path_length: int = 2

    def validate(self) -> None:
        if self.beam_width <= 0 or self.expansions_per_beam <= 0 or self.top_k <= 0:
            raise ValueError("beam-search sizes must be positive")
        if self.min_path_length <= 0:
            raise ValueError("min_path_length must be positive")


@dataclass
class _Beam:
    """Internal beam-search state (one partial entity-agent walk)."""

    entity_state: EntityState
    entity_hidden: np.ndarray
    entity_lstm: NumpyLSTMState
    last_relation: Relation
    log_prob: float
    hops: Tuple[Tuple[Relation, int], ...] = ()


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    return shifted - np.log(np.exp(shifted).sum())


class PathRecommender:
    """Turns a trained policy into ranked recommendations with explanations."""

    def __init__(self, graph: KnowledgeGraph, category_graph: CategoryGraph,
                 representations: Representations, policy: SharedPolicyNetworks,
                 guidance: Optional[GuidanceModel] = None,
                 max_path_length: int = 6, max_entity_actions: int = 50,
                 max_category_actions: int = 10, use_dual_agent: bool = True,
                 config: Optional[InferenceConfig] = None,
                 milestone_cache_limit: int = 16384) -> None:
        self.graph = graph
        self.representations = representations
        self.policy = policy
        self.guidance = guidance or GuidanceModel()
        self.max_path_length = max_path_length
        self.use_dual_agent = use_dual_agent
        self.config = config or InferenceConfig()
        self.config.validate()
        if max_path_length <= 0:
            raise ValueError("max_path_length must be positive")
        if self.config.min_path_length > max_path_length:
            raise ValueError(
                f"min_path_length ({self.config.min_path_length}) cannot exceed "
                f"max_path_length ({max_path_length}); such a configuration can "
                "never emit a recommendation")
        if milestone_cache_limit <= 0:
            raise ValueError("milestone_cache_limit must be positive")
        # Per-user greedy milestone trajectories.  The trajectory only depends
        # on the (frozen) policy and representations, so it is safe to reuse
        # across recommend/find_paths calls; the serving micro-batcher also
        # seeds it with vectorised batch rollouts.  LRU-bounded so a long-lived
        # serving process does not grow it one entry per distinct user forever.
        self.milestone_cache: "OrderedDict[int, List[Optional[int]]]" = OrderedDict()
        self.milestone_cache_limit = milestone_cache_limit
        self.entity_environment = EntityEnvironment(graph, representations,
                                                    max_actions=max_entity_actions)
        self.category_environment = CategoryEnvironment(category_graph, graph, representations,
                                                        max_actions=max_category_actions)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def recommend(self, user_entity: int, exclude_items: Optional[Set[int]] = None,
                  top_k: Optional[int] = None) -> List[RecommendationPath]:
        """Top-k recommended items for a user, each with its best explanation path."""
        exclude = exclude_items or set()
        k = top_k or self.config.top_k
        candidates = self.search(user_entity, exclude)
        ranked = sorted(candidates.values(), key=lambda path: path.score, reverse=True)
        return ranked[:k]

    def recommend_batch(self, user_entities: Sequence[int],
                        exclude_items: Optional[Dict[int, Set[int]]] = None,
                        top_k: Optional[int] = None) -> Dict[int, List[RecommendationPath]]:
        """Recommendations for many users (used by the evaluation harness)."""
        exclude_items = exclude_items or {}
        return {
            user: self.recommend(user, exclude_items.get(user, set()), top_k)
            for user in user_entities
        }

    def find_paths(self, user_entity: int, num_paths: int) -> List[RecommendationPath]:
        """Enumerate up to ``num_paths`` item-terminated paths (efficiency metric).

        This is the "path finding" workload of Table III: raw path discovery
        without the top-k ranking step.
        """
        candidates = self.search(user_entity, exclude_items=set(), keep_all_paths=True)
        paths = sorted(candidates.values(), key=lambda path: path.score, reverse=True)
        return paths[:num_paths]

    # ------------------------------------------------------------------ #
    # category milestone trajectory (one per user, greedy)
    # ------------------------------------------------------------------ #
    def category_milestones(self, user_entity: int,
                            refresh: bool = False) -> List[Optional[int]]:
        """Cached greedy milestone trajectory for ``user_entity``.

        The trajectory is deterministic given the frozen policy, so repeated
        searches for the same user (warm-up, batched serving, find_paths after
        recommend) skip the category-agent rollout entirely.
        """
        if refresh or user_entity not in self.milestone_cache:
            self.store_milestones(user_entity, self._category_milestones(user_entity))
        else:
            self.milestone_cache.move_to_end(user_entity)
        return self.milestone_cache[user_entity]

    def store_milestones(self, user_entity: int,
                         milestones: List[Optional[int]]) -> None:
        """Insert one trajectory, evicting least-recently-used beyond the limit."""
        self.milestone_cache[user_entity] = milestones
        self.milestone_cache.move_to_end(user_entity)
        while len(self.milestone_cache) > self.milestone_cache_limit:
            self.milestone_cache.popitem(last=False)

    def clear_milestone_cache(self) -> None:
        """Drop all cached milestone trajectories."""
        self.milestone_cache.clear()

    def _category_milestones(self, user_entity: int) -> List[Optional[int]]:
        """Greedy category-level path of length ``max_path_length``."""
        if not self.use_dual_agent:
            return [None] * self.max_path_length
        start = self.category_environment.start_category_for(user_entity)
        state = self.category_environment.initial_state(user_entity, start)
        lstm_state = self.policy.initial_state_numpy()
        hidden, lstm_state = self.policy.encode_category_step_numpy(
            self.representations.category_vector(start), None, lstm_state)
        user_vector = self.representations.entity_vector(user_entity)

        milestones: List[Optional[int]] = []
        for _ in range(self.max_path_length):
            actions = self.category_environment.actions(state)
            action_matrix = self.category_environment.action_matrix(actions)
            logits = self.policy.category_action_logits_numpy(
                user_vector, self.representations.category_vector(state.current_category),
                hidden, action_matrix)
            chosen = actions[int(np.argmax(logits))]
            milestones.append(chosen)
            state = self.category_environment.step(state, chosen)
            hidden, lstm_state = self.policy.encode_category_step_numpy(
                self.representations.category_vector(chosen), hidden, lstm_state)
        return milestones

    # ------------------------------------------------------------------ #
    # beam search over the entity-level KG
    # ------------------------------------------------------------------ #
    def search(self, user_entity: int, exclude_items: Set[int],
               keep_all_paths: bool = False,
               milestones: Optional[List[Optional[int]]] = None
               ) -> Dict[int, RecommendationPath]:
        """Single-search core: beam search guided by the milestone trajectory.

        This is the reusable unit the serving micro-batcher drives directly —
        ``milestones`` may be injected (e.g. from a vectorised batch rollout);
        otherwise the per-user cached trajectory is used.
        """
        if milestones is None:
            milestones = self.category_milestones(user_entity)
        beams = [self._initial_beam(user_entity)]
        found: Dict[int, RecommendationPath] = {}

        for depth in range(1, self.max_path_length + 1):
            guided_category = milestones[depth - 1]
            expansions: List[_Beam] = []
            for beam in beams:
                expansions.extend(self._expand(beam, guided_category))
            if not expansions:
                break
            expansions.sort(key=lambda candidate: candidate.log_prob, reverse=True)
            survivors = expansions[: self.config.beam_width]
            beams = [self._advance_history(beam) for beam in survivors]

            if depth >= self.config.min_path_length:
                for beam in beams:
                    self._collect(beam, user_entity, exclude_items, found, keep_all_paths)
        return found

    def _initial_beam(self, user_entity: int) -> _Beam:
        entity_state = self.entity_environment.initial_state(user_entity)
        lstm_state = self.policy.initial_state_numpy()
        hidden, lstm_state = self.policy.encode_entity_step_numpy(
            self.representations.relation_vector(Relation.SELF_LOOP),
            self.representations.entity_vector(user_entity), None, lstm_state)
        return _Beam(entity_state=entity_state, entity_hidden=hidden, entity_lstm=lstm_state,
                     last_relation=Relation.SELF_LOOP, log_prob=0.0)

    def _expand(self, beam: _Beam, guided_category: Optional[int]) -> List[_Beam]:
        """Generate the highest-probability child beams of ``beam``."""
        actions = self.entity_environment.actions(beam.entity_state,
                                                  target_category=guided_category)
        if not actions:
            return []
        # Cache per (entity, milestone, user): the same entities are revisited by
        # many beams and depths during one user's search.
        cache_key = (beam.entity_state.current_entity, guided_category,
                     beam.entity_state.user_entity)
        action_matrix = self.entity_environment.action_matrix(actions, cache_key=cache_key)
        logits = self.policy.entity_action_logits_numpy(
            self.representations.entity_vector(beam.entity_state.current_entity),
            self.representations.relation_vector(beam.last_relation),
            beam.entity_hidden, action_matrix)
        categories = action_target_categories(self.graph, actions)
        logits = logits + self.guidance.guidance_bonus(categories, guided_category)
        log_probs = _log_softmax(logits)

        order = np.argsort(-log_probs)[: self.config.expansions_per_beam]
        children: List[_Beam] = []
        for index in order:
            relation, target = actions[index]
            children.append(replace(
                beam,
                entity_state=self.entity_environment.step(beam.entity_state, actions[index]),
                last_relation=relation,
                log_prob=beam.log_prob + float(log_probs[index]),
                hops=beam.hops + ((relation, target),),
            ))
        return children

    def _advance_history(self, beam: _Beam) -> _Beam:
        """Update the entity history encoder for a surviving beam."""
        relation, target = beam.hops[-1]
        hidden, lstm_state = self.policy.encode_entity_step_numpy(
            self.representations.relation_vector(relation),
            self.representations.entity_vector(target),
            None, beam.entity_lstm)
        return replace(beam, entity_hidden=hidden, entity_lstm=lstm_state)

    def _collect(self, beam: _Beam, user_entity: int, exclude_items: Set[int],
                 found: Dict[int, RecommendationPath], keep_all_paths: bool) -> None:
        """Record the beam's endpoint if it is a recommendable item."""
        entity = beam.entity_state.current_entity
        if not self.entity_environment.is_item(entity):
            return
        if entity in exclude_items:
            return
        path = RecommendationPath(user_entity=user_entity, item_entity=entity,
                                  hops=beam.hops, score=beam.log_prob)
        key = entity if not keep_all_paths else len(found)
        existing = found.get(key)
        if existing is None or path.score > existing.score:
            found[key] = path
