"""Dataset presets mirroring the three Amazon benchmarks at reduced scale.

Table II of the paper reports the statistics of Beauty, Cell Phones and
Clothing.  The presets below keep the *relative* characteristics that drive
the experimental conclusions while staying small enough to train on a laptop:

* Clothing has by far the most categories per item (≈19 items/category in the
  paper vs. ≈49–51 for the other two), which is why CADRL's improvement is
  smallest there — the ``clothing`` preset keeps that sparsity.
* Cell Phones has the fewest triplets per entity; Beauty the most interactions
  per user.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Optional

from .schema import InteractionDataset
from .synthetic import SyntheticConfig, SyntheticDataset, generate

_PRESETS: Dict[str, SyntheticConfig] = {
    "beauty": SyntheticConfig(
        name="beauty",
        num_users=120,
        num_items=240,
        num_brands=30,
        num_features=60,
        num_categories=8,
        num_clusters=4,
        interactions_per_user=(7, 14),
        item_relation_degree=(3, 7),
        cross_category_ratio=0.45,
        seed=11,
    ),
    "cellphones": SyntheticConfig(
        name="cellphones",
        num_users=110,
        num_items=200,
        num_brands=24,
        num_features=50,
        num_categories=6,
        num_clusters=3,
        interactions_per_user=(6, 12),
        item_relation_degree=(2, 6),
        cross_category_ratio=0.40,
        seed=23,
    ),
    "clothing": SyntheticConfig(
        name="clothing",
        num_users=140,
        num_items=280,
        num_brands=36,
        num_features=70,
        num_categories=28,
        num_clusters=7,
        interactions_per_user=(6, 12),
        item_relation_degree=(2, 6),
        cross_category_ratio=0.50,
        seed=37,
    ),
}

DATASET_NAMES: List[str] = list(_PRESETS)


def available_datasets() -> List[str]:
    """Names of the built-in dataset presets."""
    return list(_PRESETS)


def preset_config(name: str) -> SyntheticConfig:
    """Return a copy of the preset configuration for ``name``."""
    if name not in _PRESETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_PRESETS)}")
    return replace(_PRESETS[name])


def _derive_seed(preset_seed: int, seed: int) -> int:
    """Mix a user seed with the preset's seed into a new deterministic stream.

    The mix keeps distinct presets on distinct streams for the same user seed
    (``load_dataset("beauty", seed=7)`` ≠ ``load_dataset("cellphones",
    seed=7)``) and is a pure function of its inputs, so a dataset generated
    with ``(name, scale, seed)`` is bit-identical across processes — the
    property the pipeline's fingerprint cache and the 70/30 split protocol
    rely on.
    """
    return (preset_seed * 0x9E3779B1 + seed + 1) % (2 ** 32)


def load_dataset(name: str, scale: float = 1.0,
                 seed: Optional[int] = None) -> SyntheticDataset:
    """Generate a preset dataset, optionally rescaled.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    scale:
        Multiplier applied to the user/item/interaction counts.  ``scale=0.5``
        yields a dataset half the preset size — handy for fast tests; larger
        values stress the efficiency experiments.  Must be a positive finite
        number.
    seed:
        ``None`` keeps the preset's canonical RNG stream.  An explicit
        non-negative seed derives a new deterministic stream per preset (see
        :func:`_derive_seed`), so alternate dataset draws stay reproducible
        and split-compatible across processes.
    """
    config = preset_config(name)
    if isinstance(scale, bool) or not isinstance(scale, (int, float)):
        raise ValueError(f"scale must be a positive finite number, got {scale!r}")
    scale = float(scale)
    if not math.isfinite(scale) or scale <= 0:
        raise ValueError(f"scale must be a positive finite number, got {scale!r}")
    if seed is not None:
        if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise ValueError(f"seed must be a non-negative integer or None, got {seed!r}")
    if scale != 1.0:
        config = replace(
            config,
            num_users=max(10, int(config.num_users * scale)),
            num_items=max(20, int(config.num_items * scale)),
            num_brands=max(5, int(config.num_brands * scale)),
            num_features=max(10, int(config.num_features * scale)),
            num_categories=max(3, int(config.num_categories * min(scale, 1.0) + 0.5)),
        )
        if config.num_clusters > config.num_categories:
            config = replace(config, num_clusters=config.num_categories)
    if seed is not None:
        config = replace(config, seed=_derive_seed(config.seed, seed))
    return generate(config)


def dataset_statistics(dataset: InteractionDataset) -> Dict[str, float]:
    """Statistics corresponding to the rows of Table II."""
    return {
        "users": dataset.num_users,
        "items": dataset.num_items,
        "interactions": dataset.num_interactions,
        "brands": dataset.num_brands,
        "features": dataset.num_features,
        "categories": dataset.num_categories,
        "items_per_category": dataset.num_items / max(1, dataset.num_categories),
    }
