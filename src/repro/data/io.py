"""TSV persistence for interaction datasets.

Real deployments would load the Amazon review dumps; this module writes and
reads the same logical content (products, interactions, item relations) as
plain tab-separated files so experiments can be checkpointed and shared.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Union

from .schema import Interaction, InteractionDataset, ItemRelation, Product

PathLike = Union[str, Path]


def save_dataset(dataset: InteractionDataset, directory: PathLike) -> None:
    """Write a dataset to ``directory`` as TSV files plus a meta.json."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    meta = {
        "name": dataset.name,
        "num_users": dataset.num_users,
        "brand_names": dataset.brand_names,
        "feature_names": dataset.feature_names,
        "category_names": dataset.category_names,
    }
    (path / "meta.json").write_text(json.dumps(meta, indent=2))

    with open(path / "products.tsv", "w", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t")
        writer.writerow(["item_id", "name", "brand_id", "category_id", "feature_ids"])
        for product in dataset.products:
            writer.writerow([product.item_id, product.name, product.brand_id,
                             product.category_id,
                             ",".join(str(f) for f in product.feature_ids)])

    with open(path / "interactions.tsv", "w", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t")
        writer.writerow(["user_id", "item_id", "mentioned_feature_ids"])
        for interaction in dataset.interactions:
            writer.writerow([interaction.user_id, interaction.item_id,
                             ",".join(str(f) for f in interaction.mentioned_feature_ids)])

    with open(path / "item_relations.tsv", "w", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t")
        writer.writerow(["source_item_id", "target_item_id", "relation"])
        for relation in dataset.item_relations:
            writer.writerow([relation.source_item_id, relation.target_item_id,
                             relation.relation])


def load_dataset_from_directory(directory: PathLike) -> InteractionDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    path = Path(directory)
    meta = json.loads((path / "meta.json").read_text())

    products: List[Product] = []
    with open(path / "products.tsv", newline="") as handle:
        reader = csv.DictReader(handle, delimiter="\t")
        for row in reader:
            feature_ids = tuple(int(f) for f in row["feature_ids"].split(",") if f)
            products.append(Product(
                item_id=int(row["item_id"]),
                name=row["name"],
                brand_id=int(row["brand_id"]),
                category_id=int(row["category_id"]),
                feature_ids=feature_ids,
            ))

    interactions: List[Interaction] = []
    with open(path / "interactions.tsv", newline="") as handle:
        reader = csv.DictReader(handle, delimiter="\t")
        for row in reader:
            mentioned = tuple(int(f) for f in row["mentioned_feature_ids"].split(",") if f)
            interactions.append(Interaction(
                user_id=int(row["user_id"]),
                item_id=int(row["item_id"]),
                mentioned_feature_ids=mentioned,
            ))

    item_relations: List[ItemRelation] = []
    with open(path / "item_relations.tsv", newline="") as handle:
        reader = csv.DictReader(handle, delimiter="\t")
        for row in reader:
            item_relations.append(ItemRelation(
                source_item_id=int(row["source_item_id"]),
                target_item_id=int(row["target_item_id"]),
                relation=row["relation"],
            ))

    dataset = InteractionDataset(
        name=meta["name"],
        num_users=int(meta["num_users"]),
        products=products,
        interactions=interactions,
        item_relations=item_relations,
        brand_names=list(meta["brand_names"]),
        feature_names=list(meta["feature_names"]),
        category_names=list(meta["category_names"]),
    )
    dataset.validate()
    return dataset
