"""Train/test splitting of interaction logs.

The paper randomly selects 70% of each user's purchases for training and holds
out the remaining 30% for testing (Section V-A.1).  The split is per-user so
every user keeps at least one training anchor; users with a single purchase
contribute it to training only.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

import numpy as np

from .schema import Interaction, InteractionDataset, TrainTestSplit


def split_interactions(dataset: InteractionDataset, train_fraction: float = 0.7,
                       seed: int = 0) -> TrainTestSplit:
    """Split each user's interactions into train/test portions.

    Parameters
    ----------
    dataset:
        The full interaction log.
    train_fraction:
        Fraction of each user's purchases kept for training (default 0.7).
    seed:
        Seed of the shuffling RNG; the split is deterministic per seed.
    """
    if not (0.0 < train_fraction < 1.0):
        raise ValueError("train_fraction must lie strictly between 0 and 1")
    rng = np.random.default_rng(seed)

    per_user: Dict[int, List[Interaction]] = defaultdict(list)
    for interaction in dataset.interactions:
        per_user[interaction.user_id].append(interaction)

    train: List[Interaction] = []
    test: List[Interaction] = []
    for user_id in sorted(per_user):
        interactions = list(per_user[user_id])
        rng.shuffle(interactions)
        if len(interactions) == 1:
            train.extend(interactions)
            continue
        cut = max(1, int(round(train_fraction * len(interactions))))
        cut = min(cut, len(interactions) - 1)  # always keep at least one test item
        train.extend(interactions[:cut])
        test.extend(interactions[cut:])
    return TrainTestSplit(train=train, test=test)


def train_user_items(split: TrainTestSplit) -> Dict[int, List[int]]:
    """Map user → training items (deduplicated, order-preserving)."""
    result: Dict[int, List[int]] = defaultdict(list)
    for interaction in split.train:
        if interaction.item_id not in result[interaction.user_id]:
            result[interaction.user_id].append(interaction.item_id)
    return dict(result)


def test_user_items(split: TrainTestSplit) -> Dict[int, List[int]]:
    """Map user → held-out test items (deduplicated, order-preserving)."""
    result: Dict[int, List[int]] = defaultdict(list)
    for interaction in split.test:
        if interaction.item_id not in result[interaction.user_id]:
            result[interaction.user_id].append(interaction.item_id)
    return dict(result)
