"""Dataset substrate: schema, synthetic generator, presets, splits and I/O."""

from .datasets import (
    DATASET_NAMES,
    available_datasets,
    dataset_statistics,
    load_dataset,
    preset_config,
)
from .io import load_dataset_from_directory, save_dataset
from .schema import Interaction, InteractionDataset, ItemRelation, Product, TrainTestSplit
from .splits import split_interactions, test_user_items, train_user_items
from .synthetic import SyntheticConfig, SyntheticDataset, generate

__all__ = [
    "DATASET_NAMES",
    "Interaction",
    "InteractionDataset",
    "ItemRelation",
    "Product",
    "SyntheticConfig",
    "SyntheticDataset",
    "TrainTestSplit",
    "available_datasets",
    "dataset_statistics",
    "generate",
    "load_dataset",
    "load_dataset_from_directory",
    "preset_config",
    "save_dataset",
    "split_interactions",
    "test_user_items",
    "train_user_items",
]
