"""Dataset record types shared by the generator, loaders and KG builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class Product:
    """Catalogue entry for one item.

    Attributes
    ----------
    item_id:
        Dataset-local item index (0-based).
    name:
        Human-readable title used in explanation paths.
    brand_id:
        Index into the brand vocabulary.
    category_id:
        Index into the category vocabulary (Amazon metadata category label).
    feature_ids:
        Review/description features attached to this product.
    """

    item_id: int
    name: str
    brand_id: int
    category_id: int
    feature_ids: Sequence[int] = field(default_factory=tuple)


@dataclass(frozen=True)
class Interaction:
    """One user-item purchase, optionally with mentioned review features."""

    user_id: int
    item_id: int
    mentioned_feature_ids: Sequence[int] = field(default_factory=tuple)


@dataclass(frozen=True)
class ItemRelation:
    """An item-item co-occurrence edge from the catalogue metadata."""

    source_item_id: int
    target_item_id: int
    relation: str  # "also_bought" | "also_viewed" | "bought_together"


@dataclass
class InteractionDataset:
    """A complete dataset: catalogue, vocabulary sizes and interaction log."""

    name: str
    num_users: int
    products: List[Product]
    interactions: List[Interaction]
    item_relations: List[ItemRelation]
    brand_names: List[str]
    feature_names: List[str]
    category_names: List[str]

    @property
    def num_items(self) -> int:
        return len(self.products)

    @property
    def num_brands(self) -> int:
        return len(self.brand_names)

    @property
    def num_features(self) -> int:
        return len(self.feature_names)

    @property
    def num_categories(self) -> int:
        return len(self.category_names)

    @property
    def num_interactions(self) -> int:
        return len(self.interactions)

    def user_histories(self) -> Dict[int, List[int]]:
        """Map each user to the list of purchased item ids (in log order)."""
        histories: Dict[int, List[int]] = {user: [] for user in range(self.num_users)}
        for interaction in self.interactions:
            histories[interaction.user_id].append(interaction.item_id)
        return histories

    def validate(self) -> None:
        """Raise ``ValueError`` on dangling references; used by loaders and tests."""
        for product in self.products:
            if not (0 <= product.brand_id < self.num_brands):
                raise ValueError(f"product {product.item_id} references unknown brand")
            if not (0 <= product.category_id < self.num_categories):
                raise ValueError(f"product {product.item_id} references unknown category")
            for feature in product.feature_ids:
                if not (0 <= feature < self.num_features):
                    raise ValueError(f"product {product.item_id} references unknown feature")
        for interaction in self.interactions:
            if not (0 <= interaction.user_id < self.num_users):
                raise ValueError("interaction references unknown user")
            if not (0 <= interaction.item_id < self.num_items):
                raise ValueError("interaction references unknown item")
            for feature in interaction.mentioned_feature_ids:
                if not (0 <= feature < self.num_features):
                    raise ValueError("interaction references unknown feature")
        for relation in self.item_relations:
            if relation.relation not in ("also_bought", "also_viewed", "bought_together"):
                raise ValueError(f"unknown item relation {relation.relation!r}")
            for item in (relation.source_item_id, relation.target_item_id):
                if not (0 <= item < self.num_items):
                    raise ValueError("item relation references unknown item")


@dataclass
class TrainTestSplit:
    """70/30 per-user split of interactions (the protocol of Section V-A)."""

    train: List[Interaction]
    test: List[Interaction]

    def train_items_of(self, user_id: int) -> List[int]:
        return [i.item_id for i in self.train if i.user_id == user_id]

    def test_items_of(self, user_id: int) -> List[int]:
        return [i.item_id for i in self.test if i.user_id == user_id]
