"""Synthetic Amazon-style interaction data.

The paper evaluates on the Amazon Beauty, Cell Phones and Clothing review
datasets.  Those corpora cannot be downloaded in this environment, so this
module generates datasets with the same *structure*: users, items, brands and
review features; category metadata per item; purchase logs with strong
preference locality; and the three item-item co-occurrence relations
(also_bought, also_viewed, bought_together).

The generator plants the regularities the paper's claims rest on:

* **Interest clusters** — each cluster spans a handful of categories and each
  user shops mostly inside one or two clusters, so users who bought similar
  things will buy similar things again.  This is what makes multi-hop paths
  (user → item → also_bought → item …) predictive.
* **Cross-category structure** — ``also_viewed``/``also_bought`` edges cross
  category boundaries *within* a cluster.  Reaching a held-out item therefore
  often requires more than three hops, which is exactly the regime where the
  category agent's guidance pays off (Fig. 5).
* **Category sparsity knob** — presets control items-per-category so the
  Clothing-style "many sparse categories" effect (RQ1 discussion) is
  reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .schema import Interaction, InteractionDataset, ItemRelation, Product


@dataclass
class SyntheticConfig:
    """Knobs of the synthetic dataset generator."""

    name: str = "synthetic"
    num_users: int = 120
    num_items: int = 240
    num_brands: int = 30
    num_features: int = 60
    num_categories: int = 8
    num_clusters: int = 4
    interactions_per_user: Tuple[int, int] = (6, 14)
    features_per_item: Tuple[int, int] = (2, 5)
    item_relation_degree: Tuple[int, int] = (2, 6)
    cross_category_ratio: float = 0.45
    preference_noise: float = 0.12
    popularity_exponent: float = 0.8
    seed: int = 0

    def validate(self) -> None:
        if self.num_users <= 0 or self.num_items <= 0:
            raise ValueError("need at least one user and one item")
        if self.num_categories <= 0 or self.num_clusters <= 0:
            raise ValueError("need at least one category and one cluster")
        if self.num_clusters > self.num_categories:
            raise ValueError("cannot have more clusters than categories")
        if not (0.0 <= self.cross_category_ratio <= 1.0):
            raise ValueError("cross_category_ratio must lie in [0, 1]")
        if not (0.0 <= self.preference_noise <= 1.0):
            raise ValueError("preference_noise must lie in [0, 1]")


@dataclass
class SyntheticDataset(InteractionDataset):
    """An :class:`InteractionDataset` that also exposes its generative structure.

    ``item_cluster`` and ``user_clusters`` are kept for tests and analyses
    (e.g. verifying that preference locality is present); models never see
    them.
    """

    item_cluster: Dict[int, int] = field(default_factory=dict)
    user_clusters: Dict[int, List[int]] = field(default_factory=dict)
    category_cluster: Dict[int, int] = field(default_factory=dict)


def generate(config: SyntheticConfig) -> SyntheticDataset:
    """Generate a dataset according to ``config`` (deterministic per seed)."""
    config.validate()
    rng = np.random.default_rng(config.seed)

    category_cluster = _assign_categories_to_clusters(config, rng)
    products, item_cluster = _generate_products(config, category_cluster, rng)
    interactions, user_clusters = _generate_interactions(config, products, item_cluster, rng)
    item_relations = _generate_item_relations(config, products, item_cluster, rng)

    dataset = SyntheticDataset(
        name=config.name,
        num_users=config.num_users,
        products=products,
        interactions=interactions,
        item_relations=item_relations,
        brand_names=[f"brand_{i}" for i in range(config.num_brands)],
        feature_names=[f"feature_{i}" for i in range(config.num_features)],
        category_names=[f"category_{i}" for i in range(config.num_categories)],
        item_cluster=item_cluster,
        user_clusters=user_clusters,
        category_cluster=category_cluster,
    )
    dataset.validate()
    return dataset


# --------------------------------------------------------------------------- #
# generation stages
# --------------------------------------------------------------------------- #
def _assign_categories_to_clusters(config: SyntheticConfig,
                                   rng: np.random.Generator) -> Dict[int, int]:
    """Partition the categories into interest clusters (round-robin, shuffled)."""
    order = rng.permutation(config.num_categories)
    return {int(category): int(i % config.num_clusters) for i, category in enumerate(order)}


def _generate_products(config: SyntheticConfig, category_cluster: Dict[int, int],
                       rng: np.random.Generator
                       ) -> Tuple[List[Product], Dict[int, int]]:
    """Create the item catalogue with category-correlated brands and features."""
    products: List[Product] = []
    item_cluster: Dict[int, int] = {}
    # Each category gets a small pool of "house" brands and features so that
    # brand/feature hops carry category signal (as in the real metadata).
    brands_per_category = _partition_vocabulary(config.num_brands, config.num_categories, rng)
    features_per_category = _partition_vocabulary(config.num_features, config.num_categories, rng)

    for item_id in range(config.num_items):
        category = int(item_id % config.num_categories)
        cluster = category_cluster[category]
        brand_pool = brands_per_category[category]
        feature_pool = features_per_category[category]
        brand = int(rng.choice(brand_pool))
        low, high = config.features_per_item
        count = int(rng.integers(low, high + 1))
        # Mix category features with a few global ones.
        global_features = rng.integers(0, config.num_features, size=max(1, count // 2))
        local_features = rng.choice(feature_pool, size=min(count, len(feature_pool)),
                                    replace=False)
        features = tuple(sorted({int(f) for f in np.concatenate([local_features,
                                                                 global_features])}))
        products.append(Product(
            item_id=item_id,
            name=f"{config.name}_item_{item_id}",
            brand_id=brand,
            category_id=category,
            feature_ids=features,
        ))
        item_cluster[item_id] = cluster
    return products, item_cluster


def _generate_interactions(config: SyntheticConfig, products: Sequence[Product],
                           item_cluster: Dict[int, int], rng: np.random.Generator
                           ) -> Tuple[List[Interaction], Dict[int, List[int]]]:
    """Sample purchase logs with cluster-local preferences and popularity bias."""
    popularity = rng.zipf(1.0 + config.popularity_exponent, size=config.num_items).astype(float)
    popularity = popularity / popularity.sum()

    items_by_cluster: Dict[int, List[int]] = {}
    for item_id, cluster in item_cluster.items():
        items_by_cluster.setdefault(cluster, []).append(item_id)

    interactions: List[Interaction] = []
    user_clusters: Dict[int, List[int]] = {}
    for user_id in range(config.num_users):
        primary = int(rng.integers(0, config.num_clusters))
        secondary = int(rng.integers(0, config.num_clusters))
        clusters = [primary] if primary == secondary else [primary, secondary]
        user_clusters[user_id] = clusters

        low, high = config.interactions_per_user
        num_purchases = int(rng.integers(low, high + 1))
        purchased: set[int] = set()
        for _ in range(num_purchases):
            if rng.random() < config.preference_noise:
                candidate_pool = list(range(config.num_items))
            else:
                cluster = clusters[0] if (len(clusters) == 1 or rng.random() < 0.7) else clusters[1]
                candidate_pool = items_by_cluster.get(cluster, list(range(config.num_items)))
            weights = popularity[candidate_pool]
            weights = weights / weights.sum()
            item_id = int(rng.choice(candidate_pool, p=weights))
            if item_id in purchased:
                continue
            purchased.add(item_id)
            product = products[item_id]
            mentioned: Tuple[int, ...] = ()
            if product.feature_ids and rng.random() < 0.8:
                count = int(rng.integers(1, min(3, len(product.feature_ids)) + 1))
                mentioned = tuple(int(f) for f in rng.choice(product.feature_ids, size=count,
                                                             replace=False))
            interactions.append(Interaction(user_id=user_id, item_id=item_id,
                                            mentioned_feature_ids=mentioned))
        # Guarantee at least two purchases per user so the 70/30 split always
        # leaves both a training anchor and a test target.
        while len(purchased) < 2:
            item_id = int(rng.integers(0, config.num_items))
            if item_id in purchased:
                continue
            purchased.add(item_id)
            interactions.append(Interaction(user_id=user_id, item_id=item_id))
    return interactions, user_clusters


def _generate_item_relations(config: SyntheticConfig, products: Sequence[Product],
                             item_cluster: Dict[int, int], rng: np.random.Generator
                             ) -> List[ItemRelation]:
    """Create also_bought / also_viewed / bought_together edges.

    ``bought_together`` links items of the *same* category, ``also_viewed`` and
    ``also_bought`` preferentially cross categories within the same interest
    cluster (the cross-selling structure the category agent exploits).
    """
    items_by_cluster: Dict[int, List[int]] = {}
    items_by_category: Dict[int, List[int]] = {}
    for product in products:
        items_by_cluster.setdefault(item_cluster[product.item_id], []).append(product.item_id)
        items_by_category.setdefault(product.category_id, []).append(product.item_id)

    relations: List[ItemRelation] = []
    seen: set[Tuple[int, int, str]] = set()
    for product in products:
        low, high = config.item_relation_degree
        degree = int(rng.integers(low, high + 1))
        cluster_pool = items_by_cluster[item_cluster[product.item_id]]
        category_pool = items_by_category[product.category_id]
        for _ in range(degree):
            relation_name = str(rng.choice(["also_bought", "also_viewed", "bought_together"],
                                           p=[0.4, 0.4, 0.2]))
            cross_category = rng.random() < config.cross_category_ratio
            if relation_name == "bought_together" or not cross_category:
                pool = category_pool
            else:
                pool = cluster_pool
            if len(pool) < 2:
                pool = list(range(config.num_items))
            target = int(rng.choice(pool))
            if target == product.item_id:
                continue
            key = (product.item_id, target, relation_name)
            if key in seen:
                continue
            seen.add(key)
            relations.append(ItemRelation(source_item_id=product.item_id,
                                          target_item_id=target,
                                          relation=relation_name))
    return relations


def _partition_vocabulary(size: int, num_groups: int,
                          rng: np.random.Generator) -> List[np.ndarray]:
    """Split ``range(size)`` into ``num_groups`` non-empty overlapping pools."""
    base = np.array_split(rng.permutation(size), num_groups)
    pools: List[np.ndarray] = []
    for group in base:
        if len(group) == 0:
            group = rng.integers(0, size, size=1)
        # Add a little overlap so attribute hops can cross categories too.
        extra = rng.integers(0, size, size=max(1, size // (num_groups * 4)))
        pools.append(np.unique(np.concatenate([group, extra])))
    return pools
