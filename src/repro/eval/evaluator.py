"""Ranking evaluation protocol (top-10 over held-out purchases, Section V-A.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

from ..data.schema import TrainTestSplit
from ..data.splits import test_user_items
from .metrics import aggregate_metrics, all_metrics, as_percentages


class ItemRecommender(Protocol):
    """Anything that can rank items for a dataset user.

    Both CADRL and every baseline implement this protocol; the evaluator and
    the experiment harness only ever talk to models through it.
    """

    name: str

    def recommend_items(self, user_id: int, top_k: int = 10) -> List[int]:
        """Return the ranked top-k *dataset* item ids for ``user_id``."""
        ...


@dataclass
class EvaluationResult:
    """Aggregated metrics (percentages) plus the per-user breakdown."""

    model_name: str
    metrics: Dict[str, float]
    per_user: Dict[int, Dict[str, float]]
    num_users: int

    def __getitem__(self, metric: str) -> float:
        return self.metrics[metric]

    def summary_row(self) -> str:
        """One formatted row, in the column order of Table I."""
        return (f"{self.model_name:<22s} "
                f"NDCG={self.metrics['ndcg']:6.3f}  "
                f"Recall={self.metrics['recall']:6.3f}  "
                f"HR={self.metrics['hit_ratio']:6.3f}  "
                f"Prec.={self.metrics['precision']:6.3f}")


def evaluate_recommender(model: ItemRecommender, split: TrainTestSplit, top_k: int = 10,
                         users: Optional[Sequence[int]] = None,
                         ) -> EvaluationResult:
    """Evaluate ``model`` on the held-out 30% purchases.

    Parameters
    ----------
    model:
        Any :class:`ItemRecommender`.
    split:
        The train/test split whose test portion defines the relevant items.
    top_k:
        Ranking cutoff (the paper uses 10).
    users:
        Optional subset of user ids to evaluate (used by the efficiency and
        fast-test paths); defaults to every user with at least one test item.
    """
    held_out = test_user_items(split)
    if users is not None:
        held_out = {user: items for user, items in held_out.items() if user in users}

    per_user: Dict[int, Dict[str, float]] = {}
    for user_id, relevant in held_out.items():
        if not relevant:
            continue
        recommended = model.recommend_items(user_id, top_k)
        per_user[user_id] = all_metrics(recommended, relevant, top_k)

    aggregated = as_percentages(aggregate_metrics(list(per_user.values())))
    return EvaluationResult(
        model_name=getattr(model, "name", type(model).__name__),
        metrics=aggregated,
        per_user=per_user,
        num_users=len(per_user),
    )


def compare_models(models: Sequence[ItemRecommender], split: TrainTestSplit, top_k: int = 10,
                   users: Optional[Sequence[int]] = None) -> List[EvaluationResult]:
    """Evaluate several models under the identical protocol (one Table I column)."""
    return [evaluate_recommender(model, split, top_k=top_k, users=users) for model in models]
