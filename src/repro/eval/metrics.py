"""Top-k ranking metrics: NDCG, Recall, Hit Ratio and Precision.

These are the four metrics of Table I.  All functions take the *ranked* list
of recommended item ids and the set of relevant (held-out) items and return a
value in [0, 1]; the evaluator reports them as percentages to match the
paper's presentation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

import numpy as np


def _as_set(relevant: Iterable[int]) -> Set[int]:
    return set(relevant)


def _unique_top_k(recommended: Sequence[int], k: int) -> List[int]:
    """First ``k`` distinct recommendations, preserving rank order.

    Recommendation lists are expected to be duplicate-free, but the metrics
    stay well-defined (bounded by 1) even if a model repeats an item.
    """
    seen: Set[int] = set()
    top: List[int] = []
    for item in recommended:
        if item in seen:
            continue
        seen.add(item)
        top.append(item)
        if len(top) == k:
            break
    return top


def precision_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int = 10) -> float:
    """Fraction of the top-k recommendations that are relevant."""
    if k <= 0:
        raise ValueError("k must be positive")
    relevant_set = _as_set(relevant)
    if not relevant_set:
        return 0.0  # repro: ignore[NAN001] protocol scores empty ground truth as 0
    top = _unique_top_k(recommended, k)
    if not top:
        return 0.0  # repro: ignore[NAN001] zero hits in k slots is a real precision of 0
    hits = sum(1 for item in top if item in relevant_set)
    return hits / k


def recall_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int = 10) -> float:
    """Fraction of the relevant items that appear in the top-k."""
    if k <= 0:
        raise ValueError("k must be positive")
    relevant_set = _as_set(relevant)
    if not relevant_set:
        return 0.0  # repro: ignore[NAN001] protocol scores empty ground truth as 0
    top = _unique_top_k(recommended, k)
    hits = sum(1 for item in top if item in relevant_set)
    return hits / len(relevant_set)


def hit_ratio_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int = 10) -> float:
    """1 if any relevant item appears in the top-k, else 0."""
    if k <= 0:
        raise ValueError("k must be positive")
    relevant_set = _as_set(relevant)
    if not relevant_set:
        return 0.0  # repro: ignore[NAN001] protocol scores empty ground truth as 0
    top = _unique_top_k(recommended, k)
    return 1.0 if any(item in relevant_set for item in top) else 0.0


def ndcg_at_k(recommended: Sequence[int], relevant: Iterable[int], k: int = 10) -> float:
    """Normalised discounted cumulative gain with binary relevance."""
    if k <= 0:
        raise ValueError("k must be positive")
    relevant_set = _as_set(relevant)
    if not relevant_set:
        return 0.0
    top = _unique_top_k(recommended, k)
    dcg = 0.0
    for position, item in enumerate(top):
        if item in relevant_set:
            dcg += 1.0 / np.log2(position + 2)
    ideal_hits = min(len(relevant_set), k)
    idcg = sum(1.0 / np.log2(position + 2) for position in range(ideal_hits))
    return dcg / idcg if idcg > 0 else 0.0


METRIC_FUNCTIONS = {
    "ndcg": ndcg_at_k,
    "recall": recall_at_k,
    "hit_ratio": hit_ratio_at_k,
    "precision": precision_at_k,
}


def all_metrics(recommended: Sequence[int], relevant: Iterable[int], k: int = 10
                ) -> Dict[str, float]:
    """Compute all four metrics for one user."""
    relevant_set = _as_set(relevant)
    return {name: fn(recommended, relevant_set, k) for name, fn in METRIC_FUNCTIONS.items()}


def aggregate_metrics(per_user: Sequence[Dict[str, float]]) -> Dict[str, float]:
    """Average per-user metric dictionaries (ignoring empty input gracefully)."""
    if not per_user:
        return {name: 0.0 for name in METRIC_FUNCTIONS}
    aggregated: Dict[str, float] = {}
    for name in METRIC_FUNCTIONS:
        aggregated[name] = float(np.mean([user[name] for user in per_user]))
    return aggregated


def as_percentages(metrics: Dict[str, float]) -> Dict[str, float]:
    """Scale metric values to percentages, matching Table I's presentation."""
    return {name: 100.0 * value for name, value in metrics.items()}
