"""Wall-clock efficiency measurement (Table III).

The paper reports (a) the time to produce recommendations for 1k users and
(b) the time to generate 10k recommendation paths.  At our reduced scale the
harness measures the same two workloads for a configurable number of users /
paths and linearly extrapolates to the paper's units so the rows stay
comparable in spirit (the extrapolated and the raw numbers are both reported).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Protocol, Sequence


class PathProducingRecommender(Protocol):
    """A recommender that can also enumerate raw paths (RL/path-based models)."""

    name: str

    def recommend_items(self, user_id: int, top_k: int = 10) -> List[int]:
        ...

    def find_paths(self, user_id: int, num_paths: int) -> Sequence:
        ...


@dataclass
class TimingResult:
    """Efficiency numbers for one model on one dataset."""

    model_name: str
    recommendation_seconds: float        # measured
    recommendation_users: int
    pathfinding_seconds: float           # measured
    paths_found: int

    def recommendation_per_1k_users(self) -> float:
        """Extrapolated seconds per 1 000 users (the paper's unit).

        NaN when no users were measured — extrapolating from an empty workload
        would otherwise report a misleading ``0.0``.
        """
        if self.recommendation_users == 0:
            return float("nan")
        return 1000.0 * self.recommendation_seconds / self.recommendation_users

    def pathfinding_per_10k_paths(self) -> float:
        """Extrapolated seconds per 10 000 paths (NaN when none were found)."""
        if self.paths_found == 0:
            return float("nan")
        return 10000.0 * self.pathfinding_seconds / self.paths_found

    @staticmethod
    def _format_seconds(value: float) -> str:
        return f"{'n/a':>9s} " if math.isnan(value) else f"{value:9.2f}s"

    def summary_row(self) -> str:
        return (f"{self.model_name:<22s} "
                f"Rec(1k users)={self._format_seconds(self.recommendation_per_1k_users())}  "
                f"Find(10k paths)={self._format_seconds(self.pathfinding_per_10k_paths())}")


def time_recommendations(model, users: Sequence[int], top_k: int = 10) -> float:
    """Seconds spent producing top-k recommendations for ``users``.

    A serving facade (anything exposing ``serve_many`` + ``build_requests``,
    i.e. :class:`repro.serving.RecommendationService`) is timed through one
    batched call — caching and micro-batching are part of its deployment cost,
    so Table III can report served next to raw numbers.
    """
    start = time.perf_counter()
    if hasattr(model, "serve_many") and hasattr(model, "build_requests"):
        model.serve_many(model.build_requests(users, top_k=top_k))
    else:
        for user_id in users:
            model.recommend_items(user_id, top_k)
    return time.perf_counter() - start


def time_pathfinding(model, users: Sequence[int], paths_per_user: int) -> tuple[float, int]:
    """Seconds spent enumerating paths, plus the number of paths produced."""
    start = time.perf_counter()
    total_paths = 0
    for user_id in users:
        total_paths += len(model.find_paths(user_id, paths_per_user))
    return time.perf_counter() - start, total_paths


def measure_efficiency(model, users: Sequence[int], top_k: int = 10,
                       paths_per_user: int = 20) -> TimingResult:
    """Run both Table III workloads for one model."""
    recommendation_seconds = time_recommendations(model, users, top_k)
    if hasattr(model, "find_paths"):
        pathfinding_seconds, paths_found = time_pathfinding(model, users, paths_per_user)
    else:
        pathfinding_seconds, paths_found = 0.0, 0
    return TimingResult(
        model_name=getattr(model, "name", type(model).__name__),
        recommendation_seconds=recommendation_seconds,
        recommendation_users=len(users),
        pathfinding_seconds=pathfinding_seconds,
        paths_found=paths_found,
    )
