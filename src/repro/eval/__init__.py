"""Evaluation substrate: ranking metrics, protocol, timing and explanations."""

from .evaluator import EvaluationResult, ItemRecommender, compare_models, evaluate_recommender
from .explanations import (
    ExplainedRecommendation,
    categories_along_path,
    explain_recommendations,
    fraction_beyond_three_hops,
    path_length_histogram,
    render_path,
)
from .metrics import (
    METRIC_FUNCTIONS,
    aggregate_metrics,
    all_metrics,
    as_percentages,
    hit_ratio_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from .timing import TimingResult, measure_efficiency, time_pathfinding, time_recommendations

__all__ = [
    "EvaluationResult",
    "ExplainedRecommendation",
    "ItemRecommender",
    "METRIC_FUNCTIONS",
    "TimingResult",
    "aggregate_metrics",
    "all_metrics",
    "as_percentages",
    "categories_along_path",
    "compare_models",
    "evaluate_recommender",
    "explain_recommendations",
    "fraction_beyond_three_hops",
    "hit_ratio_at_k",
    "measure_efficiency",
    "ndcg_at_k",
    "path_length_histogram",
    "precision_at_k",
    "recall_at_k",
    "render_path",
    "time_pathfinding",
    "time_recommendations",
]
