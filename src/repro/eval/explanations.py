"""Explanation-path inspection utilities (the case study of Fig. 7 / RQ7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..kg.entities import EntityType
from ..kg.graph import KnowledgeGraph
from ..rl.trajectory import RecommendationPath


@dataclass
class ExplainedRecommendation:
    """A recommendation with its rendered explanation and path statistics."""

    item_name: str
    explanation: str
    path_length: int
    categories_crossed: List[str]
    score: float


def render_path(graph: KnowledgeGraph, path: RecommendationPath) -> str:
    """Render a path as ``user --relation--> entity --...--> item``."""
    parts = [str(graph.entities.get(path.user_entity))]
    for relation, entity in path.hops:
        parts.append(f"--{relation.value}--> {graph.entities.get(entity)}")
    return " ".join(parts)


def categories_along_path(graph: KnowledgeGraph, path: RecommendationPath) -> List[str]:
    """Category labels of every item visited along the path (in order)."""
    names: List[str] = []
    for _, entity in path.hops:
        if graph.entities.type_of(entity) == EntityType.ITEM:
            category = graph.category_of(entity)
            if category is not None:
                name = graph.category_name(category)
                if not names or names[-1] != name:
                    names.append(name)
    return names


def explain_recommendations(graph: KnowledgeGraph, paths: Sequence[RecommendationPath]
                            ) -> List[ExplainedRecommendation]:
    """Turn raw recommendation paths into human-readable explanations."""
    explained: List[ExplainedRecommendation] = []
    for path in paths:
        explained.append(ExplainedRecommendation(
            item_name=graph.entities.get(path.item_entity).name,
            explanation=render_path(graph, path),
            path_length=path.length,
            categories_crossed=categories_along_path(graph, path),
            score=path.score,
        ))
    return explained


def path_length_histogram(paths: Sequence[RecommendationPath]) -> Dict[int, int]:
    """Distribution of explanation path lengths (used in the case-study analysis)."""
    histogram: Dict[int, int] = {}
    for path in paths:
        histogram[path.length] = histogram.get(path.length, 0) + 1
    return dict(sorted(histogram.items()))


def fraction_beyond_three_hops(paths: Sequence[RecommendationPath]) -> float:
    """Share of explanation paths longer than the 3-hop limit of prior work."""
    if not paths:
        return float("nan")  # no paths: the share is undefined, not 0
    beyond = sum(1 for path in paths if path.length > 3)
    return beyond / len(paths)
