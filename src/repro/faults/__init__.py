"""Deterministic fault injection for the serving stack.

``repro.faults`` turns failures into a *replayable input*: a
:class:`FaultPlan` is a JSON-serialisable script of fault events on the
virtual trace clock (transient shard exceptions, latency stalls, shards going
down, byte-level artifact corruption, a crash mid generation swap, torn
update-log appends), and a :class:`FaultInjector` fires those events through
shims around the cluster's shard workers, the epoch-swap coordinator and the
artifact store.  Every firing — and every *defense* action it provokes
(circuit-breaker trips, retries, quarantines, crash recovery) — lands in an
ordered :class:`FaultLedger`, so a degraded answer can always be traced to
the fault that degraded it.

Plans come from JSON files (``repro simulate --faults PLAN.json``) or from a
seed (:func:`chaos_plan`, ``--chaos-seed N``); both are deterministic, so the
same plan over the same trace reproduces bit-identical faults, defenses and
answers — which is exactly what the
:class:`repro.simulate.FaultToleranceOracle` checks.
"""

from .injector import (
    FaultError,
    FaultInjector,
    FaultLedger,
    InjectedCrash,
    InjectedException,
    InjectedStall,
    LedgerEntry,
)
from .plan import (
    ArtifactCorruptionFault,
    CrashMidSwapFault,
    FaultPlan,
    LatencyFault,
    ShardDownFault,
    ShardExceptionFault,
    TornLogFault,
    chaos_plan,
    fault_from_dict,
)

__all__ = [
    "ArtifactCorruptionFault",
    "CrashMidSwapFault",
    "FaultError",
    "FaultInjector",
    "FaultLedger",
    "FaultPlan",
    "InjectedCrash",
    "InjectedException",
    "InjectedStall",
    "LatencyFault",
    "LedgerEntry",
    "ShardDownFault",
    "ShardExceptionFault",
    "TornLogFault",
    "chaos_plan",
    "fault_from_dict",
]
