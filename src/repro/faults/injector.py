"""The fault injector: fires plan events through shims, ledgers everything.

The :class:`FaultInjector` holds a resolved :class:`~repro.faults.plan.FaultPlan`
and the replay's virtual clock.  The serving stack calls its hooks at the
choke points faults can enter through:

* ``before_shard_serve(shard_id)`` — once per serve *attempt* on a shard
  (batched group or retry).  Raises :class:`InjectedException` for transient
  exception / shard-down events, :class:`InjectedStall` for latency spikes at
  or above the stall timeout.
* ``latency_penalty_ms(shard_id)`` — sub-timeout latency spikes, charged to
  the reported latency of requests served in the window.
* ``on_swap_begin()`` / ``on_shard_flip(...)`` — called by the epoch-swap
  coordinator; raises :class:`InjectedCrash` mid-swap per the plan.
* ``after_generation_saved(store, generation)`` — byte-level corruption of
  just-persisted artifacts.
* ``after_log_append(path)`` — torn-tail truncation of the update log.

Every firing appends a :class:`LedgerEntry` with ``source="plan"``; the
defenses (breaker transitions, retries, sheds, quarantines, recoveries)
append ``source="defense"`` entries through :meth:`record_defense`.  The
ledger is strictly ordered (a ``seq`` counter), so a same-seed replay
produces a bit-identical ledger — checkable via :meth:`FaultLedger.signature`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List

from .plan import (
    ArtifactCorruptionFault,
    CrashMidSwapFault,
    FaultPlan,
    LatencyFault,
    ShardDownFault,
    ShardExceptionFault,
    TornLogFault,
)


class FaultError(RuntimeError):
    """Base class of every injected failure."""


class InjectedException(FaultError):
    """A transient (or shard-down) serve failure injected by the plan."""


class InjectedStall(FaultError):
    """A latency spike past the stall timeout — the caller would give up."""

    def __init__(self, message: str, added_ms: float) -> None:
        super().__init__(message)
        self.added_ms = added_ms


class InjectedCrash(FaultError):
    """A simulated process crash (only ever raised mid generation swap)."""


@dataclass(frozen=True)
class LedgerEntry:
    """One ordered ledger record: a fault firing or a defense action."""

    seq: int
    at_s: float
    source: str          # "plan" | "defense"
    kind: str            # e.g. "shard_exception", "breaker_open", "retry"
    target: str          # shard id, stage/file, swap index... as text
    detail: str = ""

    def to_dict(self) -> Dict:
        return {"seq": self.seq, "at_s": self.at_s, "source": self.source,
                "kind": self.kind, "target": self.target, "detail": self.detail}


class FaultLedger:
    """Strictly-ordered record of every fault firing and defense action."""

    def __init__(self) -> None:
        self.entries: List[LedgerEntry] = []

    def record(self, *, at_s: float, source: str, kind: str, target: str,
               detail: str = "") -> LedgerEntry:
        entry = LedgerEntry(seq=len(self.entries), at_s=at_s, source=source,
                            kind=kind, target=target, detail=detail)
        self.entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def kinds(self) -> List[str]:
        """Distinct entry kinds, sorted (deterministic summaries)."""
        return sorted({entry.kind for entry in self.entries})

    def count(self, kind: str) -> int:
        return sum(1 for entry in self.entries if entry.kind == kind)

    def as_dicts(self) -> List[Dict]:
        return [entry.to_dict() for entry in self.entries]

    def signature(self) -> str:
        """SHA-256 over the canonical entry list — ledger identity in one line."""
        canonical = json.dumps(self.as_dicts(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class FaultInjector:
    """Fires one resolved :class:`FaultPlan` against the serving stack.

    ``stall_timeout_ms`` divides latency faults into stalls (the serve
    attempt raises) and spikes (latency inflation only).  The injector is
    stateful — exception budgets, swap/append counters — so one injector
    serves exactly one replay; build a fresh one per run.
    """

    def __init__(self, plan: FaultPlan, clock: Callable[[], float], *,
                 stall_timeout_ms: float = 250.0) -> None:
        if plan.timebase != "seconds":
            raise ValueError("resolve() the plan against the trace span first")
        self.plan = plan
        self._clock = clock
        self.stall_timeout_ms = stall_timeout_ms
        self.ledger = FaultLedger()
        self._exception_budget: Dict[int, int] = {
            index: event.count for index, event in enumerate(plan.events)
            if isinstance(event, ShardExceptionFault)}
        self._swaps_begun = 0
        self._appends_seen = 0

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #
    def install(self, cluster) -> "FaultInjector":
        """Attach to a :class:`~repro.cluster.ClusterService` (and its breaker)."""
        cluster.injector = self
        breaker = getattr(cluster, "breaker", None)
        if breaker is not None:
            breaker.on_transition = self._on_breaker_transition
        return self

    def _on_breaker_transition(self, transition) -> None:
        self.ledger.record(at_s=transition.at_s, source="defense",
                           kind=f"breaker_{transition.state}",
                           target=f"shard:{transition.shard_id}",
                           detail=transition.detail)

    # ------------------------------------------------------------------ #
    # trace-time hooks (cluster serve path)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _in_window(event, now: float) -> bool:
        if now < event.at_s:
            return False
        duration = getattr(event, "duration_s", None)
        return duration is None or now < event.at_s + duration

    def before_shard_serve(self, shard_id: int) -> None:
        """May raise: one fault firing per serve attempt, in plan order."""
        now = self._clock()
        for index, event in enumerate(self.plan.events):
            if getattr(event, "shard_id", None) != shard_id:
                continue
            if isinstance(event, ShardExceptionFault):
                if now >= event.at_s and self._exception_budget.get(index, 0) > 0:
                    self._exception_budget[index] -= 1
                    self.ledger.record(at_s=now, source="plan",
                                       kind="shard_exception",
                                       target=f"shard:{shard_id}",
                                       detail=f"event {index}")
                    raise InjectedException(
                        f"injected transient exception on shard {shard_id}")
            elif isinstance(event, ShardDownFault):
                if self._in_window(event, now):
                    self.ledger.record(at_s=now, source="plan",
                                       kind="shard_down",
                                       target=f"shard:{shard_id}",
                                       detail=f"event {index}")
                    raise InjectedException(
                        f"injected outage on shard {shard_id}")
            elif isinstance(event, LatencyFault):
                if (event.added_ms >= self.stall_timeout_ms
                        and self._in_window(event, now)):
                    self.ledger.record(at_s=now, source="plan",
                                       kind="latency_stall",
                                       target=f"shard:{shard_id}",
                                       detail=f"+{event.added_ms:g}ms")
                    raise InjectedStall(
                        f"injected {event.added_ms:g}ms stall on shard "
                        f"{shard_id}", added_ms=event.added_ms)

    def latency_penalty_ms(self, shard_id: int) -> float:
        """Sub-stall latency inflation active on the shard right now."""
        now = self._clock()
        penalty = 0.0
        for event in self.plan.events:
            if (isinstance(event, LatencyFault)
                    and event.shard_id == shard_id
                    and event.added_ms < self.stall_timeout_ms
                    and self._in_window(event, now)):
                penalty += event.added_ms
        if penalty > 0.0:
            self.ledger.record(at_s=now, source="plan", kind="latency_spike",
                               target=f"shard:{shard_id}",
                               detail=f"+{penalty:g}ms")
        return penalty

    # ------------------------------------------------------------------ #
    # lifecycle hooks (swap coordinator, artifact store, update log)
    # ------------------------------------------------------------------ #
    def on_swap_begin(self) -> int:
        """Called by the coordinator at the start of each swap; returns its index."""
        index = self._swaps_begun
        self._swaps_begun += 1
        return index

    def on_shard_flip(self, swap_index: int, flipped: int, total: int) -> None:
        """May raise :class:`InjectedCrash` after the ``flipped``-th flip."""
        for event in self.plan.events:
            if (isinstance(event, CrashMidSwapFault)
                    and event.swap_index == swap_index
                    and event.after_shards == flipped
                    and flipped < total):
                self.ledger.record(at_s=self._clock(), source="plan",
                                   kind="crash_mid_swap",
                                   target=f"swap:{swap_index}",
                                   detail=f"after {flipped}/{total} shards")
                raise InjectedCrash(
                    f"injected crash in swap {swap_index} after "
                    f"{flipped}/{total} shard flips")

    def after_generation_saved(self, store, generation: int) -> None:
        """Corrupt just-persisted artifact bytes per the plan."""
        for event in self.plan.events:
            if not isinstance(event, ArtifactCorruptionFault):
                continue
            if event.generation is not None and event.generation != generation:
                continue
            path = store.stage_dir(event.stage) / event.name
            if not path.is_file():
                continue
            data = bytearray(path.read_bytes())
            if not data:
                continue
            offset = event.offset % len(data)
            data[offset] ^= (event.xor_mask & 0xFF) or 0xFF
            path.write_bytes(bytes(data))
            self.ledger.record(at_s=self._clock(), source="plan",
                               kind="artifact_corruption",
                               target=f"generation:{generation}",
                               detail=f"{event.stage}/{event.name}@{offset}")

    def after_log_append(self, path) -> None:
        """Tear the tail of the JSONL update log per the plan."""
        index = self._appends_seen
        self._appends_seen += 1
        for event in self.plan.events:
            if (isinstance(event, TornLogFault)
                    and event.append_index == index):
                with open(path, "rb") as handle:
                    data = handle.read()
                keep = max(0, len(data) - max(1, event.drop_bytes))
                with open(path, "wb") as handle:
                    handle.write(data[:keep])
                self.ledger.record(at_s=self._clock(), source="plan",
                                   kind="torn_log", target=f"append:{index}",
                                   detail=f"dropped {len(data) - keep} bytes")

    # ------------------------------------------------------------------ #
    # defense recording
    # ------------------------------------------------------------------ #
    def record_defense(self, kind: str, target: str, detail: str = "") -> None:
        """Ledger a defense action (retry, shed, quarantine, recovery...)."""
        self.ledger.record(at_s=self._clock(), source="defense", kind=kind,
                           target=target, detail=detail)
