"""Fault plans: declarative, JSON-round-trippable scripts of failures.

A :class:`FaultPlan` is an ordered tuple of fault events.  Events that happen
*in trace time* (exceptions, latency, shards going down) carry an ``at_s``
on the virtual clock; structural events (artifact corruption, crash mid-swap,
torn log appends) key on the lifecycle step they sabotage instead (which
generation save, which swap, which append).  Plan order is significant: the
injector checks events in plan order, so two events eligible at the same
instant fire in the order the plan lists them.

The JSON schema (``version`` 1)::

    {
      "version": 1,
      "timebase": "seconds",            # or "fraction" (of the trace span)
      "events": [
        {"kind": "shard_exception", "at_s": 0.4, "shard_id": 1, "count": 3},
        {"kind": "latency", "at_s": 0.5, "shard_id": 2,
         "duration_s": 0.6, "added_ms": 400.0},
        {"kind": "shard_down", "at_s": 0.1, "shard_id": 3, "duration_s": null},
        {"kind": "artifact_corruption", "generation": 1,
         "stage": "embed", "name": "transe.npz", "offset": 64, "xor_mask": 255},
        {"kind": "crash_mid_swap", "swap_index": 0, "after_shards": 2},
        {"kind": "torn_log", "append_index": 2, "drop_bytes": 7}
      ]
    }

With ``"timebase": "fraction"`` every ``at_s``/``duration_s`` is a fraction
of the replayed trace's span and :meth:`FaultPlan.resolve` turns it into
absolute seconds — committed plans stay meaningful whatever the trace length.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

PLAN_VERSION = 1

TIMEBASES = ("seconds", "fraction")


@dataclass(frozen=True)
class ShardExceptionFault:
    """The shard's next ``count`` serve attempts at/after ``at_s`` raise."""

    at_s: float
    shard_id: int
    count: int = 1
    kind: str = "shard_exception"


@dataclass(frozen=True)
class LatencyFault:
    """The shard answers ``added_ms`` slower during the window.

    Spikes at/above the injector's stall timeout are *stalls*: the serve
    attempt raises (the caller would have timed out), driving retries and the
    circuit breaker.  Sub-timeout spikes only inflate the reported latency.
    ``duration_s=None`` means "until the end of the trace".
    """

    at_s: float
    shard_id: int
    added_ms: float
    duration_s: Optional[float] = None
    kind: str = "latency"


@dataclass(frozen=True)
class ShardDownFault:
    """Every serve attempt on the shard raises during the window.

    Subsumes the legacy ``--fail-shard`` boot-time injection as the one-event
    plan ``ShardDownFault(at_s=0.0, shard_id=K)``; unlike the health-model
    hook, the *routing layer* discovers the outage the hard way — through
    failures, retries and the breaker — which is the point.
    """

    at_s: float
    shard_id: int
    duration_s: Optional[float] = None
    kind: str = "shard_down"


@dataclass(frozen=True)
class ArtifactCorruptionFault:
    """Flip bytes in a persisted artifact file right after it is saved.

    Fires when the live session persists generation ``generation`` (``None``
    matches any generation): byte ``offset`` (modulo the file size) of
    ``<stage>/<name>`` is XOR-ed with ``xor_mask``.  Verification should then
    quarantine the generation before any shard serves from it.
    """

    stage: str
    name: str
    generation: Optional[int] = None
    offset: int = 0
    xor_mask: int = 0xFF
    kind: str = "artifact_corruption"


@dataclass(frozen=True)
class CrashMidSwapFault:
    """Kill the ``swap_index``-th generation swap after ``after_shards`` flips.

    Models a coordinator crash between per-shard flips: some shards serve the
    new generation, the rest still serve the old one, and recovery must
    finish the flip without double-applying it.
    """

    swap_index: int = 0
    after_shards: int = 1
    kind: str = "crash_mid_swap"


@dataclass(frozen=True)
class TornLogFault:
    """Truncate the tail of the ``append_index``-th update-log append.

    Drops the final ``drop_bytes`` bytes of the JSONL file — a torn write —
    so recovery must detect the invalid tail record and truncate back to the
    last valid one.
    """

    append_index: int = 0
    drop_bytes: int = 7
    kind: str = "torn_log"


FaultEvent = Union[ShardExceptionFault, LatencyFault, ShardDownFault,
                   ArtifactCorruptionFault, CrashMidSwapFault, TornLogFault]

_EVENT_TYPES: Dict[str, type] = {
    "shard_exception": ShardExceptionFault,
    "latency": LatencyFault,
    "shard_down": ShardDownFault,
    "artifact_corruption": ArtifactCorruptionFault,
    "crash_mid_swap": CrashMidSwapFault,
    "torn_log": TornLogFault,
}


def fault_from_dict(payload: Dict) -> FaultEvent:
    """Rebuild one fault event from its JSON dict (``kind`` selects the type)."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r} "
                         f"(choose from {sorted(_EVENT_TYPES)})")
    try:
        return cls(**data)
    except TypeError as error:
        raise ValueError(f"bad {kind} fault spec {payload!r}: {error}") from error


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, serialisable script of fault events."""

    events: Tuple[FaultEvent, ...] = ()
    timebase: str = "seconds"

    def __post_init__(self) -> None:
        if self.timebase not in TIMEBASES:
            raise ValueError(f"timebase must be one of {TIMEBASES}")
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def resolve(self, duration_s: float) -> "FaultPlan":
        """An absolute-seconds plan (fractional timings scaled by the span)."""
        if self.timebase == "seconds":
            return self
        if not np.isfinite(duration_s) or duration_s < 0:
            raise ValueError("resolve needs a finite non-negative trace span")
        events = []
        for event in self.events:
            updates = {}
            if hasattr(event, "at_s"):
                updates["at_s"] = event.at_s * duration_s
            if getattr(event, "duration_s", None) is not None:
                updates["duration_s"] = event.duration_s * duration_s
            events.append(replace(event, **updates) if updates else event)
        return FaultPlan(events=tuple(events), timebase="seconds")

    # ------------------------------------------------------------------ #
    # serialisation & identity
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {"version": PLAN_VERSION, "timebase": self.timebase,
                "events": [asdict(event) for event in self.events]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        version = payload.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ValueError(f"unsupported fault-plan version {version!r}")
        return cls(events=tuple(fault_from_dict(entry)
                                for entry in payload.get("events", ())),
                   timebase=payload.get("timebase", "seconds"))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def signature(self) -> str:
        """SHA-256 over the canonical serialisation — plan identity in one line."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def chaos_plan(seed: int, *, num_shards: int, duration_s: float,
               events: int = 6, include_live: bool = False) -> FaultPlan:
    """A seeded random fault plan — ``--chaos-seed N`` in one call.

    Draws ``events`` trace-time faults (transient exceptions, latency spikes
    and stalls, one possible shard-down window) from a generator seeded with
    ``seed``; with ``include_live`` it also sabotages the live pipeline (one
    artifact corruption, one crash-mid-swap, one torn append).  Same seed,
    same topology, same span → bit-identical plan.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if events < 0:
        raise ValueError("events must be non-negative")
    rng = np.random.default_rng(seed)
    drawn = []
    for _ in range(events):
        at_s = float(rng.uniform(0.0, max(duration_s, 1e-9)))
        shard_id = int(rng.integers(num_shards))
        roll = rng.random()
        if roll < 0.45:
            drawn.append(ShardExceptionFault(
                at_s=at_s, shard_id=shard_id, count=int(rng.integers(1, 4))))
        elif roll < 0.85:
            drawn.append(LatencyFault(
                at_s=at_s, shard_id=shard_id,
                added_ms=float(rng.choice((50.0, 150.0, 400.0, 1200.0))),
                duration_s=float(rng.uniform(0.05, 0.35)) * max(duration_s, 1e-9)))
        else:
            drawn.append(ShardDownFault(
                at_s=at_s, shard_id=shard_id,
                duration_s=float(rng.uniform(0.1, 0.4)) * max(duration_s, 1e-9)))
    if include_live:
        drawn.append(ArtifactCorruptionFault(
            stage="embed", name="transe.npz",
            offset=int(rng.integers(0, 4096))))
        drawn.append(CrashMidSwapFault(
            swap_index=0, after_shards=max(1, num_shards // 2)))
        drawn.append(TornLogFault(append_index=int(rng.integers(0, 3))))
    drawn.sort(key=lambda event: getattr(event, "at_s", float("inf")))
    return FaultPlan(events=tuple(drawn))
