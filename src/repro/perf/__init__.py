"""Performance rail: seeded benchmarks, frozen scalar references, regression gate.

``python -m repro bench`` is the CLI entry point; :mod:`repro.perf.bench`
holds the harness and :mod:`repro.perf.reference` the pre-vectorisation
implementations that serve as equivalence oracles and in-run baselines.
"""

from .bench import (
    GATED_METRICS,
    PROFILES,
    BenchProfile,
    Regression,
    build_stack,
    compare_with_baseline,
    default_baseline_path,
    load_baseline,
    render_report,
    run_bench,
    write_bench_json,
)
from .reference import ScalarPathRecommender, train_transe_reference

__all__ = [
    "GATED_METRICS",
    "PROFILES",
    "BenchProfile",
    "Regression",
    "ScalarPathRecommender",
    "build_stack",
    "compare_with_baseline",
    "default_baseline_path",
    "load_baseline",
    "render_report",
    "run_bench",
    "train_transe_reference",
    "write_bench_json",
]
