"""Seeded micro/macro benchmarks with a JSON trail and a regression gate.

``python -m repro bench`` runs three workloads on a pipeline-built stack:

* **TransE pre-training** — the vectorised trainer against the frozen scalar
  reference (:mod:`repro.perf.reference`), reported as epochs/s;
* **DARL rollouts** — REINFORCE episodes/s of the dual-agent trainer
  (tracked for trend, no reference pair);
* **Beam-search serving QPS** — ``serve_many`` bursts through a
  :class:`repro.serving.RecommendationService`, cold (all caches empty) and
  warm (milestone/action caches hot, result cache cleared so the search
  actually runs), for both the vectorised and the scalar recommender;
* **Cluster throughput** — the same warm burst through a 1-shard service vs
  an N-shard :class:`repro.cluster.ClusterService`, reporting the cluster
  layer's routing overhead (trend metric, not gated);
* **Incremental CSR patching** — refreshing the compiled adjacency after a
  small streaming delta burst, delta patch
  (:func:`repro.kg.patch_adjacency`) vs full recompile — the live-update
  hot path; gated on the speedup ratio.
* **Fault-path overhead** — the same fault-free virtual-time replay through
  a bare cluster vs one wearing circuit breakers plus an empty-plan
  :class:`repro.faults.FaultInjector`; reports the armored/bare overhead
  ratio and checks the answers stayed bit-identical (trend, not gated).
* **Adversarial workload** — the same seeded trace replayed as generated vs
  reshaped by the ``cache-buster`` scenario (:mod:`repro.scenarios`);
  reports the cache-hit collapse and the slowdown the adversary inflicts
  (trend, not gated).

Both sides of every pair run interleaved in the same process on the same
data, and the gateable numbers are the *speedup ratios* — machine-independent
by construction, unlike raw QPS.  Results land in ``BENCH_<timestamp>.json``;
:func:`compare_with_baseline` flags any gated ratio that fell more than the
threshold below the committed baseline.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..darl.model import CADRLConfig
from ..darl.trainer import DARLConfig, DARLTrainer
from ..embeddings import TransEConfig, train_transe
from ..kg.entities import EntityType
from ..pipeline import Pipeline, PipelineResult, RunConfig
from ..serving import RecommendationService, ServingConfig
from .reference import ScalarPathRecommender, train_transe_reference

#: Metrics (dotted paths into the ``metrics`` dict) guarded by the regression
#: gate.  Ratios only: absolute epochs/s and QPS depend on the machine.
GATED_METRICS = ("transe.speedup", "beam_cold.speedup", "beam_warm.speedup",
                 "csr_patch.speedup")


@dataclass
class BenchProfile:
    """One reproducible benchmark configuration."""

    name: str
    dataset: str = "beauty"
    scale: float = 1.0
    seed: int = 0
    embedding_dim: int = 32      # model stack dimension (smoke-config default)
    beam_width: int = 12         # smoke-config search width
    max_entity_actions: int = 25
    darl_epochs: int = 1         # stack build only needs *a* trained policy
    transe_dim: int = 32         # TransE microbench dimension
    transe_epochs: int = 2       # per timed run; epoch time = wall / epochs
    beam_users: int = 60
    beam_top_k: int = 10
    rollout_users: int = 20
    cluster_shards: int = 4      # N-shard side of the cluster-throughput pair
    cluster_replicas: int = 2
    patch_deltas: int = 10       # streaming-burst size for the CSR patch bench
    scenario_requests: int = 300   # trace length for the adversarial bench
    autoscale_requests: int = 400  # bursty-trace length for the autoscale bench
    autoscale_queue: int = 8       # per-shard admission bound (small → sheds)
    autoscale_min: int = 2         # static-small / autoscale floor
    autoscale_max: int = 6         # static-large / autoscale ceiling
    repeats: int = 5             # interleaved repetitions, median taken

    def validate(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if min(self.transe_epochs, self.beam_users, self.repeats,
               self.rollout_users, self.beam_top_k, self.beam_width,
               self.max_entity_actions, self.cluster_shards,
               self.patch_deltas, self.scenario_requests,
               self.autoscale_requests, self.autoscale_queue) <= 0:
            raise ValueError("benchmark sizes must be positive")
        if not 1 <= self.cluster_replicas <= self.cluster_shards:
            raise ValueError("cluster_replicas must lie in [1, cluster_shards]")
        if not 1 <= self.autoscale_min <= self.autoscale_max:
            raise ValueError("autoscale_min must lie in [1, autoscale_max]")

    def run_config(self) -> RunConfig:
        """The pipeline configuration that builds this profile's stack."""
        config = RunConfig.from_profile("smoke", dataset=self.dataset,
                                        seed=self.seed)
        config.data.scale = self.scale
        config.model = CADRLConfig.fast(embedding_dim=self.embedding_dim,
                                        seed=self.seed)
        config.model.darl.epochs = self.darl_epochs
        config.model.darl.max_entity_actions = self.max_entity_actions
        config.model.inference.beam_width = self.beam_width
        return config


PROFILES: Dict[str, BenchProfile] = {
    # smoke: the CI-sized preset — the exact smoke-pipeline stack, tiny data.
    "smoke": BenchProfile(name="smoke", scale=0.4, beam_users=20,
                          rollout_users=10, repeats=3),
    # medium: paper-sized search hyper-parameters (beam 20, |A^e| <= 50,
    # L = 6) on the full synthetic Beauty preset.
    "medium": BenchProfile(name="medium", scale=1.0, embedding_dim=64,
                           beam_width=20, max_entity_actions=50,
                           beam_users=60, rollout_users=20, repeats=5),
}


def _median_ab(first: Callable[[], None], second: Callable[[], None],
               repeats: int) -> Tuple[float, float]:
    """Median wall time of two callables, interleaved to cancel drift."""
    first()
    second()
    times_first: List[float] = []
    times_second: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        first()
        times_first.append(time.perf_counter() - start)
        start = time.perf_counter()
        second()
        times_second.append(time.perf_counter() - start)
    return statistics.median(times_first), statistics.median(times_second)


def _median(callable_: Callable[[], None], repeats: int) -> float:
    callable_()
    times: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


# --------------------------------------------------------------------------- #
# individual benchmarks
# --------------------------------------------------------------------------- #
def bench_transe(result: PipelineResult, profile: BenchProfile) -> Dict[str, float]:
    """Vectorised vs reference TransE training, epochs per second."""
    graph = result.graph
    graph.adjacency()  # compiled once; not part of the timed region
    config = TransEConfig(embedding_dim=profile.transe_dim,
                          epochs=profile.transe_epochs, seed=profile.seed)
    vectorised, reference = _median_ab(
        lambda: train_transe(graph, config),
        lambda: train_transe_reference(graph, config),
        profile.repeats)
    return {
        "vectorised_epochs_per_s": profile.transe_epochs / vectorised,
        "reference_epochs_per_s": profile.transe_epochs / reference,
        "vectorised_epoch_ms": vectorised / profile.transe_epochs * 1000.0,
        "reference_epoch_ms": reference / profile.transe_epochs * 1000.0,
        "speedup": reference / vectorised,
    }


def bench_rollouts(result: PipelineResult, profile: BenchProfile) -> Dict[str, float]:
    """DARL REINFORCE rollouts per second (trend metric, no reference pair)."""
    from ..pipeline.stages import _entity_train_items

    positives = _entity_train_items(result.context)
    users = dict(list(positives.items())[: profile.rollout_users])
    episodes = max(len(users), 1)

    def run() -> None:
        trainer = DARLTrainer(result.graph, result.context.category_graph,
                              result.representations,
                              DARLConfig(epochs=1, seed=profile.seed,
                                         max_path_length=6))
        trainer.train(users)

    elapsed = _median(run, max(profile.repeats - 2, 1))
    return {"episodes_per_s": episodes / elapsed, "episodes": float(episodes)}


def _service_pair(result: PipelineResult,
                  profile: BenchProfile) -> Tuple[RecommendationService,
                                                  RecommendationService]:
    """Two serving facades over the same artifacts: vectorised and scalar."""
    cadrl = result.cadrl
    recommender = cadrl.recommender
    scalar = ScalarPathRecommender(
        cadrl.graph, cadrl.category_graph, cadrl.representations,
        recommender.policy, guidance=recommender.guidance,
        max_path_length=recommender.max_path_length,
        max_entity_actions=recommender.entity_environment.max_actions,
        max_category_actions=recommender.category_environment.max_actions,
        use_dual_agent=recommender.use_dual_agent,
        config=recommender.config)
    serving_config = ServingConfig(cache_capacity=max(4 * profile.beam_users, 64))
    vectorised_service = RecommendationService.from_cadrl(
        cadrl, transe=result.transe, config=serving_config,
        name="bench (vectorised)")
    scalar_service = RecommendationService(
        cadrl.graph, cadrl.category_graph, cadrl.representations,
        recommender.policy, recommender=scalar, transe=result.transe,
        config=serving_config, name="bench (scalar reference)")
    return vectorised_service, scalar_service


def _reset_serving_state(service: RecommendationService,
                         keep_model_caches: bool) -> None:
    """Empty the result cache; optionally also the model-side caches."""
    service.cache.clear()
    if not keep_model_caches:
        recommender = service.recommender
        recommender.clear_milestone_cache()
        environment = recommender.entity_environment
        environment._action_cache.clear()
        environment._array_cache.clear()
        environment._matrix_cache.clear()


def bench_beam_search(result: PipelineResult,
                      profile: BenchProfile) -> Dict[str, Dict[str, float]]:
    """Cold & warm beam-search QPS through the serving facade, both engines."""
    graph = result.graph
    users = graph.entities.ids_of_type(EntityType.USER)[: profile.beam_users]
    vectorised_service, scalar_service = _service_pair(result, profile)

    def burst(service: RecommendationService, keep_model_caches: bool
              ) -> Callable[[], None]:
        def run() -> None:
            _reset_serving_state(service, keep_model_caches=keep_model_caches)
            service.serve_many(service.build_requests(users,
                                                      top_k=profile.beam_top_k))
        return run

    cold_vec, cold_ref = _median_ab(burst(vectorised_service, False),
                                    burst(scalar_service, False),
                                    profile.repeats)
    # Warm: model-side caches stay hot, only the result cache is dropped so
    # every request really runs the beam search again.
    warm_vec, warm_ref = _median_ab(burst(vectorised_service, True),
                                    burst(scalar_service, True),
                                    profile.repeats)
    count = len(users)
    return {
        "beam_cold": {"vectorised_qps": count / cold_vec,
                      "reference_qps": count / cold_ref,
                      "speedup": cold_ref / cold_vec},
        "beam_warm": {"vectorised_qps": count / warm_vec,
                      "reference_qps": count / warm_ref,
                      "speedup": warm_ref / warm_vec},
    }


def bench_cluster(result: PipelineResult,
                  profile: BenchProfile) -> Dict[str, float]:
    """1-shard vs N-shard serving QPS through the cluster facade.

    Both sides answer the identical warm burst (model caches hot, result
    caches cleared before every run, so each request really searches).  The
    cluster runs its shards in-process, so the interesting numbers are the
    routing overhead and the cache partitioning, not a parallel speedup —
    ``relative_throughput`` near 1.0 means the cluster layer is ~free and
    real scaling is left to the per-shard processes.  Trend metric, not gated
    (absolute QPS and the overhead ratio are machine-sensitive).
    """
    from ..cluster import ClusterConfig, ClusterService

    users = result.graph.entities.ids_of_type(EntityType.USER)[: profile.beam_users]
    serving_config = ServingConfig(cache_capacity=max(4 * profile.beam_users, 64))
    single = RecommendationService.from_cadrl(
        result.cadrl, transe=result.transe, config=serving_config,
        name="bench (1 shard)")
    cluster = ClusterService.from_cadrl(
        result.cadrl, transe=result.transe,
        config=ClusterConfig(num_shards=profile.cluster_shards,
                             replication_factor=profile.cluster_replicas),
        serving_config=serving_config, name="bench (cluster)")

    requests = single.build_requests(users, top_k=profile.beam_top_k)

    def single_burst() -> None:
        _reset_serving_state(single, keep_model_caches=True)
        single.serve_many(requests)

    def cluster_burst() -> None:
        for worker in cluster.workers:
            worker.service.cache.clear()
        cluster.serve_many(requests)

    single_s, cluster_s = _median_ab(single_burst, cluster_burst, profile.repeats)
    count = len(users)
    return {
        "single_shard_qps": count / single_s,
        "cluster_qps": count / cluster_s,
        "shards": float(profile.cluster_shards),
        "replicas": float(profile.cluster_replicas),
        "relative_throughput": single_s / cluster_s,
    }


def bench_csr_patch(result: PipelineResult,
                    profile: BenchProfile) -> Dict[str, float]:
    """Delta-patched vs fully recompiled CSR adjacency after a small burst.

    The live-update hot path: a seeded streaming burst mutates a copy of the
    trained graph, then both refresh strategies rebuild the compiled view of
    the *same* mutated graph from the same pre-burst snapshot.  On small
    bursts the patch touches only the dirty rows and bulk-copies everything
    else, so the speedup grows with graph size; gated because the ratio is
    machine-independent.
    """
    import copy

    from ..kg.adjacency import compile_adjacency, patch_adjacency
    from ..live import UpdateLog, synthesize_deltas

    graph = copy.deepcopy(result.graph)
    old = graph.adjacency()
    log = UpdateLog(synthesize_deltas(graph, profile.patch_deltas,
                                      seed=profile.seed))
    applied = log.apply(graph)
    dirty = applied.touched_entities | applied.new_entities

    patch_s, full_s = _median_ab(
        lambda: patch_adjacency(old, graph, dirty),
        lambda: compile_adjacency(graph),
        profile.repeats)
    return {
        "patch_ms": patch_s * 1000.0,
        "full_compile_ms": full_s * 1000.0,
        "deltas": float(applied.count),
        "dirty_entities": float(len(dirty)),
        "num_entities": float(graph.num_entities),
        "speedup": full_s / patch_s,
    }


def bench_autoscale(result: PipelineResult,
                    profile: BenchProfile) -> Dict[str, float]:
    """Bursty virtual-time trace: autoscaled vs static-small vs static-large.

    The same seeded bursty workload replays three ways under a tight
    per-shard admission bound: a static cluster at the autoscale floor
    (sheds under the bursts), a static cluster at the ceiling (never sheds
    but pays for idle capacity throughout), and an autoscaled cluster that
    starts at the floor and earns/releases shards from the trace's own
    shed/queue signals.  Capacity is reported as **shard-ticks** (cluster
    size integrated over the autoscaler's decision ticks).  The autoscaled
    run should shed less than static-small *and* spend fewer shard-ticks
    than static-large; ``deterministic`` re-runs the autoscaled replay and
    compares result signatures.  Virtual-time replay → trend/invariant
    metrics, not wall-clock gated.
    """
    from ..cluster import AutoscaleConfig, Autoscaler, ClusterConfig, ClusterService
    from ..simulate import (
        ReplayDriver,
        TraceClock,
        UserPopulation,
        WorkloadConfig,
        generate_workload,
    )

    graph = result.graph
    population = UserPopulation.from_graph(graph)
    workload = generate_workload(
        population,
        WorkloadConfig(num_requests=profile.autoscale_requests,
                       seed=profile.seed, arrival="bursty"),
        graph)
    serving_config = ServingConfig(cache_capacity=max(4 * profile.beam_users, 64))
    small, large = profile.autoscale_min, profile.autoscale_max
    # 40 ticks per trace: fine enough that the quiet gaps between bursts
    # register as calm ticks, so the replay exercises scale-down as well
    # as scale-up.
    tick = max(workload.duration_s / 40.0, 1e-3)

    def boot(shards: int, clock: "TraceClock", name: str) -> "ClusterService":
        return ClusterService.from_cadrl(
            result.cadrl, transe=result.transe,
            config=ClusterConfig(num_shards=shards,
                                 replication_factor=min(2, shards),
                                 max_queue_per_shard=profile.autoscale_queue),
            serving_config=serving_config, clock=clock, name=name)

    def replay_static(shards: int):
        clock = TraceClock()
        cluster = boot(shards, clock, f"bench (static {shards}-shard)")
        return ReplayDriver(cluster, clock=clock).replay(workload)

    def replay_autoscaled():
        clock = TraceClock()
        cluster = boot(small, clock, "bench (autoscaled)")
        autoscaler = Autoscaler(
            cluster,
            AutoscaleConfig(min_shards=small, max_shards=large,
                            tick_interval_s=tick, seed=profile.seed),
            clock=clock)
        return autoscaler, ReplayDriver(autoscaler, clock=clock).replay(workload)

    def sheds(replay) -> int:
        return sum(record.shed for record in replay.records)

    small_replay = replay_static(small)
    large_replay = replay_static(large)
    autoscaler, auto_replay = replay_autoscaled()
    _, repeat_replay = replay_autoscaled()

    ticks = max(autoscaler.ticks, 1)
    return {
        "requests": float(len(workload)),
        "small_shards": float(small),
        "large_shards": float(large),
        "max_queue_per_shard": float(profile.autoscale_queue),
        "small_shed": float(sheds(small_replay)),
        "large_shed": float(sheds(large_replay)),
        "autoscaled_shed": float(sheds(auto_replay)),
        "scale_ups": float(sum(e.action == "up" for e in autoscaler.events)),
        "scale_downs": float(sum(e.action == "down" for e in autoscaler.events)),
        "migrated_entries": float(sum(e.migrated_entries
                                      for e in autoscaler.events)),
        "autoscaled_shard_ticks": float(autoscaler.shard_ticks),
        "small_shard_ticks": float(small * ticks),
        "large_shard_ticks": float(large * ticks),
        "capacity_saved_vs_large": 1.0 - autoscaler.shard_ticks / (large * ticks),
        "deterministic": float(auto_replay.signature()
                               == repeat_replay.signature()),
    }


def bench_fault_overhead(result: PipelineResult,
                         profile: BenchProfile) -> Dict[str, float]:
    """Cost of the armored fault path on a fault-free replay.

    The same seeded virtual-time workload replays twice: through a bare
    cluster (no breaker, no injector — the legacy dispatch path) and through
    one wearing the full defensive kit (per-shard circuit breakers plus a
    fault injector carrying an *empty* plan, so every hook fires but no
    fault ever does).  The overhead ratio is the price every chaos-free
    request pays for the breaker consult, the injector shims, and the
    provenance bookkeeping.  Both replays must produce bit-identical
    signatures — an armored cluster that never sees a fault must not change
    a single answer.  Trend metric, not gated (in-process wall time).
    """
    from ..cluster import CircuitBreaker, ClusterConfig, ClusterService
    from ..faults import FaultInjector, FaultPlan
    from ..simulate import ReplayDriver, TraceClock, UserPopulation, \
        WorkloadConfig, generate_workload

    graph = result.graph
    population = UserPopulation.from_graph(graph)
    workload = generate_workload(
        population,
        WorkloadConfig(num_requests=profile.autoscale_requests,
                       seed=profile.seed),
        graph)
    serving_config = ServingConfig(cache_capacity=max(4 * profile.beam_users, 64))
    cluster_config = ClusterConfig(num_shards=profile.cluster_shards,
                                   replication_factor=profile.cluster_replicas)

    def replay(armored: bool):
        clock = TraceClock()
        breaker = CircuitBreaker(clock=clock) if armored else None
        cluster = ClusterService.from_cadrl(
            result.cadrl, transe=result.transe, config=cluster_config,
            serving_config=serving_config, clock=clock, breaker=breaker,
            name=f"bench ({'armored' if armored else 'bare'})")
        if armored:
            FaultInjector(FaultPlan(events=()), clock).install(cluster)
        return ReplayDriver(cluster, clock=clock).replay(workload)

    repeats = max(profile.repeats - 2, 1)
    bare_s, armored_s = _median_ab(lambda: replay(False),
                                   lambda: replay(True), repeats)
    count = len(workload)
    return {
        "bare_qps": count / bare_s,
        "armored_qps": count / armored_s,
        "overhead_ratio": armored_s / bare_s,
        "identical_signatures": float(replay(False).signature()
                                      == replay(True).signature()),
    }


def bench_adversarial(result: PipelineResult,
                      profile: BenchProfile) -> Dict[str, float]:
    """Cost of a cache-busting adversary vs the same trace unmolested.

    One seeded workload replays twice through identically-built virtual-time
    clusters: as generated (the Zipf skew keeps the result cache useful) and
    reshaped by the ``cache-buster`` scenario (rotating ``exclude_items`` /
    ``top_k``, so nearly every request is a distinct cache key and the
    full-search tier eats the load).  Reports the hit-rate collapse — a
    trace property, deterministic — and the wall-clock slowdown ratio the
    adversary inflicts (trend metric, not gated: in-process wall time).
    ``deterministic`` re-runs the adversarial replay and compares result
    signatures.
    """
    from ..cluster import ClusterConfig, ClusterService
    from ..scenarios import ScenarioContext, get_scenario
    from ..simulate import (ReplayDriver, TraceClock, UserPopulation,
                            WorkloadConfig, generate_workload)

    graph = result.graph
    population = UserPopulation.from_graph(graph)
    baseline = generate_workload(
        population,
        WorkloadConfig(num_requests=profile.scenario_requests,
                       seed=profile.seed),
        graph)
    adversarial = get_scenario("cache-buster").apply(
        baseline, ScenarioContext(graph=graph, population=population))
    serving_config = ServingConfig(cache_capacity=max(4 * profile.beam_users, 64))
    cluster_config = ClusterConfig(num_shards=profile.cluster_shards,
                                   replication_factor=profile.cluster_replicas)

    def replay(workload):
        clock = TraceClock()
        cluster = ClusterService.from_cadrl(
            result.cadrl, transe=result.transe, config=cluster_config,
            serving_config=serving_config, clock=clock,
            name="bench (adversarial)")
        return ReplayDriver(cluster, clock=clock).replay(workload)

    repeats = max(profile.repeats - 2, 1)
    baseline_s, adversarial_s = _median_ab(lambda: replay(baseline),
                                           lambda: replay(adversarial),
                                           repeats)
    baseline_replay = replay(baseline)
    adversarial_replay = replay(adversarial)
    count = len(baseline)
    return {
        "requests": float(count),
        "baseline_hit_rate": baseline_replay.cache_hit_rate(),
        "adversarial_hit_rate": adversarial_replay.cache_hit_rate(),
        "hit_rate_drop": (baseline_replay.cache_hit_rate()
                          - adversarial_replay.cache_hit_rate()),
        "baseline_qps": count / baseline_s,
        "adversarial_qps": count / adversarial_s,
        "slowdown_ratio": adversarial_s / baseline_s,
        "deterministic": float(adversarial_replay.signature()
                               == replay(adversarial).signature()),
    }


# --------------------------------------------------------------------------- #
# orchestration
# --------------------------------------------------------------------------- #
def build_stack(profile: BenchProfile,
                artifacts: Optional[Union[str, Path]] = None) -> PipelineResult:
    """The trained stack the macro benchmarks run against.

    Built through the standard pipeline (``data → … → train``) so the bench
    exercises exactly what ``python -m repro run`` produces; pass
    ``artifacts`` to reuse a persisted pipeline directory instead.
    """
    if artifacts is not None:
        from ..pipeline import load_pipeline

        return load_pipeline(artifacts, until=("train",))
    return Pipeline(profile.run_config()).run(until=("train",))


def run_bench(profile: Union[str, BenchProfile],
              artifacts: Optional[Union[str, Path]] = None,
              now: Optional[datetime] = None) -> Dict:
    """Run every benchmark of ``profile`` and return the result document."""
    if isinstance(profile, str):
        try:
            profile = PROFILES[profile]
        except KeyError:
            raise ValueError(f"unknown bench profile {profile!r}; "
                             f"choose from {sorted(PROFILES)}") from None
    profile.validate()
    now = now or datetime.now(timezone.utc)

    build_start = time.perf_counter()
    result = build_stack(profile, artifacts)
    build_elapsed = time.perf_counter() - build_start

    metrics: Dict[str, Dict[str, float]] = {}
    metrics["transe"] = bench_transe(result, profile)
    metrics["rollouts"] = bench_rollouts(result, profile)
    metrics.update(bench_beam_search(result, profile))
    metrics["cluster"] = bench_cluster(result, profile)
    metrics["csr_patch"] = bench_csr_patch(result, profile)
    metrics["autoscale"] = bench_autoscale(result, profile)
    metrics["fault_overhead"] = bench_fault_overhead(result, profile)
    metrics["adversarial"] = bench_adversarial(result, profile)

    return {
        "meta": {
            "timestamp": now.strftime("%Y-%m-%dT%H:%M:%SZ"),
            "profile": profile.name,
            "seed": profile.seed,
            "dataset": profile.dataset,
            "scale": profile.scale,
            "stack_build_s": round(build_elapsed, 3),
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "metrics": metrics,
        "gated": list(GATED_METRICS),
    }


def write_bench_json(document: Dict, out_dir: Union[str, Path]) -> Path:
    """Persist one bench run as ``BENCH_<timestamp>.json`` under ``out_dir``."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = document["meta"]["timestamp"].replace(":", "").replace("-", "")
    path = out_dir / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def _lookup(metrics: Dict, dotted: str) -> Optional[float]:
    node = metrics
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


@dataclass
class Regression:
    """One gated metric that fell below its allowed floor."""

    metric: str
    current: float
    baseline: float
    allowed: float

    def describe(self) -> str:
        return (f"{self.metric}: {self.current:.2f} < allowed {self.allowed:.2f} "
                f"(baseline {self.baseline:.2f})")


def compare_with_baseline(document: Dict, baseline: Dict,
                          threshold: float = 0.30) -> List[Regression]:
    """Gated-ratio comparison: current must stay within ``threshold`` of baseline.

    Only the dimensionless speedup ratios are gated — they survive machine
    changes, unlike absolute QPS.  A metric missing on either side is skipped
    (new benchmarks must not fail old baselines and vice versa).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie strictly between 0 and 1")
    regressions: List[Regression] = []
    for metric in GATED_METRICS:
        current = _lookup(document.get("metrics", {}), metric)
        reference = _lookup(baseline.get("metrics", {}), metric)
        if current is None or reference is None:
            continue
        allowed = reference * (1.0 - threshold)
        if current < allowed:
            regressions.append(Regression(metric=metric, current=current,
                                          baseline=reference, allowed=allowed))
    return regressions


def load_baseline(path: Union[str, Path]) -> Dict:
    """Read a committed baseline (or any previous ``BENCH_*.json``)."""
    return json.loads(Path(path).read_text())


def default_baseline_path(profile_name: str,
                          root: Optional[Union[str, Path]] = None) -> Path:
    """Where the committed baseline for a profile lives.

    With no explicit ``root`` the working directory is tried first, then the
    repository checkout this module lives in — so ``python -m repro bench``
    finds the committed baseline regardless of the invocation directory.
    """
    name = f"bench_baseline_{profile_name}.json"
    if root is not None:
        return Path(root) / name
    candidates = (Path("benchmarks") / name,
                  Path(__file__).resolve().parents[3] / "benchmarks" / name)
    for candidate in candidates:
        if candidate.exists():
            return candidate
    return candidates[0]


def render_report(document: Dict) -> str:
    """Human-readable summary of one bench run."""
    metrics = document["metrics"]
    meta = document["meta"]
    lines = [
        f"bench profile={meta['profile']} dataset={meta['dataset']} "
        f"scale={meta['scale']} seed={meta['seed']} "
        f"(stack build {meta['stack_build_s']:.1f}s)",
        f"  transe     {metrics['transe']['vectorised_epochs_per_s']:8.1f} epochs/s "
        f"(reference {metrics['transe']['reference_epochs_per_s']:.1f}, "
        f"speedup {metrics['transe']['speedup']:.2f}x)",
        f"  rollouts   {metrics['rollouts']['episodes_per_s']:8.1f} episodes/s",
        f"  beam cold  {metrics['beam_cold']['vectorised_qps']:8.1f} QPS "
        f"(reference {metrics['beam_cold']['reference_qps']:.1f}, "
        f"speedup {metrics['beam_cold']['speedup']:.2f}x)",
        f"  beam warm  {metrics['beam_warm']['vectorised_qps']:8.1f} QPS "
        f"(reference {metrics['beam_warm']['reference_qps']:.1f}, "
        f"speedup {metrics['beam_warm']['speedup']:.2f}x)",
    ]
    if "cluster" in metrics:
        cluster = metrics["cluster"]
        lines.append(
            f"  cluster    {cluster['cluster_qps']:8.1f} QPS over "
            f"{cluster['shards']:.0f} shards ×{cluster['replicas']:.0f} "
            f"(1 shard {cluster['single_shard_qps']:.1f}, "
            f"relative {cluster['relative_throughput']:.2f}x)")
    if "csr_patch" in metrics:
        patch = metrics["csr_patch"]
        lines.append(
            f"  csr patch  {patch['patch_ms']:8.2f} ms for "
            f"{patch['deltas']:.0f} deltas "
            f"(full recompile {patch['full_compile_ms']:.2f} ms, "
            f"speedup {patch['speedup']:.2f}x)")
    if "autoscale" in metrics:
        scaling = metrics["autoscale"]
        lines.append(
            f"  autoscale  shed {scaling['autoscaled_shed']:.0f} vs "
            f"static-small {scaling['small_shed']:.0f}; "
            f"{scaling['autoscaled_shard_ticks']:.0f} shard-ticks vs "
            f"static-large {scaling['large_shard_ticks']:.0f} "
            f"({scaling['scale_ups']:.0f} ups, {scaling['scale_downs']:.0f} "
            f"downs, {'deterministic' if scaling['deterministic'] else 'NON-DETERMINISTIC'})")
    if "fault_overhead" in metrics:
        armor = metrics["fault_overhead"]
        lines.append(
            f"  fault path {armor['armored_qps']:8.1f} QPS armored "
            f"(bare {armor['bare_qps']:.1f}, "
            f"overhead {armor['overhead_ratio']:.2f}x, "
            f"{'identical answers' if armor['identical_signatures'] else 'ANSWERS DIVERGED'})")
    if "adversarial" in metrics:
        adversary = metrics["adversarial"]
        lines.append(
            f"  adversary  hit rate {100 * adversary['adversarial_hit_rate']:.1f}% "
            f"under cache-buster (baseline "
            f"{100 * adversary['baseline_hit_rate']:.1f}%, "
            f"slowdown {adversary['slowdown_ratio']:.2f}x, "
            f"{'deterministic' if adversary['deterministic'] else 'NON-DETERMINISTIC'})")
    return "\n".join(lines)
