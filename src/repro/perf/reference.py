"""Frozen scalar reference implementations of the vectorised hot paths.

When the beam search, the pruning and the TransE trainer were vectorised,
their original one-Python-iteration-per-beam/-triplet implementations moved
here verbatim.  They serve two purposes:

* **equivalence oracles** — ``tests/test_perf_equivalence.py`` pins the
  vectorised implementations to these references (identical top-k items and
  explanation paths, all-close embeddings, identical pruned action sets);
* **in-run benchmark baselines** — ``python -m repro bench`` measures both
  sides in the same process on the same data, so the reported speedups are
  machine-independent ratios rather than absolute timings.

Nothing in the production stack calls this module.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..darl.collaborative import action_target_categories
from ..darl.inference import PathRecommender
from ..embeddings.transe import TransEConfig, TransEModel
from ..kg.graph import KnowledgeGraph
from ..kg.relations import Relation
from ..rl.environment import EntityState
from ..rl.trajectory import RecommendationPath

NumpyLSTMState = Tuple[np.ndarray, np.ndarray]


def _relation_index_reference(relation: Relation) -> int:
    """The pre-PR ``relation_index``: a linear scan of the enum per lookup.

    ``repro.kg.relations.relation_index`` is a dict hit nowadays; the
    reference trainer keeps the original O(num_relations) lookup so the
    baseline reflects the true pre-PR cost of building the triplet table.
    """
    return list(Relation).index(relation)


# --------------------------------------------------------------------------- #
# scalar beam search (pre-vectorisation PathRecommender.search)
# --------------------------------------------------------------------------- #
@dataclass
class _Beam:
    """Internal beam-search state (one partial entity-agent walk)."""

    entity_state: EntityState
    entity_hidden: np.ndarray
    entity_lstm: NumpyLSTMState
    last_relation: Relation
    log_prob: float
    hops: Tuple[Tuple[Relation, int], ...] = ()


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    return shifted - np.log(np.exp(shifted).sum())


class ScalarPathRecommender(PathRecommender):
    """A :class:`PathRecommender` whose beam search runs one beam at a time.

    Shares every collaborator (environments, caches, policy, milestone
    rollout) with the vectorised implementation — only the search loop
    differs — so a comparison between the two isolates exactly the
    vectorisation change.
    """

    def recommend_many(self, user_entities, exclude_items=None, top_k=None):
        """Pre-vectorisation batch path: one independent search per user."""
        exclude_items = exclude_items or {}
        return {
            user: self.recommend(user, exclude_items.get(user, set()), top_k)
            for user in dict.fromkeys(user_entities)
        }

    def recommend_requests(self, requests):
        """Pre-vectorisation request batching: one scalar search per request."""
        return [self.recommend(user, exclude_items, top_k)
                for user, exclude_items, top_k in requests]

    def search(self, user_entity: int, exclude_items: Set[int],
               keep_all_paths: bool = False,
               milestones: Optional[List[Optional[int]]] = None
               ) -> Dict[int, RecommendationPath]:
        if milestones is None:
            milestones = self.category_milestones(user_entity)
        beams = [self._initial_beam(user_entity)]
        found: Dict[int, RecommendationPath] = {}

        for depth in range(1, self.max_path_length + 1):
            guided_category = milestones[depth - 1]
            expansions: List[_Beam] = []
            for beam in beams:
                expansions.extend(self._expand(beam, guided_category))
            if not expansions:
                break
            expansions.sort(key=lambda candidate: candidate.log_prob, reverse=True)
            survivors = expansions[: self.config.beam_width]
            beams = [self._advance_history(beam) for beam in survivors]

            if depth >= self.config.min_path_length:
                for beam in beams:
                    self._collect_beam(beam, user_entity, exclude_items, found,
                                       keep_all_paths)
        return found

    def _initial_beam(self, user_entity: int) -> _Beam:
        entity_state = self.entity_environment.initial_state(user_entity)
        lstm_state = self.policy.initial_state_numpy()
        hidden, lstm_state = self.policy.encode_entity_step_numpy(
            self.representations.relation_vector(Relation.SELF_LOOP),
            self.representations.entity_vector(user_entity), None, lstm_state)
        return _Beam(entity_state=entity_state, entity_hidden=hidden,
                     entity_lstm=lstm_state, last_relation=Relation.SELF_LOOP,
                     log_prob=0.0)

    def _expand(self, beam: _Beam, guided_category: Optional[int]) -> List[_Beam]:
        """Generate the highest-probability child beams of ``beam``."""
        actions = self.entity_environment.actions(beam.entity_state,
                                                  target_category=guided_category)
        if not actions:
            return []
        cache_key = (beam.entity_state.current_entity, guided_category,
                     beam.entity_state.user_entity)
        action_matrix = self.entity_environment.action_matrix(actions, cache_key=cache_key)
        logits = self.policy.entity_action_logits_numpy(
            self.representations.entity_vector(beam.entity_state.current_entity),
            self.representations.relation_vector(beam.last_relation),
            beam.entity_hidden, action_matrix)
        categories = action_target_categories(self.graph, actions)
        logits = logits + self.guidance.guidance_bonus(categories, guided_category)
        log_probs = _log_softmax(logits)

        order = np.argsort(-log_probs)[: self.config.expansions_per_beam]
        children: List[_Beam] = []
        for index in order:
            relation, target = actions[index]
            children.append(replace(
                beam,
                entity_state=self.entity_environment.step(beam.entity_state,
                                                          actions[index]),
                last_relation=relation,
                log_prob=beam.log_prob + float(log_probs[index]),
                hops=beam.hops + ((relation, target),),
            ))
        return children

    def _advance_history(self, beam: _Beam) -> _Beam:
        """Update the entity history encoder for a surviving beam."""
        relation, target = beam.hops[-1]
        hidden, lstm_state = self.policy.encode_entity_step_numpy(
            self.representations.relation_vector(relation),
            self.representations.entity_vector(target),
            None, beam.entity_lstm)
        return replace(beam, entity_hidden=hidden, entity_lstm=lstm_state)

    def _collect_beam(self, beam: _Beam, user_entity: int, exclude_items: Set[int],
                      found: Dict[int, RecommendationPath],
                      keep_all_paths: bool) -> None:
        """Record the beam's endpoint if it is a recommendable item."""
        entity = beam.entity_state.current_entity
        if not self.entity_environment.is_item(entity):
            return
        if entity in exclude_items:
            return
        path = RecommendationPath(user_entity=user_entity, item_entity=entity,
                                  hops=beam.hops, score=beam.log_prob)
        key = entity if not keep_all_paths else len(found)
        existing = found.get(key)
        if existing is None or path.score > existing.score:
            found[key] = path


# --------------------------------------------------------------------------- #
# scalar TransE training (pre-vectorisation train_transe)
# --------------------------------------------------------------------------- #
def train_transe_reference(graph: KnowledgeGraph,
                           config: Optional[TransEConfig] = None
                           ) -> Tuple[TransEModel, List[float]]:
    """The pre-vectorisation TransE trainer, kept verbatim.

    Per-triplet index columns stay strided views, the triplet table is rebuilt
    from Python objects on every call, and each margin step issues six
    ``np.add.at`` scatter passes — exactly the costs the vectorised
    :func:`repro.embeddings.train_transe` removes.  Draws from the RNG in the
    same order as the vectorised trainer, so same-seed runs are comparable.
    """
    config = config or TransEConfig()
    config.validate()
    model = TransEModel(graph.num_entities, config)
    rng = np.random.default_rng(config.seed + 1)

    triplets = np.array([(t.head, _relation_index_reference(t.relation), t.tail)
                         for t in graph.triplets()], dtype=np.int64)
    if len(triplets) == 0:
        return model, []

    losses: List[float] = []
    num_entities = graph.num_entities
    for _ in range(config.epochs):
        order = rng.permutation(len(triplets))
        epoch_loss = 0.0
        count = 0
        for start in range(0, len(order), config.batch_size):
            batch = triplets[order[start:start + config.batch_size]]
            heads, relations, tails = batch[:, 0], batch[:, 1], batch[:, 2]
            for _ in range(config.negative_samples):
                corrupt_heads = rng.random(len(batch)) < 0.5
                neg_heads = heads.copy()
                neg_tails = tails.copy()
                replacements = rng.integers(0, num_entities, size=len(batch))
                neg_heads[corrupt_heads] = replacements[corrupt_heads]
                neg_tails[~corrupt_heads] = replacements[~corrupt_heads]

                loss = _margin_step_reference(model, config, heads, relations, tails,
                                              neg_heads, neg_tails)
                epoch_loss += loss
                count += 1
        model._normalize_entities()
        losses.append(epoch_loss / max(count, 1))
    return model, losses


def _margin_step_reference(model: TransEModel, config: TransEConfig,
                           heads: np.ndarray, relations: np.ndarray,
                           tails: np.ndarray, neg_heads: np.ndarray,
                           neg_tails: np.ndarray) -> float:
    """One SGD step of the margin ranking loss; returns the batch loss."""
    ent = model.entity_embeddings
    rel = model.relation_embeddings

    pos_diff = ent[heads] + rel[relations] - ent[tails]
    neg_diff = ent[neg_heads] + rel[relations] - ent[neg_tails]
    pos_dist = np.linalg.norm(pos_diff, axis=1)
    neg_dist = np.linalg.norm(neg_diff, axis=1)
    violation = config.margin + pos_dist - neg_dist
    active = violation > 0
    if not np.any(active):
        return 0.0  # repro: ignore[NAN001] no margin violations: the batch loss really is 0

    lr = config.learning_rate
    # d/dx ||x|| = x / ||x||
    pos_grad = pos_diff[active] / (pos_dist[active, None] + 1e-12)
    neg_grad = neg_diff[active] / (neg_dist[active, None] + 1e-12)

    np.add.at(ent, heads[active], -lr * pos_grad)
    np.add.at(ent, tails[active], lr * pos_grad)
    np.add.at(rel, relations[active], -lr * pos_grad)
    np.add.at(ent, neg_heads[active], lr * neg_grad)
    np.add.at(ent, neg_tails[active], -lr * neg_grad)
    np.add.at(rel, relations[active], lr * neg_grad)

    return float(np.mean(violation[active]))
