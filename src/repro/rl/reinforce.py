"""REINFORCE policy-gradient utilities (Williams, 1992).

Both CADRL's dual agents and the single-agent baselines update their policies
with REINFORCE over discounted returns with a moving-average baseline to cut
variance.  The loss is assembled from the log-probability tensors recorded
during the rollout, so one ``backward()`` call back-propagates through the
shared policy networks (and, for CADRL, through nothing else — the
representations are frozen by that point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


from .. import nn
from ..nn import Tensor
from .trajectory import discounted_returns


@dataclass
class ReinforceConfig:
    """Hyper-parameters of the policy-gradient update."""

    gamma: float = 0.99
    entropy_weight: float = 0.0
    baseline_momentum: float = 0.9
    gradient_clip: float = 5.0

    def validate(self) -> None:
        if not (0.0 <= self.gamma <= 1.0):
            raise ValueError("gamma must lie in [0, 1]")
        if not (0.0 <= self.baseline_momentum < 1.0):
            raise ValueError("baseline_momentum must lie in [0, 1)")


class MovingBaseline:
    """Exponential moving average of episode returns, one per reward stream."""

    def __init__(self, momentum: float = 0.9) -> None:
        self.momentum = momentum
        self._value: Optional[float] = None

    @property
    def value(self) -> float:
        return 0.0 if self._value is None else self._value

    def update(self, episode_return: float) -> float:
        """Fold a new episode return into the baseline and return the new value."""
        if self._value is None:
            self._value = episode_return
        else:
            self._value = self.momentum * self._value + (1.0 - self.momentum) * episode_return
        return self._value


def policy_gradient_loss(log_probs: Sequence[Tensor], rewards: Sequence[float],
                         config: ReinforceConfig, baseline: Optional[MovingBaseline] = None,
                         entropies: Optional[Sequence[Tensor]] = None) -> Optional[Tensor]:
    """Assemble the REINFORCE loss ``-Σ_l (G_l - b) log π(a_l|s_l)``.

    Returns ``None`` when there are no recorded decisions (e.g. an episode that
    terminated immediately), so callers can skip the update cleanly.
    """
    config.validate()
    if len(log_probs) != len(rewards):
        raise ValueError("log_probs and rewards must have the same length")
    if not log_probs:
        return None
    returns = discounted_returns(rewards, config.gamma)
    baseline_value = baseline.value if baseline is not None else 0.0
    if baseline is not None:
        baseline.update(returns[0])

    loss: Optional[Tensor] = None
    for log_prob, step_return in zip(log_probs, returns):
        advantage = step_return - baseline_value
        term = log_prob * (-advantage)
        loss = term if loss is None else loss + term
    if entropies and config.entropy_weight > 0.0:
        for entropy in entropies:
            loss = loss + entropy * (-config.entropy_weight)
    return loss


def apply_update(loss: Optional[Tensor], parameters: Sequence[Tensor],
                 optimiser: nn.Optimizer, config: ReinforceConfig) -> float:
    """Backpropagate ``loss`` and step the optimiser; returns the loss value."""
    if loss is None:
        return float("nan")  # no update performed, so no loss was measured
    optimiser.zero_grad()
    loss.backward()
    nn.clip_grad_norm(list(parameters), config.gradient_clip)
    optimiser.step()
    return loss.item()
