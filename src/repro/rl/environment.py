"""Entity-level and category-level MDP environments over the knowledge graph.

Both environments are thin, stateless views over the graph substrates: they
enumerate valid actions (with pruning), expose representation lookups for
states and actions, and answer reward queries.  Keeping them stateless makes
beam-search inference and vectorised training rollouts straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..cggnn.model import Representations
from ..kg.category_graph import CategoryGraph
from ..kg.entities import EntityType
from ..kg.graph import KnowledgeGraph
from ..kg.pruning import Action, category_guided_prune, degree_prune, ensure_self_loop
from ..kg.relations import Relation


@dataclass
class EntityState:
    """State of the entity agent: ``s^e_l = (u, e_l)`` plus the step counter."""

    user_entity: int
    current_entity: int
    step: int


@dataclass
class CategoryState:
    """State of the category agent: ``s^c_l = (u, c_s, c_l)``."""

    user_entity: int
    start_category: int
    current_category: int
    step: int


class EntityEnvironment:
    """The entity agent's view of the KG (action space ``A^e``)."""

    def __init__(self, graph: KnowledgeGraph, representations: Representations,
                 max_actions: int = 50, rng: Optional[np.random.Generator] = None) -> None:
        if max_actions <= 0:
            raise ValueError("max_actions must be positive")
        self.graph = graph
        self.representations = representations
        self.max_actions = max_actions
        self.rng = rng or np.random.default_rng(0)
        # Pruned-action and action-matrix caches.  Both are keyed by the
        # (entity, guided category) pair; the KG and the representations are
        # frozen during an RL stage, so the cached values never go stale.
        self._action_cache: Dict[Tuple[int, Optional[int]], List[Action]] = {}
        self._matrix_cache: Dict[Tuple[int, Optional[int]], np.ndarray] = {}

    # -- state/action representations ---------------------------------- #
    def state_vector(self, state: EntityState) -> np.ndarray:
        """Concatenation of the user and current-entity representations."""
        return np.concatenate([
            self.representations.entity_vector(state.user_entity),
            self.representations.entity_vector(state.current_entity),
        ])

    def action_vector(self, action: Action) -> np.ndarray:
        """Concatenation of the relation and target-entity representations."""
        relation, target = action
        return np.concatenate([
            self.representations.relation_vector(relation),
            self.representations.entity_vector(target),
        ])

    def action_matrix(self, actions: Sequence[Action],
                      cache_key: Optional[Tuple[int, Optional[int]]] = None) -> np.ndarray:
        """Stacked action vectors, shape ``(len(actions), 2 * dim)``."""
        if cache_key is not None and cache_key in self._matrix_cache:
            return self._matrix_cache[cache_key]
        matrix = np.stack([self.action_vector(action) for action in actions])
        if cache_key is not None:
            self._matrix_cache[cache_key] = matrix
        return matrix

    # -- action enumeration --------------------------------------------- #
    def actions(self, state: EntityState, target_category: Optional[int] = None,
                forbid_return_to_user: bool = True) -> List[Action]:
        """Valid pruned actions from ``state``.

        ``target_category`` enables CADRL's category-guided pruning; baselines
        pass ``None`` and get plain degree pruning.  A self-loop is always
        available so the agent can terminate early.
        """
        cache_key = (state.current_entity, target_category)
        if forbid_return_to_user and cache_key in self._action_cache:
            cached = self._action_cache[cache_key]
            return [action for action in cached
                    if not (action[1] == state.user_entity
                            and state.current_entity != state.user_entity)]
        if target_category is None:
            candidates = degree_prune(self.graph, state.current_entity, self.max_actions,
                                      rng=self.rng)
        else:
            candidates = category_guided_prune(self.graph, state.current_entity,
                                               self.max_actions, target_category)
        candidates = ensure_self_loop(candidates, state.current_entity)
        if forbid_return_to_user:
            self._action_cache[cache_key] = candidates
            return [action for action in candidates
                    if not (action[1] == state.user_entity
                            and state.current_entity != state.user_entity)]
        return candidates

    def step(self, state: EntityState, action: Action) -> EntityState:
        """Deterministic transition: move to the action's target entity."""
        _, target = action
        return EntityState(user_entity=state.user_entity, current_entity=target,
                           step=state.step + 1)

    # -- rewards --------------------------------------------------------- #
    def terminal_reward(self, state: EntityState, positive_items: Set[int]) -> float:
        """Binary terminal reward ``1_{Vu}(e_L)`` (Section IV-C.2)."""
        return 1.0 if state.current_entity in positive_items else 0.0

    def is_item(self, entity_id: int) -> bool:
        return self.graph.entities.type_of(entity_id) == EntityType.ITEM

    def initial_state(self, user_entity: int) -> EntityState:
        return EntityState(user_entity=user_entity, current_entity=user_entity, step=0)


class CategoryEnvironment:
    """The category agent's view of ``Gc`` (action space ``A^c``)."""

    def __init__(self, category_graph: CategoryGraph, graph: KnowledgeGraph,
                 representations: Representations, max_actions: int = 10) -> None:
        if max_actions <= 0:
            raise ValueError("max_actions must be positive")
        self.category_graph = category_graph
        self.graph = graph
        self.representations = representations
        self.max_actions = max_actions

    def state_vector(self, state: CategoryState) -> np.ndarray:
        """Concatenation of user, start-category and current-category vectors."""
        return np.concatenate([
            self.representations.entity_vector(state.user_entity),
            self.representations.category_vector(state.start_category),
            self.representations.category_vector(state.current_category),
        ])

    def action_vector(self, category_id: int) -> np.ndarray:
        return self.representations.category_vector(category_id)

    def action_matrix(self, categories: Sequence[int]) -> np.ndarray:
        return np.stack([self.action_vector(category) for category in categories])

    def actions(self, state: CategoryState) -> List[int]:
        """Adjacent categories plus the self-loop, truncated to ``max_actions``.

        Truncation keeps the categories whose representation is most similar to
        the user's, a cheap relevance heuristic that bounds ``|A^c|`` exactly
        like the paper's hyper-parameter (max 10).
        """
        moves = self.category_graph.actions(state.current_category, include_self_loop=True)
        if len(moves) <= self.max_actions:
            return moves
        user_vector = self.representations.entity_vector(state.user_entity)
        scores = []
        for category in moves:
            vector = self.representations.category_vector(category)
            denominator = (np.linalg.norm(user_vector) * np.linalg.norm(vector)) or 1.0
            scores.append(float(np.dot(user_vector, vector) / denominator))
        keep = np.argsort(scores)[::-1][: self.max_actions - 1]
        selected = [moves[i] for i in sorted(keep)]
        if state.current_category not in selected:
            selected.insert(0, state.current_category)
        return selected

    def step(self, state: CategoryState, category_id: int) -> CategoryState:
        return CategoryState(user_entity=state.user_entity,
                             start_category=state.start_category,
                             current_category=category_id,
                             step=state.step + 1)

    def terminal_reward(self, state: CategoryState, target_categories: Set[int]) -> float:
        """Binary terminal reward ``1(c_L)`` — reached a category holding a target item."""
        return 1.0 if state.current_category in target_categories else 0.0

    def initial_state(self, user_entity: int, start_category: int) -> CategoryState:
        return CategoryState(user_entity=user_entity, start_category=start_category,
                             current_category=start_category, step=0)

    def start_category_for(self, user_entity: int, fallback: int = 0) -> int:
        """Initial category: the category of an item directly purchased by the user."""
        purchased = self.graph.purchased_items(user_entity)
        for item in purchased:
            category = self.graph.category_of(item)
            if category is not None:
                return category
        return fallback
