"""Entity-level and category-level MDP environments over the knowledge graph.

Both environments are thin, stateless views over the graph substrates: they
enumerate valid actions (with pruning), expose representation lookups for
states and actions, and answer reward queries.  Keeping them stateless makes
beam-search inference and vectorised training rollouts straightforward.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, Set, Tuple, TypeVar

import numpy as np

from ..cggnn.model import Representations
from ..kg.category_graph import CategoryGraph
from ..kg.entities import EntityType
from ..kg.graph import KnowledgeGraph
from ..kg.pruning import (
    ActionArrays,
    Action,
    category_guided_prune_arrays,
    degree_prune_arrays,
    ensure_self_loop_arrays,
    entity_prune_rng,
)
from ..kg.relations import RELATION_LIST, relation_index

_V = TypeVar("_V")


class LRUCache(Generic[_V]):
    """Tiny bounded mapping with least-recently-used eviction.

    The entity environment's action/matrix caches used to be plain dicts that
    grew one entry per distinct ``(entity, milestone)`` pair for the lifetime
    of the process — unbounded in a long-running serving deployment.  This
    cache bounds them while keeping the hot entries resident.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._data: "OrderedDict[Tuple, _V]" = OrderedDict()

    def get(self, key: Tuple) -> Optional[_V]:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: Tuple, value: _V) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


@dataclass
class EntityState:
    """State of the entity agent: ``s^e_l = (u, e_l)`` plus the step counter."""

    user_entity: int
    current_entity: int
    step: int


@dataclass
class CategoryState:
    """State of the category agent: ``s^c_l = (u, c_s, c_l)``."""

    user_entity: int
    start_category: int
    current_category: int
    step: int


class EntityEnvironment:
    """The entity agent's view of the KG (action space ``A^e``)."""

    def __init__(self, graph: KnowledgeGraph, representations: Representations,
                 max_actions: int = 50, rng: Optional[np.random.Generator] = None,
                 cache_capacity: int = 65536) -> None:
        if max_actions <= 0:
            raise ValueError("max_actions must be positive")
        self.graph = graph
        self.representations = representations
        self.max_actions = max_actions
        self.rng = rng or np.random.default_rng(0)
        # Degree-pruning tie-breaks draw from a per-entity substream derived
        # from (prune_seed, entity_id), so an entity's action set never depends
        # on the order in which entities were first visited.  The base seed is
        # drawn once from the caller's generator: same seed in, same substreams.
        self._prune_seed = int(self.rng.integers(np.iinfo(np.int64).max))
        # Pruned-action and action-matrix caches.  Keyed by the (entity,
        # guided category) pair — the KG and the representations are frozen
        # during an RL stage, so entries never go stale — and LRU-bounded so a
        # long-lived serving process cannot grow them without limit.
        self._action_cache: LRUCache[List[Action]] = LRUCache(cache_capacity)
        self._array_cache: LRUCache[ActionArrays] = LRUCache(cache_capacity)
        self._matrix_cache: LRUCache[np.ndarray] = LRUCache(cache_capacity)

    # -- state/action representations ---------------------------------- #
    def state_vector(self, state: EntityState) -> np.ndarray:
        """Concatenation of the user and current-entity representations."""
        return np.concatenate([
            self.representations.entity_vector(state.user_entity),
            self.representations.entity_vector(state.current_entity),
        ])

    def action_vector(self, action: Action) -> np.ndarray:
        """Concatenation of the relation and target-entity representations."""
        relation, target = action
        return np.concatenate([
            self.representations.relation_vector(relation),
            self.representations.entity_vector(target),
        ])

    def action_matrix(self, actions: Sequence[Action],
                      cache_key: Optional[Tuple] = None) -> np.ndarray:
        """Stacked action vectors, shape ``(len(actions), 2 * dim)``.

        Built with two table gathers instead of one concatenation per action.
        """
        if cache_key is not None:
            cached = self._matrix_cache.get(cache_key)
            if cached is not None:
                return cached
        relation_rows = np.array([relation_index(rel) for rel, _ in actions],
                                 dtype=np.int64)
        target_rows = np.array([target for _, target in actions], dtype=np.int64)
        matrix = np.concatenate([self.representations.relation[relation_rows],
                                 self.representations.entity[target_rows]], axis=1)
        if cache_key is not None:
            self._matrix_cache.put(cache_key, matrix)
        return matrix

    # -- action enumeration --------------------------------------------- #
    def action_arrays(self, entity_id: int,
                      target_category: Optional[int] = None) -> ActionArrays:
        """Pruned ``(relation_index, target)`` arrays for one entity.

        This is the hot-path form the vectorised beam search consumes: the
        arrays are *unfiltered* (the per-user return-to-user ban is applied by
        the caller, so the cache stays shareable across users) and always end
        with the self-loop appended when missing.
        """
        key = (entity_id, target_category)
        cached = self._array_cache.get(key)
        if cached is not None:
            return cached
        adjacency = self.graph.adjacency()
        if target_category is None:
            arrays = degree_prune_arrays(
                adjacency, entity_id, self.max_actions,
                rng=entity_prune_rng(self._prune_seed, entity_id))
        else:
            arrays = category_guided_prune_arrays(adjacency, entity_id,
                                                  self.max_actions, target_category)
        arrays = ensure_self_loop_arrays(arrays, entity_id)
        self._array_cache.put(key, arrays)
        return arrays

    def actions(self, state: EntityState, target_category: Optional[int] = None,
                forbid_return_to_user: bool = True) -> List[Action]:
        """Valid pruned actions from ``state``.

        ``target_category`` enables CADRL's category-guided pruning; baselines
        pass ``None`` and get plain degree pruning.  A self-loop is always
        available so the agent can terminate early.
        """
        cache_key = (state.current_entity, target_category)
        candidates = self._action_cache.get(cache_key)
        if candidates is None:
            relations, targets = self.action_arrays(state.current_entity,
                                                    target_category)
            candidates = [(RELATION_LIST[relation], target)
                          for relation, target in zip(relations.tolist(),
                                                      targets.tolist())]
            self._action_cache.put(cache_key, candidates)
        if forbid_return_to_user:
            return [action for action in candidates
                    if not (action[1] == state.user_entity
                            and state.current_entity != state.user_entity)]
        # Fresh list: callers may mutate their copy without corrupting the
        # shared LRU cache entry.
        return list(candidates)

    def step(self, state: EntityState, action: Action) -> EntityState:
        """Deterministic transition: move to the action's target entity."""
        _, target = action
        return EntityState(user_entity=state.user_entity, current_entity=target,
                           step=state.step + 1)

    # -- rewards --------------------------------------------------------- #
    def terminal_reward(self, state: EntityState, positive_items: Set[int]) -> float:
        """Binary terminal reward ``1_{Vu}(e_L)`` (Section IV-C.2)."""
        return 1.0 if state.current_entity in positive_items else 0.0

    def is_item(self, entity_id: int) -> bool:
        return self.graph.entities.type_of(entity_id) == EntityType.ITEM

    def initial_state(self, user_entity: int) -> EntityState:
        return EntityState(user_entity=user_entity, current_entity=user_entity, step=0)


class CategoryEnvironment:
    """The category agent's view of ``Gc`` (action space ``A^c``)."""

    def __init__(self, category_graph: CategoryGraph, graph: KnowledgeGraph,
                 representations: Representations, max_actions: int = 10) -> None:
        if max_actions <= 0:
            raise ValueError("max_actions must be positive")
        self.category_graph = category_graph
        self.graph = graph
        self.representations = representations
        self.max_actions = max_actions

    def state_vector(self, state: CategoryState) -> np.ndarray:
        """Concatenation of user, start-category and current-category vectors."""
        return np.concatenate([
            self.representations.entity_vector(state.user_entity),
            self.representations.category_vector(state.start_category),
            self.representations.category_vector(state.current_category),
        ])

    def action_vector(self, category_id: int) -> np.ndarray:
        return self.representations.category_vector(category_id)

    def action_matrix(self, categories: Sequence[int]) -> np.ndarray:
        return np.stack([self.action_vector(category) for category in categories])

    def actions(self, state: CategoryState) -> List[int]:
        """Adjacent categories plus the self-loop, truncated to ``max_actions``.

        Truncation keeps the categories whose representation is most similar to
        the user's, a cheap relevance heuristic that bounds ``|A^c|`` exactly
        like the paper's hyper-parameter (max 10).
        """
        moves = self.category_graph.actions(state.current_category, include_self_loop=True)
        if len(moves) <= self.max_actions:
            return moves
        user_vector = self.representations.entity_vector(state.user_entity)
        scores = []
        for category in moves:
            vector = self.representations.category_vector(category)
            denominator = (np.linalg.norm(user_vector) * np.linalg.norm(vector)) or 1.0
            scores.append(float(np.dot(user_vector, vector) / denominator))
        keep = np.argsort(scores)[::-1][: self.max_actions - 1]
        selected = [moves[i] for i in sorted(keep)]
        if state.current_category not in selected:
            selected.insert(0, state.current_category)
        return selected

    def step(self, state: CategoryState, category_id: int) -> CategoryState:
        return CategoryState(user_entity=state.user_entity,
                             start_category=state.start_category,
                             current_category=category_id,
                             step=state.step + 1)

    def terminal_reward(self, state: CategoryState, target_categories: Set[int]) -> float:
        """Binary terminal reward ``1(c_L)`` — reached a category holding a target item."""
        return 1.0 if state.current_category in target_categories else 0.0

    def initial_state(self, user_entity: int, start_category: int) -> CategoryState:
        return CategoryState(user_entity=user_entity, start_category=start_category,
                             current_category=start_category, step=0)

    def start_category_for(self, user_entity: int, fallback: int = 0) -> int:
        """Initial category: the category of an item directly purchased by the user."""
        purchased = self.graph.purchased_items(user_entity)
        for item in purchased:
            category = self.graph.category_of(item)
            if category is not None:
                return category
        return fallback
