"""Reinforcement-learning substrate: environments, trajectories, REINFORCE, rewards."""

from .environment import (
    CategoryEnvironment,
    CategoryState,
    EntityEnvironment,
    EntityState,
)
from .reinforce import MovingBaseline, ReinforceConfig, apply_update, policy_gradient_loss
from .rewards import (
    collaborative_rewards,
    consistency_reward,
    guidance_reward,
    soft_item_reward,
)
from .trajectory import (
    CategoryStep,
    EntityStep,
    EpisodeResult,
    RecommendationPath,
    discounted_returns,
)

__all__ = [
    "CategoryEnvironment",
    "CategoryState",
    "CategoryStep",
    "EntityEnvironment",
    "EntityState",
    "EntityStep",
    "EpisodeResult",
    "MovingBaseline",
    "RecommendationPath",
    "ReinforceConfig",
    "apply_update",
    "collaborative_rewards",
    "consistency_reward",
    "discounted_returns",
    "guidance_reward",
    "policy_gradient_loss",
    "soft_item_reward",
]
