"""Reward functions: terminal, partner (collaborative) and shaped rewards.

This module implements the collaborative reward mechanism of Section IV-C.4:

* ``guidance_reward`` (Eq. 17-18) — the category agent's causal influence on
  the entity agent, measured as the KL divergence between the entity policy
  conditioned on the chosen category action and the marginal entity policy
  over counterfactual category actions, squashed through a sigmoid.
* ``consistency_reward`` (Eq. 19) — cosine similarity between the two agents'
  state representations, rewarding category-level trajectories that stay
  semantically aligned with the entity-level path.
* ``collaborative_rewards`` (Eq. 20-21) — the final per-step rewards
  ``R^c = R̃^c + α_pe · R^pe`` and ``R^e = R̃^e + α_pc · R^pc``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..nn.functional import cosine_similarity, kl_divergence


def sigmoid(value: float) -> float:
    """Scalar logistic function used to squash the KL influence (Eq. 18)."""
    return float(1.0 / (1.0 + np.exp(-value)))


def guidance_reward(conditional: np.ndarray, counterfactuals: Sequence[np.ndarray],
                    counterfactual_weights: Sequence[float] | None = None) -> float:
    """Partner reward R^pc from the category agent to the entity agent.

    Parameters
    ----------
    conditional:
        ``p(a^e | a^c, s^e)`` — the entity-action distribution under the
        category action that was actually taken.
    counterfactuals:
        ``p(a^e | ã^c, s^e)`` for each alternative category action.
    counterfactual_weights:
        ``p(ã^c | s^e)`` — the category policy's own probabilities; defaults
        to uniform.

    Returns the sigmoid-squashed KL divergence between the conditional and the
    counterfactual marginal (Eq. 17-18).  A category action that genuinely
    changes what the entity agent would do earns a reward close to 1.
    """
    conditional = np.asarray(conditional, dtype=np.float64)
    if len(counterfactuals) == 0:
        return sigmoid(0.0)
    if counterfactual_weights is None:
        weights = np.full(len(counterfactuals), 1.0 / len(counterfactuals))
    else:
        weights = np.asarray(counterfactual_weights, dtype=np.float64)
        total = weights.sum()
        weights = weights / total if total > 0 else np.full(len(counterfactuals),
                                                            1.0 / len(counterfactuals))
    marginal = np.zeros_like(conditional)
    for weight, distribution in zip(weights, counterfactuals):
        marginal += weight * np.asarray(distribution, dtype=np.float64)
    divergence = kl_divergence(conditional, marginal)
    return sigmoid(divergence)


def consistency_reward(category_state_vector: np.ndarray,
                       entity_state_vector: np.ndarray) -> float:
    """Partner reward R^pe: cosine similarity of the two agents' states (Eq. 19).

    The vectors may have different lengths (the category state concatenates
    three embeddings, the entity state two); they are compared on their common
    prefix after L2-normalisation of each block is unnecessary — the paper
    defines the reward directly as the cosine of the state vectors, so we
    truncate to the shorter length.
    """
    length = min(len(category_state_vector), len(entity_state_vector))
    if length == 0:
        return 0.0  # repro: ignore[NAN001] cosine convention: degenerate vectors score 0, and rewards must stay finite
    return cosine_similarity(category_state_vector[:length], entity_state_vector[:length])


def collaborative_rewards(terminal_category: float, terminal_entity: float,
                          guidance: Sequence[float], consistency: Sequence[float],
                          alpha_pe: float, alpha_pc: float) -> Dict[str, List[float]]:
    """Combine terminal and partner rewards into per-step final rewards.

    ``guidance`` and ``consistency`` are the per-step partner rewards (length
    L).  The terminal rewards are added to the last step, matching Eq. 20-21
    where ``R̃`` is only non-zero at ``l = L``.
    """
    if len(guidance) != len(consistency):
        raise ValueError("guidance and consistency reward sequences must align")
    steps = len(guidance)
    category_rewards = [alpha_pe * value for value in consistency]
    entity_rewards = [alpha_pc * value for value in guidance]
    if steps > 0:
        category_rewards[-1] += terminal_category
        entity_rewards[-1] += terminal_entity
    return {"category": category_rewards, "entity": entity_rewards}


def soft_item_reward(user_vector: np.ndarray, item_vector: np.ndarray,
                     scale: float = 1.0) -> float:
    """PGPR-style soft reward: scaled similarity between user and reached item.

    Used by the single-agent baselines (and available to ablations); CADRL
    itself uses the binary terminal reward plus partner rewards.
    """
    similarity = cosine_similarity(user_vector, item_vector)
    return max(0.0, scale * similarity)
