"""Trajectory containers shared by CADRL and the RL baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..kg.relations import Relation
from ..nn import Tensor


@dataclass
class EntityStep:
    """One decision of the entity agent."""

    entity_id: int                 # entity occupied *after* taking the action
    relation: Relation             # relation traversed to get there
    log_prob: Optional[Tensor]     # log π(a|s) — None during evaluation rollouts
    reward: float = 0.0


@dataclass
class CategoryStep:
    """One decision of the category agent."""

    category_id: int
    log_prob: Optional[Tensor]
    reward: float = 0.0


@dataclass
class EpisodeResult:
    """A full dual-agent episode (or a single-agent one with empty category part)."""

    user_id: int
    start_entity: int
    entity_steps: List[EntityStep] = field(default_factory=list)
    category_steps: List[CategoryStep] = field(default_factory=list)

    @property
    def final_entity(self) -> int:
        if not self.entity_steps:
            return self.start_entity
        return self.entity_steps[-1].entity_id

    @property
    def final_category(self) -> Optional[int]:
        if not self.category_steps:
            return None
        return self.category_steps[-1].category_id

    def entity_path(self) -> List[Tuple[Relation, int]]:
        """The walked path as ``[(relation, entity), ...]`` excluding the start."""
        return [(step.relation, step.entity_id) for step in self.entity_steps]

    def category_path(self) -> List[int]:
        """The category-level trajectory."""
        return [step.category_id for step in self.category_steps]

    def total_entity_reward(self) -> float:
        return sum(step.reward for step in self.entity_steps)

    def total_category_reward(self) -> float:
        return sum(step.reward for step in self.category_steps)


@dataclass(frozen=True)
class RecommendationPath:
    """An explanation path attached to a recommended item.

    ``hops`` is the sequence ``[(relation, entity_id), ...]`` leading from the
    user to ``item_entity``; ``score`` is the (log-probability based) ranking
    score the inference procedure assigned to it.
    """

    user_entity: int
    item_entity: int
    hops: Tuple[Tuple[Relation, int], ...]
    score: float

    @property
    def length(self) -> int:
        return len(self.hops)


def discounted_returns(rewards: Sequence[float], gamma: float = 0.99) -> List[float]:
    """Convert per-step rewards to discounted returns-to-go."""
    returns: List[float] = [0.0] * len(rewards)
    running = 0.0
    for index in range(len(rewards) - 1, -1, -1):
        running = rewards[index] + gamma * running
        returns[index] = running
    return returns
