"""Run every experiment in sequence (legacy entry point).

This module predates the unified CLI; ``python -m repro experiments`` is the
canonical way to run the tables and figures now.  The module is kept so
``python -m repro.experiments.runner`` keeps working, delegating to the same
implementation.  Every experiment module exposes the uniform
``run(profile=...)`` signature, so no per-experiment special-casing remains.
"""

from __future__ import annotations

from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> None:
    from ..cli import main as cli_main

    arguments = ["experiments"]
    if argv is not None:
        arguments += argv
    else:
        import sys

        arguments += sys.argv[1:]
    raise SystemExit(cli_main(arguments))


if __name__ == "__main__":
    main()
