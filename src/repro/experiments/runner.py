"""Run every experiment in sequence: ``python -m repro.experiments.runner``."""

from __future__ import annotations

import argparse
import time

from . import EXPERIMENTS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=("smoke", "paper"))
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment keys (e.g. table1 fig5)")
    arguments = parser.parse_args()

    selected = arguments.only or list(EXPERIMENTS)
    for key in selected:
        if key not in EXPERIMENTS:
            raise SystemExit(f"unknown experiment {key!r}; choose from {sorted(EXPERIMENTS)}")
        module = EXPERIMENTS[key]
        print(f"\n===== {key} =====")
        start = time.perf_counter()
        if key == "table2":
            result = module.run()
        else:
            result = module.run(profile=arguments.profile)
        print(module.report(result))
        print(f"[{key} finished in {time.perf_counter() - start:.1f}s]")


if __name__ == "__main__":
    main()
