"""Table I — recommendation accuracy of CADRL vs. every baseline.

Reproduces the paper's main comparison: NDCG / Recall / HR / Precision at 10
for the three Amazon-style datasets.  The expected *shape* is that CADRL tops
every column and that the RL/path families sit above the embedding and
neural-network families.

Run with ``python -m repro.experiments.table1_accuracy [--profile paper]``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import TABLE1_BASELINES, SingleAgentConfig, build_baseline
from ..data import DATASET_NAMES
from ..eval import evaluate_recommender
from .common import (
    ExperimentSetting,
    eval_users,
    format_table,
    metric_row,
    prepare_dataset,
    trained_cadrl,
)


@dataclass
class Table1Result:
    """Metrics (in %) for every model on every dataset."""

    datasets: List[str]
    metrics: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    # metrics[dataset][model] = {"ndcg": ..., "recall": ..., ...}

    def best_model(self, dataset: str, metric: str = "ndcg") -> str:
        scores = self.metrics[dataset]
        return max(scores, key=lambda model: scores[model][metric])

    def improvement_over_best_baseline(self, dataset: str, metric: str = "ndcg") -> float:
        """CADRL's relative improvement (%) over the strongest baseline."""
        scores = self.metrics[dataset]
        cadrl = scores["CADRL"][metric]
        best_baseline = max(value[metric] for name, value in scores.items() if name != "CADRL")
        if best_baseline == 0:
            return 0.0
        return 100.0 * (cadrl - best_baseline) / best_baseline


def _build_baseline(name: str, setting: ExperimentSetting, seed: int):
    """Instantiate a baseline with profile-appropriate training effort."""
    rl_names = {"PGPR", "ADAC", "UCPR", "ReMR", "INFER", "CogER"}
    if name in rl_names:
        config = SingleAgentConfig(epochs=setting.baseline_rl_epochs, seed=seed)
        return build_baseline(name, config=config, seed=seed)
    return build_baseline(name, seed=seed)


def run(profile: str = "smoke", datasets: Optional[Sequence[str]] = None,
        baselines: Optional[Sequence[str]] = None, seed: int = 0,
        include_cadrl: bool = True) -> Table1Result:
    """Train and evaluate every model on every dataset; returns all metrics."""
    setting = ExperimentSetting.from_profile(profile)
    datasets = list(datasets or DATASET_NAMES)
    baselines = list(baselines if baselines is not None else TABLE1_BASELINES)
    result = Table1Result(datasets=datasets)

    for dataset_name in datasets:
        dataset, split = prepare_dataset(dataset_name, setting, seed=seed)
        users = eval_users(split, setting)
        result.metrics[dataset_name] = {}

        for baseline_name in baselines:
            model = _build_baseline(baseline_name, setting, seed).fit(dataset, split)
            evaluation = evaluate_recommender(model, split, users=users)
            result.metrics[dataset_name][baseline_name] = evaluation.metrics

        if include_cadrl:
            # Pipeline-backed: identical stacks are trained once per process
            # and shared across experiments (see common.trained_cadrl).
            _, _, cadrl = trained_cadrl(dataset_name, setting, seed=seed)
            evaluation = evaluate_recommender(cadrl, split, users=users)
            result.metrics[dataset_name]["CADRL"] = evaluation.metrics
    return result


def report(result: Table1Result) -> str:
    """Format the result in the layout of Table I."""
    blocks: List[str] = []
    for dataset_name in result.datasets:
        rows = [metric_row(model, metrics)
                for model, metrics in result.metrics[dataset_name].items()]
        blocks.append(format_table(
            ["Model", "NDCG", "Recall", "HR", "Prec."], rows,
            title=f"Table I — {dataset_name} (all values %)"))
        if "CADRL" in result.metrics[dataset_name]:
            improvement = result.improvement_over_best_baseline(dataset_name)
            blocks.append(f"CADRL NDCG improvement over best baseline: {improvement:+.2f}%")
    return "\n\n".join(blocks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=("smoke", "paper"))
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=0)
    arguments = parser.parse_args()
    print(report(run(profile=arguments.profile, datasets=arguments.datasets,
                     seed=arguments.seed)))


if __name__ == "__main__":
    main()
