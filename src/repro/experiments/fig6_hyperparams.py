"""Figure 6 — sensitivity to the key hyper-parameters δ, α_pe and α_pc.

Sweeps each factor over 0.1..0.9 (the other two held at their tuned values)
and reports Precision@10, matching the panels of Fig. 6.  The paper's finding
is a unimodal response: a moderate value of each factor is best, and the
optimum δ is smaller on the category-sparse Clothing dataset.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..darl import CADRL
from ..eval import evaluate_recommender
from .common import ExperimentSetting, cadrl_config, eval_users, format_table, prepare_dataset

DEFAULT_VALUES = [0.1, 0.3, 0.5, 0.7, 0.9]
PARAMETERS = ["delta", "alpha_pe", "alpha_pc"]


@dataclass
class Fig6Result:
    """Precision (%) per dataset, hyper-parameter and value."""

    values: List[float]
    precision: Dict[str, Dict[str, Dict[float, float]]] = field(default_factory=dict)

    def optimal_value(self, dataset: str, parameter: str) -> float:
        curve = self.precision[dataset][parameter]
        return max(curve, key=curve.get)


def _apply(config, parameter: str, value: float) -> None:
    if parameter == "delta":
        config.cggnn.delta = value
    elif parameter == "alpha_pe":
        config.darl.alpha_pe = value
    elif parameter == "alpha_pc":
        config.darl.alpha_pc = value
    else:
        raise ValueError(f"unknown hyper-parameter {parameter!r}")


def run(profile: str = "smoke", datasets: Optional[Sequence[str]] = None,
        parameters: Optional[Sequence[str]] = None, values: Optional[Sequence[float]] = None,
        seed: int = 0) -> Fig6Result:
    setting = ExperimentSetting.from_profile(profile)
    datasets = list(datasets or ["beauty"])
    parameters = list(parameters or PARAMETERS)
    values = list(values or DEFAULT_VALUES)
    result = Fig6Result(values=values)

    for dataset_name in datasets:
        dataset, split = prepare_dataset(dataset_name, setting, seed=seed)
        users = eval_users(split, setting)
        result.precision[dataset_name] = {parameter: {} for parameter in parameters}
        for parameter in parameters:
            for value in values:
                config = cadrl_config(setting, seed=seed)
                _apply(config, parameter, value)
                model = CADRL(config).fit(dataset, split)
                evaluation = evaluate_recommender(model, split, users=users)
                result.precision[dataset_name][parameter][value] = (
                    evaluation.metrics["precision"])
    return result


def report(result: Fig6Result) -> str:
    blocks: List[str] = []
    for dataset_name, by_parameter in result.precision.items():
        rows = []
        for parameter, curve in by_parameter.items():
            rows.append([parameter] + [f"{curve.get(value, float('nan')):.3f}"
                                       for value in result.values])
        blocks.append(format_table(["Hyper-parameter"] + [f"{v:.1f}" for v in result.values],
                                   rows,
                                   title=f"Fig. 6 — Precision vs. hyper-parameters on "
                                         f"{dataset_name}"))
        for parameter in by_parameter:
            blocks.append(f"optimal {parameter} on {dataset_name}: "
                          f"{result.optimal_value(dataset_name, parameter):.1f}")
    return "\n\n".join(blocks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=("smoke", "paper"))
    parser.add_argument("--values", nargs="*", type=float, default=None)
    arguments = parser.parse_args()
    print(report(run(profile=arguments.profile, values=arguments.values)))


if __name__ == "__main__":
    main()
