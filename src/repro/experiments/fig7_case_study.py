"""Figure 7 — case study: explanation paths produced by CADRL vs. PGPR/UCPR.

Trains CADRL and the two single-agent baselines on Beauty, picks users whose
held-out item sits more than three hops away from their purchase history, and
prints the explanation paths each model produces — the qualitative argument
that the category agent acts as "myopia glasses" for the entity agent.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List

from ..baselines import SingleAgentConfig, build_baseline
from ..data.splits import test_user_items
from ..eval.explanations import categories_along_path, fraction_beyond_three_hops, render_path
from .common import ExperimentSetting, prepare_dataset, trained_cadrl


@dataclass
class CaseStudyEntry:
    """Explanations for one user from one model."""

    model: str
    user_id: int
    explanations: List[str]
    hit_items: List[str]
    categories: List[List[str]]


@dataclass
class Fig7Result:
    """The rendered case study plus aggregate path-length statistics."""

    entries: List[CaseStudyEntry] = field(default_factory=list)
    long_path_fraction: Dict[str, float] = field(default_factory=dict)


def run(profile: str = "smoke", dataset_name: str = "beauty", num_users: int = 3,
        paths_per_user: int = 3, seed: int = 0) -> Fig7Result:
    setting = ExperimentSetting.from_profile(profile)
    dataset, split = prepare_dataset(dataset_name, setting, seed=seed)
    held_out = test_user_items(split)
    users = [user for user, items in sorted(held_out.items()) if items][:num_users]

    result = Fig7Result()

    # Pipeline-backed: shares the trained stack with table1/table3 runs in
    # the same process (common.trained_cadrl).
    _, _, cadrl = trained_cadrl(dataset_name, setting, seed=seed)
    pgpr = build_baseline("PGPR", config=SingleAgentConfig(
        epochs=setting.baseline_rl_epochs, seed=seed), seed=seed).fit(dataset, split)
    ucpr = build_baseline("UCPR", config=SingleAgentConfig(
        epochs=setting.baseline_rl_epochs, seed=seed), seed=seed).fit(dataset, split)

    graph = cadrl.graph
    all_cadrl_paths = []
    for user_id in users:
        paths = cadrl.recommend_paths(user_id, top_k=paths_per_user)
        all_cadrl_paths.extend(paths)
        result.entries.append(CaseStudyEntry(
            model="CADRL", user_id=user_id,
            explanations=[render_path(graph, path) for path in paths],
            hit_items=[graph.entities.get(path.item_entity).name for path in paths],
            categories=[categories_along_path(graph, path) for path in paths],
        ))
        for model, name in ((pgpr, "PGPR"), (ucpr, "UCPR")):
            baseline_paths = model.find_paths(user_id, paths_per_user)
            result.entries.append(CaseStudyEntry(
                model=name, user_id=user_id,
                explanations=[render_path(model._graph, path) for path in baseline_paths],
                hit_items=[model._graph.entities.get(path.item_entity).name
                           for path in baseline_paths],
                categories=[categories_along_path(model._graph, path)
                            for path in baseline_paths],
            ))

    result.long_path_fraction["CADRL"] = fraction_beyond_three_hops(all_cadrl_paths)
    return result


def report(result: Fig7Result) -> str:
    lines: List[str] = ["Fig. 7 — case study (explanation paths)"]
    for entry in result.entries:
        lines.append(f"\n[{entry.model}] user {entry.user_id}")
        for explanation, categories in zip(entry.explanations, entry.categories):
            suffix = f"   (categories: {' -> '.join(categories)})" if categories else ""
            lines.append(f"  {explanation}{suffix}")
    for model, fraction in result.long_path_fraction.items():
        lines.append(f"\n{model}: {100 * fraction:.1f}% of explanation paths exceed 3 hops")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=("smoke", "paper"))
    parser.add_argument("--num-users", type=int, default=3)
    arguments = parser.parse_args()
    print(report(run(profile=arguments.profile, num_users=arguments.num_users)))


if __name__ == "__main__":
    main()
