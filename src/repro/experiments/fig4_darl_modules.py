"""Figure 4 — contribution of the SPN and CRM modules inside DARL.

Compares UCPR, RCRM (no collaborative reward mechanism), RSHI (no shared
history in the policy networks) and the full CADRL on Beauty and Cell Phones.
The paper's findings: every variant beats UCPR, RSHI > RCRM, CADRL best.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import SingleAgentConfig, build_baseline
from ..darl.variants import build_variant
from ..eval import evaluate_recommender
from .common import (
    ExperimentSetting,
    cadrl_config,
    eval_users,
    format_table,
    metric_row,
    prepare_dataset,
)

FIG4_DATASETS = ["cellphones", "beauty"]
FIG4_MODELS = ["UCPR", "RCRM", "RSHI", "CADRL"]


@dataclass
class Fig4Result:
    """Metrics (in %) per dataset per model — the bars of Fig. 4."""

    metrics: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)


def run(profile: str = "smoke", datasets: Optional[Sequence[str]] = None,
        seed: int = 0) -> Fig4Result:
    setting = ExperimentSetting.from_profile(profile)
    datasets = list(datasets or FIG4_DATASETS)
    result = Fig4Result()
    for dataset_name in datasets:
        dataset, split = prepare_dataset(dataset_name, setting, seed=seed)
        users = eval_users(split, setting)
        result.metrics[dataset_name] = {}
        for model_name in FIG4_MODELS:
            if model_name == "UCPR":
                model = build_baseline("UCPR", config=SingleAgentConfig(
                    epochs=setting.baseline_rl_epochs, seed=seed), seed=seed)
            else:
                model = build_variant(model_name, cadrl_config(setting, seed=seed))
            model.fit(dataset, split)
            evaluation = evaluate_recommender(model, split, users=users)
            result.metrics[dataset_name][model_name] = evaluation.metrics
    return result


def report(result: Fig4Result) -> str:
    blocks: List[str] = []
    for dataset_name, metrics in result.metrics.items():
        rows = [metric_row(model, values) for model, values in metrics.items()]
        blocks.append(format_table(["Model", "NDCG", "Recall", "HR", "Prec."], rows,
                                   title=f"Fig. 4 — DARL module ablation on {dataset_name}"))
    return "\n\n".join(blocks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=("smoke", "paper"))
    arguments = parser.parse_args()
    print(report(run(profile=arguments.profile)))


if __name__ == "__main__":
    main()
