"""Table II — statistics of the experimental datasets.

The synthetic presets are intentionally smaller than the Amazon corpora; this
experiment reports their statistics next to the paper's numbers so the scale
substitution is explicit, and verifies the *relative* property that drives the
RQ1 discussion: Clothing has far fewer items per category than the other two.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..data import DATASET_NAMES, dataset_statistics, load_dataset, split_interactions
from ..kg import build_knowledge_graph
from .common import PROFILES, format_table

# The numbers reported in the paper's Table II (for side-by-side context).
PAPER_TABLE2: Dict[str, Dict[str, int]] = {
    "beauty": {"users": 22363, "items": 12101, "entities": 59105,
               "interactions": 127635, "triplets": 1903246},
    "cellphones": {"users": 27879, "items": 10429, "entities": 61756,
                   "interactions": 141076, "triplets": 1253283},
    "clothing": {"users": 39387, "items": 23033, "entities": 84968,
                 "interactions": 181295, "triplets": 2745308},
}


@dataclass
class Table2Result:
    """Our statistics per dataset, including the derived KG counts."""

    statistics: Dict[str, Dict[str, float]]

    def items_per_category(self, name: str) -> float:
        return self.statistics[name]["items_per_category"]


def run(profile: str = "smoke", scale: Optional[float] = None,
        seed: int = 0) -> Table2Result:
    """Generate each preset, build its KG, and collect the Table II counters.

    The ``profile`` parameter exists for the uniform experiment-runner
    signature; Table II reports the *preset* statistics, which do not depend
    on the training budget, so both profiles default to the full presets
    (``scale=1.0``).  Pass ``scale`` explicitly to rescale.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose one of {PROFILES}")
    if scale is None:
        scale = 1.0
    statistics: Dict[str, Dict[str, float]] = {}
    for name in DATASET_NAMES:
        dataset = load_dataset(name, scale=scale)
        split = split_interactions(dataset, seed=seed)
        graph, _, _ = build_knowledge_graph(dataset, split.train)
        stats = dataset_statistics(dataset)
        stats.update({f"kg_{key}": value for key, value in graph.statistics().items()})
        statistics[name] = stats
    return Table2Result(statistics=statistics)


def report(result: Table2Result) -> str:
    rows: List[List[object]] = []
    for name, stats in result.statistics.items():
        paper = PAPER_TABLE2.get(name, {})
        rows.append([
            name,
            int(stats["users"]),
            int(stats["items"]),
            int(stats["kg_entities"]),
            int(stats["interactions"]),
            int(stats["kg_triplets"]),
            f"{stats['items_per_category']:.1f}",
            paper.get("users", "-"),
            paper.get("triplets", "-"),
        ])
    return format_table(
        ["Dataset", "Users", "Items", "Entities", "Interactions", "Triplets",
         "Items/Cat", "Paper users", "Paper triplets"],
        rows, title="Table II — dataset statistics (ours vs. paper scale)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    arguments = parser.parse_args()
    print(report(run(scale=arguments.scale)))


if __name__ == "__main__":
    main()
