"""Experiment harness: one module per table/figure of the paper's evaluation.

Each module exposes ``run(profile=...)`` returning a structured result object,
``report(result)`` returning the printable table, and a ``main()`` CLI so it
can be invoked as ``python -m repro.experiments.<name>``.
"""

from . import (
    fig3_cggnn_modules,
    fig4_darl_modules,
    fig5_path_length,
    fig6_hyperparams,
    fig7_case_study,
    table1_accuracy,
    table2_datasets,
    table3_efficiency,
    table4_ablation,
)
from .common import (
    ExperimentSetting,
    cadrl_config,
    experiment_run_config,
    format_table,
    prepare_dataset,
    trained_cadrl,
    trained_stack,
)

EXPERIMENTS = {
    "table1": table1_accuracy,
    "table2": table2_datasets,
    "table3": table3_efficiency,
    "table4": table4_ablation,
    "fig3": fig3_cggnn_modules,
    "fig4": fig4_darl_modules,
    "fig5": fig5_path_length,
    "fig6": fig6_hyperparams,
    "fig7": fig7_case_study,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentSetting",
    "cadrl_config",
    "experiment_run_config",
    "trained_cadrl",
    "trained_stack",
    "fig3_cggnn_modules",
    "fig4_darl_modules",
    "fig5_path_length",
    "fig6_hyperparams",
    "fig7_case_study",
    "format_table",
    "prepare_dataset",
    "table1_accuracy",
    "table2_datasets",
    "table3_efficiency",
    "table4_ablation",
]
