"""Figure 5 — NDCG as a function of the maximum recommendation path length L.

Sweeps L for CADRL and for the single-agent RL baselines (UCPR, CAFE, CogER).
The paper's finding: the single-agent baselines peak at L=3 and degrade for
longer paths (sparse rewards + semantic dilution), while CADRL keeps improving
up to L≈6-7 before noise sets in.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import SingleAgentConfig, build_baseline
from ..eval import evaluate_recommender
from .common import (
    ExperimentSetting,
    eval_users,
    format_table,
    prepare_dataset,
    trained_cadrl,
)

FIG5_MODELS = ["CogER", "CAFE", "UCPR", "CADRL"]
DEFAULT_LENGTHS = [2, 3, 4, 5, 6, 7, 8]


@dataclass
class Fig5Result:
    """NDCG (%) per dataset, model and path length — the curves of Fig. 5."""

    lengths: List[int]
    ndcg: Dict[str, Dict[str, Dict[int, float]]] = field(default_factory=dict)

    def optimal_length(self, dataset: str, model: str) -> int:
        curve = self.ndcg[dataset][model]
        return max(curve, key=curve.get)


def run(profile: str = "smoke", datasets: Optional[Sequence[str]] = None,
        lengths: Optional[Sequence[int]] = None, models: Optional[Sequence[str]] = None,
        seed: int = 0) -> Fig5Result:
    setting = ExperimentSetting.from_profile(profile)
    datasets = list(datasets or ["beauty"])
    lengths = list(lengths or DEFAULT_LENGTHS)
    models = list(models or FIG5_MODELS)
    result = Fig5Result(lengths=lengths)

    for dataset_name in datasets:
        dataset, split = prepare_dataset(dataset_name, setting, seed=seed)
        users = eval_users(split, setting)
        result.ndcg[dataset_name] = {name: {} for name in models}
        for length in lengths:
            for model_name in models:
                if model_name == "CADRL":
                    # Pipeline-backed with a per-length override; the L=6
                    # point shares the standard stack with table1/table3.
                    _, _, model = trained_cadrl(dataset_name, setting, seed=seed,
                                                darl__max_path_length=length)
                elif model_name == "CAFE":
                    # CAFE's "length" is the meta-path template length; templates
                    # longer than L are simply unavailable, approximated here by
                    # re-using the fixed template set (flat beyond its max length).
                    model = build_baseline(model_name, seed=seed)
                else:
                    model = build_baseline(model_name, config=SingleAgentConfig(
                        epochs=setting.baseline_rl_epochs, max_hops=length, seed=seed),
                        seed=seed)
                if model_name != "CADRL":
                    model.fit(dataset, split)
                evaluation = evaluate_recommender(model, split, users=users)
                result.ndcg[dataset_name][model_name][length] = evaluation.metrics["ndcg"]
    return result


def report(result: Fig5Result) -> str:
    blocks: List[str] = []
    for dataset_name, curves in result.ndcg.items():
        rows = []
        for model_name, curve in curves.items():
            rows.append([model_name] + [f"{curve.get(length, float('nan')):.3f}"
                                        for length in result.lengths])
        blocks.append(format_table(["Model"] + [f"L={length}" for length in result.lengths],
                                   rows, title=f"Fig. 5 — NDCG vs. path length on {dataset_name}"))
        for model_name in curves:
            blocks.append(f"optimal L for {model_name}: "
                          f"{result.optimal_length(dataset_name, model_name)}")
    return "\n\n".join(blocks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=("smoke", "paper"))
    parser.add_argument("--lengths", nargs="*", type=int, default=None)
    arguments = parser.parse_args()
    print(report(run(profile=arguments.profile, lengths=arguments.lengths)))


if __name__ == "__main__":
    main()
