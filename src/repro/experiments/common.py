"""Shared plumbing for the experiment harness.

Every experiment module builds on the same three ingredients: a dataset +
split, a "fast" CADRL configuration sized for the synthetic presets, and a
uniform way to print result tables.  The ``profile`` argument scales the
experiments: ``"smoke"`` is sized for CI/benchmarks (seconds), ``"paper"``
uses the full presets (minutes).

Experiments that need the *standard* trained CADRL stack go through
:func:`trained_cadrl`, which builds on :mod:`repro.pipeline`: identical
(dataset, configuration) pairs are memoised per process by their pipeline
fingerprint, so running several tables/figures in one ``python -m repro
experiments`` invocation trains each stack exactly once instead of once per
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..darl import CADRL, CADRLConfig
from ..data import load_dataset, split_interactions
from ..data.schema import TrainTestSplit
from ..data.synthetic import SyntheticDataset

PROFILES = ("smoke", "paper")


@dataclass
class ExperimentSetting:
    """Scale knobs derived from the chosen profile."""

    dataset_scale: float
    darl_epochs: int
    baseline_rl_epochs: int
    max_eval_users: Optional[int]

    @classmethod
    def from_profile(cls, profile: str) -> "ExperimentSetting":
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}; choose one of {PROFILES}")
        if profile == "smoke":
            return cls(dataset_scale=0.4, darl_epochs=3, baseline_rl_epochs=2,
                       max_eval_users=30)
        return cls(dataset_scale=1.0, darl_epochs=10, baseline_rl_epochs=6,
                   max_eval_users=None)


def prepare_dataset(name: str, setting: ExperimentSetting, seed: int = 0,
                    dataset_seed: Optional[int] = None
                    ) -> Tuple[SyntheticDataset, TrainTestSplit]:
    """Generate a preset dataset at the profile's scale and split it 70/30.

    ``seed`` controls the split; ``dataset_seed`` (optional) threads through
    to :func:`repro.data.load_dataset` for alternate deterministic dataset
    draws.
    """
    dataset = load_dataset(name, scale=setting.dataset_scale, seed=dataset_seed)
    split = split_interactions(dataset, seed=seed)
    return dataset, split


def cadrl_config(setting: ExperimentSetting, seed: int = 0, **overrides) -> CADRLConfig:
    """The CADRL configuration used across experiments (fast preset + profile scale)."""
    config = CADRLConfig.fast(embedding_dim=32, seed=seed)
    config.darl.epochs = setting.darl_epochs
    for key, value in overrides.items():
        parts = key.split("__")
        target = config
        for part in parts[:-1]:
            target = getattr(target, part)
        setattr(target, parts[-1], value)
    return config


def experiment_run_config(name: str, setting: ExperimentSetting, seed: int = 0,
                          **overrides):
    """The :class:`repro.pipeline.RunConfig` equivalent of the classic recipe
    (``prepare_dataset`` + ``cadrl_config``) for one experiment stack."""
    from ..pipeline import DataConfig, EvalConfig, RunConfig

    return RunConfig(
        data=DataConfig(dataset=name, scale=setting.dataset_scale, split_seed=seed),
        model=cadrl_config(setting, seed=seed, **overrides),
        eval=EvalConfig(max_eval_users=setting.max_eval_users),
    )


#: Process-level cache of trained stacks.  The key covers everything the
#: returned result depends on: the chained ``train`` fingerprint (data + all
#: training stages) plus the inference configuration the recommender is
#: assembled with.  Only un-overridden (standard) stacks are inserted, so the
#: cache stays bounded at one entry per (dataset, profile, seed) even when
#: sweeps like fig5 request many override variants.
_STACK_CACHE: Dict[str, object] = {}


def _stack_cache_key(config) -> str:
    import json

    from ..pipeline import config_to_dict

    return json.dumps([config.stage_fingerprints()["train"],
                       config_to_dict(config.model.inference)], sort_keys=True)


def trained_stack(name: str, setting: ExperimentSetting, seed: int = 0,
                  store=None, **overrides):
    """A :class:`repro.pipeline.PipelineResult` with the standard CADRL stack.

    Identical requests within one process hit the in-memory cache instead of
    re-training; pass ``store`` (a directory) to additionally persist/reuse
    the artifacts across processes.
    """
    from ..pipeline import Pipeline

    config = experiment_run_config(name, setting, seed=seed, **overrides)
    key = _stack_cache_key(config)
    cached = _STACK_CACHE.get(key)
    if cached is not None and store is None:
        return cached
    result = Pipeline(config, store=store).run(until=("train",))
    # Overridden variants (e.g. fig5's per-length sweeps) are one-shot: keep
    # them out of the cache so it cannot grow one full stack per variant.
    if not overrides:
        _STACK_CACHE[key] = result
    return result


def trained_cadrl(name: str, setting: ExperimentSetting, seed: int = 0,
                  **overrides) -> Tuple[SyntheticDataset, TrainTestSplit, CADRL]:
    """Dataset, split and the fitted standard CADRL model for one experiment.

    Drop-in replacement for ``CADRL(cadrl_config(...)).fit(*prepare_dataset(...))``
    that de-duplicates training across experiments via :func:`trained_stack`.
    """
    result = trained_stack(name, setting, seed=seed, **overrides)
    return result.dataset, result.split, result.cadrl


def clear_stack_cache() -> None:
    """Drop the process-level trained-stack cache (tests, memory pressure)."""
    _STACK_CACHE.clear()


def eval_users(split: TrainTestSplit, setting: ExperimentSetting) -> Optional[List[int]]:
    """Subset of users to evaluate (None = all), respecting the profile cap."""
    if setting.max_eval_users is None:
        return None
    users = sorted({interaction.user_id for interaction in split.test})
    return users[: setting.max_eval_users]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table (the harness prints, never plots)."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def metric_row(name: str, metrics: Dict[str, float]) -> List[str]:
    """One table row in the Table I column order (values already in %)."""
    return [name,
            f"{metrics['ndcg']:.3f}",
            f"{metrics['recall']:.3f}",
            f"{metrics['hit_ratio']:.3f}",
            f"{metrics['precision']:.3f}"]
