"""Shared plumbing for the experiment harness.

Every experiment module builds on the same three ingredients: a dataset +
split, a "fast" CADRL configuration sized for the synthetic presets, and a
uniform way to print result tables.  The ``profile`` argument scales the
experiments: ``"smoke"`` is sized for CI/benchmarks (seconds), ``"paper"``
uses the full presets (minutes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..darl import CADRLConfig
from ..data import load_dataset, split_interactions
from ..data.schema import TrainTestSplit
from ..data.synthetic import SyntheticDataset

PROFILES = ("smoke", "paper")


@dataclass
class ExperimentSetting:
    """Scale knobs derived from the chosen profile."""

    dataset_scale: float
    darl_epochs: int
    baseline_rl_epochs: int
    max_eval_users: Optional[int]

    @classmethod
    def from_profile(cls, profile: str) -> "ExperimentSetting":
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}; choose one of {PROFILES}")
        if profile == "smoke":
            return cls(dataset_scale=0.4, darl_epochs=3, baseline_rl_epochs=2,
                       max_eval_users=30)
        return cls(dataset_scale=1.0, darl_epochs=10, baseline_rl_epochs=6,
                   max_eval_users=None)


def prepare_dataset(name: str, setting: ExperimentSetting, seed: int = 0
                    ) -> Tuple[SyntheticDataset, TrainTestSplit]:
    """Generate a preset dataset at the profile's scale and split it 70/30."""
    dataset = load_dataset(name, scale=setting.dataset_scale)
    split = split_interactions(dataset, seed=seed)
    return dataset, split


def cadrl_config(setting: ExperimentSetting, seed: int = 0, **overrides) -> CADRLConfig:
    """The CADRL configuration used across experiments (fast preset + profile scale)."""
    config = CADRLConfig.fast(embedding_dim=32, seed=seed)
    config.darl.epochs = setting.darl_epochs
    for key, value in overrides.items():
        parts = key.split("__")
        target = config
        for part in parts[:-1]:
            target = getattr(target, part)
        setattr(target, parts[-1], value)
    return config


def eval_users(split: TrainTestSplit, setting: ExperimentSetting) -> Optional[List[int]]:
    """Subset of users to evaluate (None = all), respecting the profile cap."""
    if setting.max_eval_users is None:
        return None
    users = sorted({interaction.user_id for interaction in split.test})
    return users[: setting.max_eval_users]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table (the harness prints, never plots)."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def metric_row(name: str, metrics: Dict[str, float]) -> List[str]:
    """One table row in the Table I column order (values already in %)."""
    return [name,
            f"{metrics['ndcg']:.3f}",
            f"{metrics['recall']:.3f}",
            f"{metrics['hit_ratio']:.3f}",
            f"{metrics['precision']:.3f}"]
