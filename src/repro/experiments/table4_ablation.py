"""Table IV — ablation of the two main components (CGGNN and DARL).

Trains the full CADRL, ``CADRL w/o DARL`` (single agent, binary terminal
reward only) and ``CADRL w/o CGGNN`` (static TransE representations) on every
dataset and compares the four ranking metrics.  The paper's finding is that
both variants lose accuracy and that removing DARL hurts more than removing
CGGNN.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..darl.variants import build_variant
from ..data import DATASET_NAMES
from ..eval import evaluate_recommender
from .common import (
    ExperimentSetting,
    cadrl_config,
    eval_users,
    format_table,
    metric_row,
    prepare_dataset,
)

TABLE4_VARIANTS = ["CADRL w/o DARL", "CADRL w/o CGGNN", "CADRL"]


@dataclass
class Table4Result:
    """Metrics (in %) for every variant on every dataset."""

    metrics: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def drop_from_full(self, dataset: str, variant: str, metric: str = "ndcg") -> float:
        """Absolute metric drop of a variant relative to the full model."""
        full = self.metrics[dataset]["CADRL"][metric]
        return full - self.metrics[dataset][variant][metric]


def run(profile: str = "smoke", datasets: Optional[Sequence[str]] = None,
        variants: Optional[Sequence[str]] = None, seed: int = 0) -> Table4Result:
    setting = ExperimentSetting.from_profile(profile)
    datasets = list(datasets or DATASET_NAMES)
    variants = list(variants or TABLE4_VARIANTS)
    result = Table4Result()

    for dataset_name in datasets:
        dataset, split = prepare_dataset(dataset_name, setting, seed=seed)
        users = eval_users(split, setting)
        result.metrics[dataset_name] = {}
        for variant_name in variants:
            model = build_variant(variant_name, cadrl_config(setting, seed=seed))
            model.fit(dataset, split)
            evaluation = evaluate_recommender(model, split, users=users)
            result.metrics[dataset_name][variant_name] = evaluation.metrics
    return result


def report(result: Table4Result) -> str:
    blocks: List[str] = []
    for dataset_name, rows_by_variant in result.metrics.items():
        rows = [metric_row(variant, metrics) for variant, metrics in rows_by_variant.items()]
        blocks.append(format_table(["Model", "NDCG", "Recall", "HR", "Prec."], rows,
                                   title=f"Table IV — ablation on {dataset_name} (values %)"))
    return "\n\n".join(blocks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=("smoke", "paper"))
    parser.add_argument("--datasets", nargs="*", default=None)
    arguments = parser.parse_args()
    print(report(run(profile=arguments.profile, datasets=arguments.datasets)))


if __name__ == "__main__":
    main()
