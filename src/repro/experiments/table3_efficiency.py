"""Table III — computational cost of recommendation and path finding.

Measures, for the path/RL methods of the paper's efficiency study (PGPR,
HeteroEmbed, UCPR, CAFE) and CADRL, (a) the wall-clock time to recommend for a
batch of users and (b) the time to enumerate recommendation paths, both
extrapolated to the paper's units (1k users / 10k paths).  The expected shape
is PGPR slowest, CAFE the fastest baseline, CADRL fastest overall.
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import TABLE3_BASELINES, SingleAgentConfig, build_baseline
from ..data import DATASET_NAMES
from ..eval import TimingResult, measure_efficiency
from ..serving import RecommendationService
from .common import ExperimentSetting, format_table, prepare_dataset, trained_cadrl


@dataclass
class Table3Result:
    """Timing results per dataset and model."""

    timings: Dict[str, Dict[str, TimingResult]] = field(default_factory=dict)

    def fastest_model(self, dataset: str) -> str:
        rows = self.timings[dataset]
        return min(rows, key=lambda name: rows[name].recommendation_per_1k_users())


def run(profile: str = "smoke", datasets: Optional[Sequence[str]] = None,
        num_users: int = 20, paths_per_user: int = 20, seed: int = 0,
        include_served: bool = True) -> Table3Result:
    """Train the Table III models and measure both workloads.

    With ``include_served`` the table also reports CADRL behind the
    ``repro.serving`` facade — a cold pass (micro-batched inference) and a warm
    pass (result-cache hits) — next to the paper's raw per-user loop.
    """
    setting = ExperimentSetting.from_profile(profile)
    datasets = list(datasets or DATASET_NAMES)
    result = Table3Result()

    for dataset_name in datasets:
        dataset, split = prepare_dataset(dataset_name, setting, seed=seed)
        users = list(range(min(num_users, dataset.num_users)))
        result.timings[dataset_name] = {}

        for baseline_name in TABLE3_BASELINES:
            if baseline_name in {"PGPR", "UCPR"}:
                model = build_baseline(baseline_name,
                                       config=SingleAgentConfig(
                                           epochs=setting.baseline_rl_epochs, seed=seed),
                                       seed=seed)
            else:
                model = build_baseline(baseline_name, seed=seed)
            model.fit(dataset, split)
            result.timings[dataset_name][baseline_name] = measure_efficiency(
                model, users, paths_per_user=paths_per_user)

        # Pipeline-backed: reuses the stack trained by other experiments in
        # the same process instead of re-fitting it (common.trained_cadrl).
        # A shared stack may arrive with warm inference caches (milestones,
        # pruned-action/matrix tables), so swap in a completely fresh
        # recommender before timing — this row measures the cold per-user loop.
        _, _, cadrl = trained_cadrl(dataset_name, setting, seed=seed)
        cadrl.reset_recommender()
        result.timings[dataset_name]["CADRL"] = measure_efficiency(
            cadrl, users, paths_per_user=paths_per_user)

        if include_served:
            service = RecommendationService.from_cadrl(cadrl)
            user_entities = [cadrl.builder.user_to_entity(user) for user in users]
            # The raw CADRL measurement above warmed the shared recommender's
            # milestone cache — drop it so the cold row really pays the batched
            # rollout, not a replay.
            service.recommender.clear_milestone_cache()
            service.cache.clear()
            for label in ("CADRL (served cold)", "CADRL (served warm)"):
                service.name = label
                result.timings[dataset_name][label] = measure_efficiency(
                    service, user_entities, paths_per_user=paths_per_user)
    return result


def report(result: Table3Result) -> str:
    blocks: List[str] = []
    for dataset_name, timings in result.timings.items():
        fmt = lambda value: "n/a" if math.isnan(value) else f"{value:.2f}"  # noqa: E731
        rows = [[name,
                 fmt(timing.recommendation_per_1k_users()),
                 fmt(timing.pathfinding_per_10k_paths()),
                 f"{timing.recommendation_seconds:.3f}",
                 timing.paths_found]
                for name, timing in timings.items()]
        blocks.append(format_table(
            ["Model", "Rec. s/1k users", "Find s/10k paths", "measured s", "paths"],
            rows, title=f"Table III — efficiency on {dataset_name}"))
        blocks.append(f"Fastest recommender: {result.fastest_model(dataset_name)}")
    return "\n\n".join(blocks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=("smoke", "paper"))
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--num-users", type=int, default=20)
    parser.add_argument("--no-served", action="store_true",
                        help="skip the repro.serving rows (raw loops only)")
    arguments = parser.parse_args()
    print(report(run(profile=arguments.profile, datasets=arguments.datasets,
                     num_users=arguments.num_users,
                     include_served=not arguments.no_served)))


if __name__ == "__main__":
    main()
