"""Table III — computational cost of recommendation and path finding.

Measures, for the path/RL methods of the paper's efficiency study (PGPR,
HeteroEmbed, UCPR, CAFE) and CADRL, (a) the wall-clock time to recommend for a
batch of users and (b) the time to enumerate recommendation paths, both
extrapolated to the paper's units (1k users / 10k paths).  The expected shape
is PGPR slowest, CAFE the fastest baseline, CADRL fastest overall.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..baselines import TABLE3_BASELINES, SingleAgentConfig, build_baseline
from ..darl import CADRL
from ..data import DATASET_NAMES
from ..eval import TimingResult, measure_efficiency
from .common import ExperimentSetting, cadrl_config, format_table, prepare_dataset


@dataclass
class Table3Result:
    """Timing results per dataset and model."""

    timings: Dict[str, Dict[str, TimingResult]] = field(default_factory=dict)

    def fastest_model(self, dataset: str) -> str:
        rows = self.timings[dataset]
        return min(rows, key=lambda name: rows[name].recommendation_per_1k_users())


def run(profile: str = "smoke", datasets: Optional[Sequence[str]] = None,
        num_users: int = 20, paths_per_user: int = 20, seed: int = 0) -> Table3Result:
    """Train the Table III models and measure both workloads."""
    setting = ExperimentSetting.from_profile(profile)
    datasets = list(datasets or DATASET_NAMES)
    result = Table3Result()

    for dataset_name in datasets:
        dataset, split = prepare_dataset(dataset_name, setting, seed=seed)
        users = list(range(min(num_users, dataset.num_users)))
        result.timings[dataset_name] = {}

        for baseline_name in TABLE3_BASELINES:
            if baseline_name in {"PGPR", "UCPR"}:
                model = build_baseline(baseline_name,
                                       config=SingleAgentConfig(
                                           epochs=setting.baseline_rl_epochs, seed=seed),
                                       seed=seed)
            else:
                model = build_baseline(baseline_name, seed=seed)
            model.fit(dataset, split)
            result.timings[dataset_name][baseline_name] = measure_efficiency(
                model, users, paths_per_user=paths_per_user)

        cadrl = CADRL(cadrl_config(setting, seed=seed)).fit(dataset, split)
        result.timings[dataset_name]["CADRL"] = measure_efficiency(
            cadrl, users, paths_per_user=paths_per_user)
    return result


def report(result: Table3Result) -> str:
    blocks: List[str] = []
    for dataset_name, timings in result.timings.items():
        rows = [[name,
                 f"{timing.recommendation_per_1k_users():.2f}",
                 f"{timing.pathfinding_per_10k_paths():.2f}",
                 f"{timing.recommendation_seconds:.3f}",
                 timing.paths_found]
                for name, timing in timings.items()]
        blocks.append(format_table(
            ["Model", "Rec. s/1k users", "Find s/10k paths", "measured s", "paths"],
            rows, title=f"Table III — efficiency on {dataset_name}"))
        blocks.append(f"Fastest recommender: {result.fastest_model(dataset_name)}")
    return "\n\n".join(blocks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=("smoke", "paper"))
    parser.add_argument("--datasets", nargs="*", default=None)
    parser.add_argument("--num-users", type=int, default=20)
    arguments = parser.parse_args()
    print(report(run(profile=arguments.profile, datasets=arguments.datasets,
                     num_users=arguments.num_users)))


if __name__ == "__main__":
    main()
