"""Cluster telemetry: exact cluster-wide aggregates over per-shard windows.

Averaging per-shard percentiles produces statistically meaningless numbers
(the p99 of a cluster is not the mean of shard p99s), so
:class:`ClusterTelemetry` pools the *raw* rolling windows every
:class:`repro.serving.ServingTelemetry` exports
(:meth:`~repro.serving.ServingTelemetry.export_state`) and recomputes
percentiles and QPS over the merged sample set — the same numbers one giant
telemetry instance observing all shards would have produced.

Counters (tier mix, cache statistics) are plain sums; hit *rates* are
recomputed from the summed counters, never averaged.  All undefined fields
follow the repository-wide NaN convention.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Sequence, Tuple

from ..serving.telemetry import (
    PERCENTILES,
    latency_percentiles_of,
    qps_of,
)

#: Per-shard result-cache counters summed into the cluster view.
_CACHE_COUNTERS = ("hits", "misses", "stale_hits", "evictions", "invalidations")


def merge_telemetry_states(states: Sequence[Dict[str, Any]],
                           percentiles: Sequence[float] = PERCENTILES
                           ) -> Dict[str, Any]:
    """Merge ``ServingTelemetry.export_state()`` payloads into one snapshot.

    The merged samples are ordered by timestamp, so the pooled QPS spans the
    earliest-to-latest observation across every contributing window.
    """
    samples: List[Tuple[float, float]] = []
    tiers: Counter = Counter()
    cache_hits = 0
    requests = 0
    for state in states:
        samples.extend(state["samples"])
        tiers.update(state["tier_counts"])
        cache_hits += state["cache_hits"]
        requests += state["requests"]
    samples.sort(key=lambda sample: sample[0])
    return {
        "requests": requests,
        "qps": qps_of([timestamp for timestamp, _ in samples]),
        "latency_ms": latency_percentiles_of(
            [latency for _, latency in samples], percentiles),
        "cache_hit_rate": (cache_hits / requests if requests else float("nan")),
        "tiers": dict(tiers),
    }


class ClusterTelemetry:
    """The cluster-wide view over a set of shard workers.

    Computed on demand from the live per-shard telemetry/cache state — there
    is no double bookkeeping to drift out of sync with the shards.  The
    worker sequence is held *by reference* (not copied): an elastic cluster
    adds and removes shards mid-replay, and the merged view must always
    cover the current membership.
    """

    def __init__(self, workers: Sequence, percentiles: Sequence[float] = PERCENTILES) -> None:
        self._workers = workers
        self.percentiles = tuple(percentiles)

    # ------------------------------------------------------------------ #
    def merged(self) -> Dict[str, Any]:
        """The pooled telemetry snapshot (percentiles/QPS/tier mix)."""
        return merge_telemetry_states(
            [worker.service.telemetry.export_state() for worker in self._workers],
            self.percentiles)

    def cache_totals(self) -> Dict[str, Any]:
        """Summed result-cache statistics with a recomputed hit rate."""
        totals: Dict[str, Any] = {counter: 0 for counter in _CACHE_COUNTERS}
        totals["size"] = 0
        for worker in self._workers:
            cache = worker.service.cache
            totals["size"] += len(cache)
            for counter in _CACHE_COUNTERS:
                totals[counter] += getattr(cache.stats, counter)
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = (totals["hits"] / lookups if lookups
                              else float("nan"))
        return totals

    def snapshot(self) -> Dict[str, Any]:
        """Cluster aggregate plus the untouched per-shard snapshots."""
        snapshot = self.merged()
        snapshot["cache"] = self.cache_totals()
        snapshot["shards"] = {
            str(worker.shard_id): worker.service.telemetry_snapshot()
            for worker in self._workers}
        return snapshot
