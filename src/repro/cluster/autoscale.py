"""Elastic autoscaling: deterministic shard add/remove while traffic flows.

The :class:`Autoscaler` wraps a :class:`~repro.cluster.ClusterService` with
the same ``serve``/``serve_many`` facade (so :class:`repro.simulate.ReplayDriver`
and the whole oracle battery drive it unchanged) and re-evaluates the cluster
size at fixed **virtual-time ticks**: before each burst it checks whether the
shared clock has crossed the next tick boundary and, if so, folds the window's
signals — shed rate, peak admission-queue utilization, request volume — into a
grow/hold/shrink decision:

* **scale up** when the window shed requests (backpressure already degraded
  answers) or some shard's peak queue depth crossed ``up_utilization`` —
  provided the cluster is below ``max_shards``;
* **scale down** after ``down_patience`` consecutive calm ticks (zero sheds,
  every peak below ``down_utilization``) — provided it is above ``min_shards``;
* a ``cooldown_ticks`` refractory period follows every action so one burst
  cannot thrash the ring.

Every ingredient is deterministic: ticks live on the injected trace clock,
signals are integer counters drained per window, and the only choice with any
freedom — which shard to retire when several are equally idle — is drawn from
a generator seeded by ``AutoscaleConfig.seed``.  Same trace + same seed ⇒ the
identical scale-event sequence, which is what lets the
:class:`repro.simulate.ScalingOracle` demand bit-identical replays.

Scaling reuses the ring's bounded-remap guarantee (only displaced keys move)
and :meth:`ClusterService.add_shard`'s cache warm-migration, so a scale event
changes *where* answers come from — provenance — never *what* they are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..serving.service import RecommendationRequest, RecommendationResponse, RecommendationService
from .service import ClusterService, ScaleReport


@dataclass
class AutoscaleConfig:
    """Policy knobs for one :class:`Autoscaler`.

    Utilizations are fractions of ``max_queue_per_shard`` reached by a
    shard's *peak* burst queue depth within one tick window — peaks, not
    averages, are what predict shedding, because admission rejects on the
    burst maximum.
    """

    min_shards: int = 1
    max_shards: int = 8
    tick_interval_s: float = 1.0
    #: Scale up when the window's shed fraction exceeds this (0.0 = any shed).
    up_shed_rate: float = 0.0
    #: ... or when some shard's peak queue utilization reaches this.
    up_utilization: float = 0.9
    #: A tick is "calm" when nothing shed and every peak stays at or below this.
    down_utilization: float = 0.5
    #: Consecutive calm ticks required before shrinking.
    down_patience: int = 2
    #: Ticks to hold after any action before acting again.
    cooldown_ticks: int = 1
    #: Seeds the victim tie-break draw — the only free choice in the policy.
    seed: int = 0
    #: Hand displaced hot cache entries to the new key owner on every event.
    warm_migrate: bool = True

    def validate(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be at least 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")
        if self.up_shed_rate < 0:
            raise ValueError("up_shed_rate must be non-negative")
        if not 0.0 < self.up_utilization <= 1.0:
            raise ValueError("up_utilization must lie in (0, 1]")
        if not 0.0 <= self.down_utilization < self.up_utilization:
            raise ValueError("down_utilization must lie in [0, up_utilization)")
        if self.down_patience < 1:
            raise ValueError("down_patience must be at least 1")
        if self.cooldown_ticks < 0:
            raise ValueError("cooldown_ticks must be non-negative")


@dataclass(frozen=True)
class ScaleEvent:
    """One committed scaling action, stamped with its tick and signals."""

    tick: int                 # 1-based index of the evaluating tick
    at_s: float               # trace time of the tick boundary
    action: str               # "up" | "down"
    shard_id: int             # the shard added or removed
    from_shards: int
    to_shards: int
    reason: str
    migrated_entries: int     # cache entries warm-migrated by this event
    signals: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"tick": self.tick, "at_s": self.at_s, "action": self.action,
                "shard_id": self.shard_id, "from_shards": self.from_shards,
                "to_shards": self.to_shards, "reason": self.reason,
                "migrated_entries": self.migrated_entries,
                "signals": dict(self.signals)}


class Autoscaler:
    """Serve-through facade that resizes the wrapped cluster at clock ticks.

    ``service_factory`` (optional) builds the serving facade for a new shard
    given its id; it defaults to :meth:`ClusterService.clone_reference_service`,
    which is correct whenever all shards serve the same frozen tables.
    """

    def __init__(self, cluster: ClusterService,
                 config: Optional[AutoscaleConfig] = None, *,
                 clock: Optional[Callable[[], float]] = None,
                 service_factory: Optional[
                     Callable[[int], RecommendationService]] = None) -> None:
        self.cluster = cluster
        self.config = config or AutoscaleConfig()
        self.config.validate()
        if not (self.config.min_shards <= cluster.num_shards
                <= self.config.max_shards):
            raise ValueError(
                f"cluster has {cluster.num_shards} shards, outside the "
                f"autoscale range [{self.config.min_shards}, "
                f"{self.config.max_shards}]")
        self._clock = clock or cluster._clock
        self._factory = service_factory
        self._rng = np.random.default_rng(self.config.seed)
        self.initial_shards = cluster.num_shards
        self.events: List[ScaleEvent] = []
        self.ticks = 0
        #: Integral of cluster size over evaluated ticks — the capacity paid
        #: for; a static cluster's equivalent is ``num_shards * ticks``.
        self.shard_ticks = 0
        self._next_tick_at: Optional[float] = None
        self._calm_ticks = 0
        self._cooldown = 0
        self._last_routing = cluster.routing.as_dict()
        cluster.admission.drain_peaks()   # open the first window cleanly

    # ------------------------------------------------------------------ #
    # serving facade (ReplayDriver / oracle surface)
    # ------------------------------------------------------------------ #
    def serve_many(self, requests: Sequence[RecommendationRequest]
                   ) -> List[RecommendationResponse]:
        self._poll()
        return self.cluster.serve_many(requests)

    def serve(self, request: RecommendationRequest) -> RecommendationResponse:
        self._poll()
        return self.cluster.serve(request)

    def build_requests(self, user_entities, top_k=None, exclude_items=None,
                       latency_budget_ms=None) -> List[RecommendationRequest]:
        return self.cluster.build_requests(
            user_entities, top_k=top_k, exclude_items=exclude_items,
            latency_budget_ms=latency_budget_ms)

    @property
    def graph(self):
        return self.cluster.graph

    @property
    def recommender(self):
        return self.cluster.recommender

    @property
    def tiers(self):
        return self.cluster.tiers

    @property
    def workers(self):
        return self.cluster.workers

    @property
    def num_shards(self) -> int:
        return self.cluster.num_shards

    # ------------------------------------------------------------------ #
    # tick machinery
    # ------------------------------------------------------------------ #
    def _poll(self) -> None:
        """Evaluate every tick boundary the clock has passed since last poll.

        The first poll anchors the tick grid at the first burst's trace time,
        so tick boundaries are a pure function of the trace — a prerequisite
        for bit-identical same-seed replays.
        """
        now = self._clock()
        if self._next_tick_at is None:
            self._next_tick_at = now + self.config.tick_interval_s
            return
        while now >= self._next_tick_at:
            self._evaluate(self._next_tick_at)
            self._next_tick_at += self.config.tick_interval_s

    def _window_signals(self) -> Dict[str, Any]:
        """Drain and summarise the signals accumulated since the last tick."""
        routing = self.cluster.routing.as_dict()
        requests = routing["requests"] - self._last_routing["requests"]
        shed = routing["shed"] - self._last_routing["shed"]
        self._last_routing = routing
        peaks = self.cluster.admission.drain_peaks()
        capacity = self.cluster.admission.max_queue_per_shard
        peak_utilization = max(peaks.values(), default=0) / capacity
        merged = self.cluster.telemetry.merged()
        return {
            "requests": requests,
            "shed": shed,
            # NaN convention: a window with no requests has no shed *rate*.
            "shed_rate": shed / requests if requests else float("nan"),
            "peak_utilization": peak_utilization,
            "peaks": peaks,
            "p99_ms": merged["latency_ms"]["p99"],
        }

    def _evaluate(self, at_s: float) -> None:
        """One scaling decision at a tick boundary."""
        self.ticks += 1
        self.shard_ticks += self.cluster.num_shards
        signals = self._window_signals()
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        config = self.config
        shards = self.cluster.num_shards
        shed = signals["shed"]
        requests = signals["requests"]
        peak_utilization = signals["peak_utilization"]
        pressured = ((requests > 0 and signals["shed_rate"] > config.up_shed_rate)
                     or peak_utilization >= config.up_utilization)
        calm = shed == 0 and peak_utilization <= config.down_utilization
        if pressured and shards < config.max_shards:
            self._calm_ticks = 0
            service = (self._factory(self.cluster.next_shard_id)
                       if self._factory is not None else None)
            report = self.cluster.add_shard(
                service, warm_migrate=config.warm_migrate)
            reason = (f"shed {shed}/{requests} requests" if shed
                      else f"peak utilization {peak_utilization:.2f}")
            self._commit(at_s, report, reason, signals, from_shards=shards)
        elif calm:
            self._calm_ticks += 1
            if self._calm_ticks >= config.down_patience and shards > config.min_shards:
                victim = self._pick_victim(signals["peaks"])
                report = self.cluster.remove_shard(
                    victim, warm_migrate=config.warm_migrate)
                self._commit(at_s, report,
                             f"calm for {self._calm_ticks} ticks",
                             signals, from_shards=shards)
                self._calm_ticks = 0
        else:
            self._calm_ticks = 0

    def _pick_victim(self, peaks: Dict[int, int]) -> int:
        """The least-loaded shard this window; ties broken by the seeded rng."""
        loads = {worker.shard_id: peaks.get(worker.shard_id, 0)
                 for worker in self.cluster.workers}
        quietest = min(loads.values())
        candidates = sorted(shard for shard, load in loads.items()
                            if load == quietest)
        return int(candidates[self._rng.integers(len(candidates))])

    def _commit(self, at_s: float, report: ScaleReport, reason: str,
                signals: Dict[str, Any], *, from_shards: int) -> None:
        self.events.append(ScaleEvent(
            tick=self.ticks, at_s=at_s,
            action="up" if report.action == "add" else "down",
            shard_id=report.shard_id, from_shards=from_shards,
            to_shards=report.num_shards, reason=reason,
            migrated_entries=report.migrated_entries, signals=signals))
        self._cooldown = self.config.cooldown_ticks

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def autoscale_snapshot(self) -> Dict[str, Any]:
        """The autoscaler's own state, JSON-shaped."""
        return {
            "min_shards": self.config.min_shards,
            "max_shards": self.config.max_shards,
            "tick_interval_s": self.config.tick_interval_s,
            "initial_shards": self.initial_shards,
            "current_shards": self.cluster.num_shards,
            "ticks": self.ticks,
            "shard_ticks": self.shard_ticks,
            "scale_ups": sum(event.action == "up" for event in self.events),
            "scale_downs": sum(event.action == "down" for event in self.events),
            "migrated_entries": sum(event.migrated_entries
                                    for event in self.events),
            "events": [event.as_dict() for event in self.events],
        }

    def telemetry_snapshot(self) -> Dict[str, Any]:
        """The wrapped cluster's snapshot plus an ``autoscale`` section."""
        snapshot = self.cluster.telemetry_snapshot()
        snapshot["autoscale"] = self.autoscale_snapshot()
        return snapshot
