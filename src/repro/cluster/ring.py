"""Consistent-hash shard routing: a user-keyed ring with virtual nodes.

Sharding by ``user_entity % num_shards`` would remap almost every user
whenever a shard is added or removed, invalidating every per-shard cache at
once.  The classic consistent-hash ring bounds that churn: each shard owns
``virtual_nodes`` pseudo-random points on a 64-bit circle and a key belongs
to the first point at or after its own hash, so adding one shard to an
``n``-shard ring only remaps an expected ``1/(n+1)`` of the keys — all of
them *to* the new shard — and removing a shard only remaps the keys it owned.

Hashes are ``blake2b`` over stable strings (never Python's randomised
``hash``), so the same ``(shard ids, virtual_nodes, seed)`` triple produces
the identical ring in every process — a prerequisite for the deterministic
cluster replays of :mod:`repro.simulate`.

:meth:`ConsistentHashRing.replicas` walks the ring clockwise from a key's
point collecting *distinct* shards, so the R-way replica set of a key is the
primary followed by R-1 deterministic, pairwise-distinct backups.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Sequence, Tuple


def stable_hash64(text: str) -> int:
    """A process-independent 64-bit hash (``blake2b``, not ``hash()``)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """A consistent-hash ring over integer shard ids.

    Parameters
    ----------
    shard_ids:
        The initial shard set (distinct integers, typically ``range(n)``).
    virtual_nodes:
        Points per shard on the ring.  More points smooth the key balance
        across shards at the cost of a larger (still tiny) sorted table.
    seed:
        Folded into every hash, so two rings with different seeds place both
        shards and keys differently — workload-independent ring identity.
    """

    def __init__(self, shard_ids: Iterable[int], virtual_nodes: int = 64,
                 seed: int = 0) -> None:
        shards = list(shard_ids)
        if not shards:
            raise ValueError("ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError("shard ids must be distinct")
        if virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        self.virtual_nodes = virtual_nodes
        self.seed = seed
        # Parallel sorted structure: _points[i] is the ring position owned by
        # _owners[i].  Ties (astronomically rare with 64-bit hashes) break by
        # shard id because insertion keeps (point, shard) pairs sorted.
        self._entries: List[Tuple[int, int]] = []
        self._shards: set = set()
        for shard in shards:
            self.add_shard(shard)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> Tuple[int, ...]:
        """The current shard set, sorted."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def add_shard(self, shard_id: int) -> None:
        """Insert a shard's virtual nodes (stable for every other shard)."""
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id} is already on the ring")
        for vnode in range(self.virtual_nodes):
            point = stable_hash64(f"{self.seed}:shard:{shard_id}:{vnode}")
            bisect.insort(self._entries, (point, shard_id))
        self._shards.add(shard_id)

    def remove_shard(self, shard_id: int) -> None:
        """Drop a shard; only keys it owned are remapped."""
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id} is not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._entries = [entry for entry in self._entries if entry[1] != shard_id]
        self._shards.discard(shard_id)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def key_point(self, key: int) -> int:
        """Where a routing key lands on the ring."""
        return stable_hash64(f"{self.seed}:key:{key}")

    def primary(self, key: int) -> int:
        """The shard owning ``key`` (first ring point at or after its hash)."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: int, count: int) -> List[int]:
        """The first ``count`` *distinct* shards clockwise from ``key``.

        Index 0 is the primary; the rest are the deterministic backup order a
        router retries in.  ``count`` is capped at the shard population.
        """
        if count <= 0:
            raise ValueError("replica count must be positive")
        count = min(count, len(self._shards))
        start = bisect.bisect_left(self._entries, (self.key_point(key), -1))
        chosen: List[int] = []
        seen: set = set()
        total = len(self._entries)
        for offset in range(total):
            shard = self._entries[(start + offset) % total][1]
            if shard not in seen:
                seen.add(shard)
                chosen.append(shard)
                if len(chosen) == count:
                    break
        return chosen

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def assignment(self, keys: Sequence[int]) -> dict:
        """key → primary shard for a key population (test/balance helper)."""
        return {key: self.primary(key) for key in keys}

    def load_balance(self, keys: Sequence[int]) -> dict:
        """shard → fraction of ``keys`` it owns."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.primary(key)] += 1
        total = max(1, len(keys))
        return {shard: counts[shard] / total for shard in sorted(counts)}

    def keys_for_shard(self, keys: Sequence[int], shard_id: int) -> Tuple[int, ...]:
        """The subset of ``keys`` whose *primary* is ``shard_id``, sorted.

        The inverse lookup hot-key adversaries need: given a candidate key
        population, which keys land on one chosen shard.  Sorted so callers
        indexing into it with a seeded rng stay deterministic.
        """
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id} is not on the ring")
        return tuple(sorted(key for key in keys
                            if self.primary(key) == shard_id))
