"""Per-shard circuit breakers: stop routing to a shard that keeps failing.

The :class:`CircuitBreaker` implements the classic three-state machine,
deterministically, on the injected clock:

* **closed** — the shard serves normally; consecutive serve failures are
  counted and a success resets the count.
* **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: the router stops offering the shard traffic for ``cooldown_s``
  seconds of (virtual) time, failing its keys over to replicas *before* the
  health model would ever notice.
* **half-open** — once the cooldown elapses the breaker admits a single probe
  request; a success closes the breaker again, a failure re-opens it for
  another full cooldown.

Determinism: transitions depend only on the order of recorded
successes/failures and on the injected clock, both of which are replay
inputs — so a same-seed fault replay trips and recovers the exact same
breakers at the exact same virtual times.  Every transition is recorded (and
forwarded to an optional listener, e.g. the fault ledger).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class BreakerConfig:
    """Thresholds of the per-shard breaker state machine."""

    failure_threshold: int = 3     # consecutive failures that trip the breaker
    cooldown_s: float = 0.25       # open → half-open delay on the injected clock

    def validate(self) -> None:
        if self.failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")


@dataclass(frozen=True)
class BreakerTransition:
    """One recorded state change of one shard's breaker."""

    at_s: float
    shard_id: int
    state: str            # the state entered
    detail: str = ""


@dataclass
class _ShardBreaker:
    """Mutable per-shard breaker state (internal)."""

    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at_s: float = 0.0
    probe_in_flight: bool = False


class CircuitBreaker:
    """Deterministic per-shard circuit breakers over one injected clock.

    ``on_transition`` (settable after construction) receives every
    :class:`BreakerTransition`; the fault injector uses it to ledger breaker
    activity alongside the faults that caused it.
    """

    def __init__(self, clock: Callable[[], float], *,
                 config: Optional[BreakerConfig] = None) -> None:
        self.config = config or BreakerConfig()
        self.config.validate()
        self._clock = clock
        self._shards: Dict[int, _ShardBreaker] = {}
        self.transitions: List[BreakerTransition] = []
        self.on_transition: Optional[Callable[[BreakerTransition], None]] = None

    def _shard(self, shard_id: int) -> _ShardBreaker:
        breaker = self._shards.get(shard_id)
        if breaker is None:
            breaker = self._shards[shard_id] = _ShardBreaker()
        return breaker

    def _enter(self, shard_id: int, breaker: _ShardBreaker, state: str,
               detail: str) -> None:
        breaker.state = state
        transition = BreakerTransition(at_s=self._clock(), shard_id=shard_id,
                                       state=state, detail=detail)
        self.transitions.append(transition)
        if self.on_transition is not None:
            self.on_transition(transition)

    # ------------------------------------------------------------------ #
    # routing surface
    # ------------------------------------------------------------------ #
    def state(self, shard_id: int) -> str:
        """The shard's current breaker state (cooldown-aware)."""
        breaker = self._shards.get(shard_id)
        if breaker is None:
            return CLOSED
        if (breaker.state == OPEN
                and self._clock() - breaker.opened_at_s >= self.config.cooldown_s):
            self._enter(shard_id, breaker, HALF_OPEN, "cooldown elapsed")
            breaker.probe_in_flight = False
        return breaker.state

    def allows(self, shard_id: int) -> bool:
        """Whether the router may offer this shard a request right now.

        A half-open breaker admits exactly one probe per cooldown window;
        ``allows`` is a pure check — the router calls :meth:`arm_probe` once
        it actually dispatches to the shard, and further ``allows`` calls say
        no until the probe's outcome is recorded.
        """
        state = self.state(shard_id)
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        return not self._shard(shard_id).probe_in_flight

    def arm_probe(self, shard_id: int) -> None:
        """Mark the half-open shard's single probe as dispatched."""
        breaker = self._shard(shard_id)
        if breaker.state == HALF_OPEN:
            breaker.probe_in_flight = True

    # ------------------------------------------------------------------ #
    # outcome recording
    # ------------------------------------------------------------------ #
    def record_success(self, shard_id: int) -> None:
        breaker = self._shard(shard_id)
        breaker.consecutive_failures = 0
        if breaker.state == HALF_OPEN:
            breaker.probe_in_flight = False
            self._enter(shard_id, breaker, CLOSED, "probe succeeded")
        elif breaker.state == OPEN:
            # A success can only come from an explicitly bypassed serve (e.g.
            # the shed path); it does not short-circuit the cooldown.
            return

    def record_failure(self, shard_id: int, detail: str = "") -> None:
        breaker = self._shard(shard_id)
        breaker.consecutive_failures += 1
        if breaker.state == HALF_OPEN:
            breaker.probe_in_flight = False
            breaker.opened_at_s = self._clock()
            self._enter(shard_id, breaker, OPEN,
                        f"probe failed: {detail}" if detail else "probe failed")
        elif (breaker.state == CLOSED
              and breaker.consecutive_failures >= self.config.failure_threshold):
            breaker.opened_at_s = self._clock()
            self._enter(shard_id, breaker, OPEN,
                        f"{breaker.consecutive_failures} consecutive failures"
                        + (f": {detail}" if detail else ""))

    # ------------------------------------------------------------------ #
    # membership & observability
    # ------------------------------------------------------------------ #
    def forget_shard(self, shard_id: int) -> None:
        """Drop state for a decommissioned shard (ids are never reused)."""
        self._shards.pop(shard_id, None)

    def snapshot(self) -> Dict[str, str]:
        """Shard id (as str, JSON-friendly) → current state."""
        return {str(shard_id): self.state(shard_id)
                for shard_id in sorted(self._shards)}
