"""Shard health: deterministic status tracking and seeded failure injection.

Failover only stays replayable if *when* a shard fails is part of the
experiment's inputs.  The :class:`HealthModel` therefore never observes
anything — shards are marked ``DEGRADED``/``DOWN`` either explicitly
(``fail`` / ``degrade`` / ``recover``), through a scripted
:class:`HealthEvent` schedule applied against an injectable clock (a
:class:`repro.simulate.TraceClock` during virtual-time replays), or through
:func:`random_schedule`, which derives a reproducible event list from a seed.

The router treats anything other than ``HEALTHY`` as unavailable: a degraded
shard stops receiving traffic entirely rather than serving with unknown
quality, and its keys fail over to their replicas.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


class ShardStatus(str, Enum):
    """Serving eligibility of one shard."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DOWN = "down"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class HealthEvent:
    """One scheduled status transition, ordered by trace time.

    Events sharing the same ``at_s`` apply in *scheduling order* (the order
    the event list gave them to :meth:`HealthModel.schedule`), not in the
    dataclass field order — so a ``[fail@t, recover@t]`` script
    deterministically ends recovered.
    """

    at_s: float
    shard_id: int
    status: ShardStatus


class HealthModel:
    """Status registry for a fixed shard population.

    ``clock`` enables scheduled events: each availability query first applies
    every event whose timestamp the clock has passed, so a replay driving a
    shared :class:`~repro.simulate.TraceClock` sees shards fail and recover
    at exact trace times — identically on every run.
    """

    def __init__(self, shard_ids: Iterable[int],
                 clock: Optional[Callable[[], float]] = None) -> None:
        self._status: Dict[int, ShardStatus] = {
            shard: ShardStatus.HEALTHY for shard in shard_ids}
        if not self._status:
            raise ValueError("health model needs at least one shard")
        self._clock = clock
        # (at_s, scheduling seq, event): the seq tie-breaks equal timestamps
        # so simultaneous events apply in the order they were scheduled —
        # sorting bare HealthEvents would silently re-order same-instant
        # ticks by shard id and status string instead.
        self._pending: List[Tuple[float, int, HealthEvent]] = []
        self._scheduled = 0

    # ------------------------------------------------------------------ #
    # direct control
    # ------------------------------------------------------------------ #
    def _require_shard(self, shard_id: int) -> None:
        if shard_id not in self._status:
            raise KeyError(f"unknown shard {shard_id}")

    def set_status(self, shard_id: int, status: ShardStatus) -> None:
        self._require_shard(shard_id)
        self._status[shard_id] = ShardStatus(status)

    def fail(self, shard_id: int) -> None:
        """Mark a shard ``DOWN`` (hard failure — no traffic at all)."""
        self.set_status(shard_id, ShardStatus.DOWN)

    def degrade(self, shard_id: int) -> None:
        """Mark a shard ``DEGRADED`` (soft failure — drained until recovery)."""
        self.set_status(shard_id, ShardStatus.DEGRADED)

    def recover(self, shard_id: int) -> None:
        self.set_status(shard_id, ShardStatus.HEALTHY)

    # ------------------------------------------------------------------ #
    # elastic membership
    # ------------------------------------------------------------------ #
    def add_shard(self, shard_id: int,
                  status: ShardStatus = ShardStatus.HEALTHY) -> None:
        """Register a new shard (autoscale scale-up), healthy by default."""
        if shard_id in self._status:
            raise ValueError(f"shard {shard_id} already registered")
        self._status[shard_id] = ShardStatus(status)

    def remove_shard(self, shard_id: int) -> None:
        """Forget a decommissioned shard and any events still scheduled for it."""
        self._require_shard(shard_id)
        if len(self._status) == 1:
            raise ValueError("cannot remove the last shard from the health model")
        del self._status[shard_id]
        self._pending = [entry for entry in self._pending
                         if entry[2].shard_id != shard_id]

    # ------------------------------------------------------------------ #
    # scheduled events
    # ------------------------------------------------------------------ #
    def schedule(self, event: HealthEvent) -> None:
        """Queue one future transition (requires a clock to ever apply).

        Events due at the same instant apply in scheduling order (a
        monotonic sequence number breaks the tie), so event-list order is
        the documented, deterministic simultaneous-event semantics.
        """
        self._require_shard(event.shard_id)
        if self._clock is None:
            raise RuntimeError("scheduled health events need a clock; "
                               "construct HealthModel(..., clock=...)")
        bisect.insort(self._pending, (event.at_s, self._scheduled, event))
        self._scheduled += 1

    def load_schedule(self, events: Sequence[HealthEvent]) -> None:
        for event in events:
            self.schedule(event)

    def _apply_due(self) -> None:
        if self._clock is None or not self._pending:
            return
        now = self._clock()
        while self._pending and self._pending[0][0] <= now:
            event = self._pending.pop(0)[2]
            self._status[event.shard_id] = event.status

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def status(self, shard_id: int) -> ShardStatus:
        self._apply_due()
        self._require_shard(shard_id)
        return self._status[shard_id]

    def is_available(self, shard_id: int) -> bool:
        """Whether the router may send traffic to the shard."""
        return self.status(shard_id) is ShardStatus.HEALTHY

    def available_shards(self) -> Tuple[int, ...]:
        """Healthy shards in ascending id order (the last-resort scan order)."""
        self._apply_due()
        return tuple(shard for shard in sorted(self._status)
                     if self._status[shard] is ShardStatus.HEALTHY)

    def snapshot(self) -> Dict[str, str]:
        """shard id (as string, JSON-friendly) → status value."""
        self._apply_due()
        return {str(shard): self._status[shard].value
                for shard in sorted(self._status)}


def random_schedule(shard_ids: Sequence[int], seed: int, horizon_s: float,
                    failures: int = 1, mean_outage_s: float = 5.0,
                    degraded_fraction: float = 0.5) -> List[HealthEvent]:
    """A reproducible failure/recovery script for chaos-style replays.

    Draws ``failures`` outages from one seeded generator: each picks a shard,
    a start time within ``horizon_s``, an exponential outage length and
    whether the shard goes ``DEGRADED`` (with ``degraded_fraction``
    probability) or hard ``DOWN``.  The same arguments always produce the
    identical event list, so a chaos replay is as replayable as a clean one.
    """
    if not shard_ids:
        raise ValueError("need at least one shard to schedule failures for")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    if failures < 0:
        raise ValueError("failures must be non-negative")
    rng = np.random.default_rng(seed)
    shards = np.asarray(shard_ids, dtype=np.int64)
    events: List[HealthEvent] = []
    for _ in range(failures):
        shard = int(shards[rng.integers(shards.size)])
        start = float(rng.uniform(0.0, horizon_s))
        outage = float(rng.exponential(mean_outage_s))
        status = (ShardStatus.DEGRADED if rng.random() < degraded_fraction
                  else ShardStatus.DOWN)
        events.append(HealthEvent(at_s=start, shard_id=shard, status=status))
        events.append(HealthEvent(at_s=start + outage, shard_id=shard,
                                  status=ShardStatus.HEALTHY))
    return sorted(events)
