"""The cluster facade: sharded, replicated serving with deterministic failover.

``ClusterService`` runs N shard workers — each an independent
:class:`repro.serving.RecommendationService` with its own result cache,
micro-batcher and telemetry over the *shared* frozen artifacts — behind a
consistent-hash router:

1. a request's user keys into the ring; its replica chain is the primary
   shard followed by ``replication_factor - 1`` distinct backups;
2. unavailable shards (per the :class:`~repro.cluster.health.HealthModel`)
   are skipped, so a failed primary deterministically fails over to its first
   healthy replica — and because every shard searches the same frozen
   policy/representations, the failover answer is *identical* to the one the
   primary would have served;
3. the :class:`~repro.cluster.admission.AdmissionController` bounds how many
   requests one burst may queue on a shard; overflow spills to replicas, and
   when the whole chain is saturated the request is **shed** into the shard's
   fallback tier chain (stale cache → embedding top-k) by rewriting its
   latency budget to zero — backpressure degrades answers, it never stalls;
4. if no replica is available at all, any healthy shard stands in (every
   shard holds the full model), and only a fully-down cluster raises.

The facade exposes the exact ``serve``/``serve_many`` surface of a single
:class:`~repro.serving.RecommendationService`, plus the reference attributes
(``recommender``/``graph``/``tiers``) the :mod:`repro.simulate` oracles
expect — so :class:`~repro.simulate.ReplayDriver` and the whole oracle
battery run against a cluster unchanged.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..darl.inference import PathRecommender
from ..serving.service import (
    RecommendationRequest,
    RecommendationResponse,
    RecommendationService,
    ServingConfig,
)
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .config import ClusterConfig
from .health import HealthModel
from .ring import ConsistentHashRing
from .telemetry import ClusterTelemetry


class ClusterUnavailableError(RuntimeError):
    """Raised when no healthy shard is left to answer a request."""


#: How a dispatched request reached its serving shard.
DISPOSITIONS = ("primary", "failover", "overflow", "shed")


@dataclass
class RoutingStats:
    """Cumulative routing outcomes since construction/reset."""

    requests: int = 0
    primary: int = 0      # served by the key's primary shard
    failover: int = 0     # primary unavailable → served by a replica/stand-in
    overflow: int = 0     # primary full → served by a replica with capacity
    shed: int = 0         # whole chain saturated → fallback tier chain
    retries: int = 0      # serve attempts repeated on another shard
    faulted: int = 0      # answers that carry fault provenance

    def count(self, disposition: str) -> None:
        self.requests += 1
        setattr(self, disposition, getattr(self, disposition) + 1)

    def as_dict(self) -> Dict[str, int]:
        return {"requests": self.requests, "primary": self.primary,
                "failover": self.failover, "overflow": self.overflow,
                "shed": self.shed, "retries": self.retries,
                "faulted": self.faulted}


@dataclass
class ShardWorker:
    """One shard: an id plus its independent serving facade."""

    shard_id: int
    service: RecommendationService


@dataclass(frozen=True)
class ScaleReport:
    """Outcome of one :meth:`ClusterService.add_shard` / ``remove_shard``.

    ``migrated_entries`` counts result-cache entries that were warm-migrated
    to their new owner instead of being cold-started or dropped.
    """

    action: str            # "add" | "remove"
    shard_id: int
    num_shards: int        # cluster size after the change
    migrated_entries: int


@dataclass(frozen=True)
class _Dispatch:
    """Where one request goes and as what."""

    shard_id: int
    disposition: str
    request: RecommendationRequest   # possibly budget-rewritten (shed)
    #: Fault provenance decided at dispatch time (e.g. "circuit_open").
    fault: Optional[str] = None
    #: Serve outside the shard groups with the injector bypassed — the
    #: router's own degraded answer when no shard is dispatchable.
    bypass: bool = False


class ClusterService:
    """N shard workers behind a consistent-hash router with failover.

    Build one from prebuilt per-shard services, or via :meth:`from_cadrl` /
    :meth:`from_artifacts`, which clone an independent
    :class:`~repro.darl.inference.PathRecommender` per shard over the shared
    frozen tables (own milestone/action caches per shard, zero weight copies).
    """

    def __init__(self, services: Sequence[RecommendationService], *,
                 config: Optional[ClusterConfig] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 health: Optional[HealthModel] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 name: str = "ClusterService") -> None:
        workers = list(services)
        if not workers:
            raise ValueError("a cluster needs at least one shard service")
        if config is None:
            config = ClusterConfig(num_shards=len(workers),
                                   replication_factor=min(2, len(workers)))
        config.validate()
        if config.num_shards != len(workers):
            raise ValueError(f"config says {config.num_shards} shards but "
                             f"{len(workers)} services were provided")
        self.config = config
        self.name = name
        self._clock = clock
        self.workers = [ShardWorker(shard_id=shard, service=service)
                        for shard, service in enumerate(workers)]
        self._workers_by_id = {worker.shard_id: worker for worker in self.workers}
        self._next_shard_id = len(self.workers)
        self.ring = ConsistentHashRing(range(len(workers)),
                                       virtual_nodes=config.virtual_nodes,
                                       seed=config.seed)
        self.health = health or HealthModel(range(len(workers)), clock=clock)
        for shard in config.failed_shards:
            self.health.fail(shard)
        self.admission = AdmissionController(config.max_queue_per_shard)
        self.routing = RoutingStats()
        self.telemetry = ClusterTelemetry(self.workers)
        #: Optional per-shard circuit breakers, consulted ahead of the health
        #: model during dispatch.  ``None`` keeps the legacy routing exactly.
        self.breaker = breaker
        #: Optional fault injector (``repro.faults``), attached via
        #: ``FaultInjector.install``; duck-typed so the cluster never imports
        #: the faults package.
        self.injector = None
        #: The "fault shadow": cache keys whose answers a fault path touched
        #: (reroute, retry, shed), mapped to the provenance later answers for
        #: the same key inherit.  A fault can perturb cache *placement* — a
        #: retried request warms a replica's cache instead of its primary's —
        #: and the drift outlives the fault itself; conservatively stamping
        #: every answer downstream of a perturbed key keeps the
        #: fault-tolerance oracle's contract exact.  Empty (and unread)
        #: without a breaker or injector.
        self._fault_shadow: Dict[Tuple[int, int, Tuple[int, ...]], str] = {}

    # ------------------------------------------------------------------ #
    # construction over shared artifacts
    # ------------------------------------------------------------------ #
    @classmethod
    def from_cadrl(cls, model, *, transe=None,
                   config: Optional[ClusterConfig] = None,
                   serving_config: Optional[ServingConfig] = None,
                   clock: Callable[[], float] = time.perf_counter,
                   breaker: Optional[CircuitBreaker] = None,
                   name: str = "CADRL (cluster)") -> "ClusterService":
        """A cluster of shard services over one fitted :class:`repro.darl.CADRL`.

        Each shard gets its *own* :class:`PathRecommender` (so milestone and
        action caches are per-shard, like real workers) cloned from the
        model's recommender — same policy object, same frozen tables, same
        search hyper-parameters — which is what makes failover answers
        bit-identical across shards.
        """
        if model.recommender is None:
            raise RuntimeError("CADRL.fit must be called before serving")
        config = config or ClusterConfig()
        config.validate()
        reference = model.recommender
        services = []
        for shard in range(config.num_shards):
            recommender = PathRecommender(
                model.graph, model.category_graph, model.representations,
                reference.policy, guidance=reference.guidance,
                max_path_length=reference.max_path_length,
                max_entity_actions=reference.entity_environment.max_actions,
                max_category_actions=reference.category_environment.max_actions,
                use_dual_agent=reference.use_dual_agent,
                config=reference.config)
            services.append(RecommendationService(
                model.graph, model.category_graph, model.representations,
                reference.policy, recommender=recommender, transe=transe,
                config=serving_config, clock=clock,
                name=f"{name}/shard-{shard}"))
        return cls(services, config=config, clock=clock, breaker=breaker,
                   name=name)

    @classmethod
    def from_artifacts(cls, path, *, config: Optional[ClusterConfig] = None,
                       serving_config: Optional[ServingConfig] = None,
                       clock: Callable[[], float] = time.perf_counter,
                       breaker: Optional[CircuitBreaker] = None,
                       name: str = "CADRL (cluster from artifacts)"
                       ) -> "ClusterService":
        """Boot a whole cluster from a persisted pipeline directory.

        The cluster spec defaults to the persisted ``RunConfig.cluster``
        section, the serving knobs to its ``serving`` section.
        """
        from ..pipeline import load_pipeline  # deferred: keep imports light

        result = load_pipeline(path, until=("train",))
        return cls.from_cadrl(
            result.cadrl, transe=result.transe,
            config=config or result.config.cluster,
            serving_config=serving_config or result.config.serving,
            clock=clock, breaker=breaker, name=name)

    # ------------------------------------------------------------------ #
    # reference surface (oracles, reports, duck-typed callers)
    # ------------------------------------------------------------------ #
    @property
    def _reference(self) -> RecommendationService:
        return self.workers[0].service

    @property
    def graph(self):
        return self._reference.graph

    @property
    def recommender(self):
        """A reference recommender over the shared artifacts.

        Every shard searches the same frozen tables, so shard 0's recommender
        reproduces any shard's full-search answer — which is exactly what the
        :class:`repro.simulate.FullSearchOracle` recomputes against.
        """
        return self._reference.recommender

    @property
    def tiers(self):
        return self._reference.tiers

    @property
    def num_shards(self) -> int:
        return len(self.workers)

    @property
    def next_shard_id(self) -> int:
        """The id the next :meth:`add_shard` will assign (ids are never reused)."""
        return self._next_shard_id

    def worker(self, shard_id: int) -> ShardWorker:
        """The live worker for a shard id (ids are sparse once elastic)."""
        worker = self._workers_by_id.get(shard_id)
        if worker is None:
            raise ValueError(f"unknown shard {shard_id} (cluster has "
                             f"{sorted(self._workers_by_id)})")
        return worker

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def replica_chain(self, user_entity: int) -> List[int]:
        """The deterministic shard preference order for a user's requests."""
        return self.ring.replicas(user_entity, self.config.replication_factor)

    def _breaker_allows(self, shard_id: int) -> bool:
        return self.breaker is None or self.breaker.allows(shard_id)

    def _claim(self, shard_id: int) -> int:
        """Mark the shard as actually dispatched-to (arms a half-open probe)."""
        if self.breaker is not None:
            self.breaker.arm_probe(shard_id)
        return shard_id

    def _dispatch(self, request: RecommendationRequest) -> _Dispatch:
        """Assign one request to a shard under breaker + health + admission.

        The circuit breaker is consulted *ahead of* the health model: a shard
        whose breaker is open is skipped exactly like an unhealthy one, so a
        repeatedly-failing shard loses traffic long before any scripted
        health event marks it down.  With no breaker configured the legacy
        routing is preserved bit for bit.
        """
        chain = self.replica_chain(request.user_entity)
        primary = chain[0]
        # Walk the chain once, remembering where a breaker (not health, not
        # admission) vetoed a healthy shard: any shard chosen *past* that
        # point is a breaker-caused reroute and its answer carries
        # ``circuit_open`` provenance — the replica's cache state may
        # legitimately produce a different (degraded) answer than the clean
        # replay's primary would have.
        available: List[int] = []
        positions: Dict[int, int] = {}
        first_blocked = len(chain)
        for position, shard in enumerate(chain):
            if not self.health.is_available(shard):
                continue
            if not self._breaker_allows(shard):
                first_blocked = min(first_blocked, position)
                continue
            positions[shard] = position
            available.append(shard)
        breaker_blocked = first_blocked < len(chain)
        for shard in available:
            if self.admission.try_admit(shard):
                if shard == primary:
                    disposition = "primary"
                elif (self.health.is_available(primary)
                      and self._breaker_allows(primary)):
                    disposition = "overflow"
                else:
                    disposition = "failover"
                fault = ("circuit_open" if positions[shard] > first_blocked
                         else None)
                return _Dispatch(self._claim(shard), disposition, request,
                                 fault=fault)
        if not available:
            # Whole replica chain is unavailable.  Any healthy shard can
            # stand in (each holds the full model); scan in id order so the
            # choice is deterministic.
            healthy = self.health.available_shards()
            for shard in healthy:
                if not self._breaker_allows(shard):
                    continue
                if self.admission.try_admit(shard):
                    return _Dispatch(
                        self._claim(shard), "failover", request,
                        fault="circuit_open" if breaker_blocked else None)
                available.append(shard)
            if not available:
                if not healthy:
                    raise ClusterUnavailableError(
                        f"no healthy shard left in {self.name} "
                        f"(health: {self.health.snapshot()})")
                # Every healthy shard's breaker is open: answer locally from
                # the cheap fallback tiers with explicit provenance instead
                # of hammering shards the breakers just isolated.
                shed = dataclasses.replace(request, latency_budget_ms=0.0)
                anchor = next((shard for shard in chain if shard in healthy),
                              healthy[0])
                return _Dispatch(anchor, "shed", shed,
                                 fault="circuit_open", bypass=True)
        # Every available shard is at its queue bound: shed into the first
        # one's fallback tier chain by zeroing the latency budget — the shard
        # then answers from its stale cache or the embedding tier, both far
        # below full-search cost, instead of deepening the queue.
        shed = dataclasses.replace(request, latency_budget_ms=0.0)
        return _Dispatch(self._claim(available[0]), "shed", shed,
                         fault="circuit_open" if breaker_blocked else None)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def serve_many(self, requests: Sequence[RecommendationRequest]
                   ) -> List[RecommendationResponse]:
        """Route one burst: group by shard, serve each group batched.

        Dispatch walks the burst in order (admission is order-dependent and
        therefore replayable); each shard's group keeps its relative order
        and is answered by that shard's own ``serve_many`` (dedup + batched
        frontier search), and the responses are stitched back into the
        original request order.
        """
        self.admission.begin_burst()
        dispatches: List[_Dispatch] = []
        groups: Dict[int, List[int]] = {}
        for index, request in enumerate(requests):
            dispatch = self._dispatch(request)
            self.routing.count(dispatch.disposition)
            dispatches.append(dispatch)
            if not dispatch.bypass:
                groups.setdefault(dispatch.shard_id, []).append(index)

        responses: List[Optional[RecommendationResponse]] = [None] * len(dispatches)
        for shard_id in sorted(groups):
            indices = groups[shard_id]
            batch = [dispatches[index].request for index in indices]
            try:
                served = self._serve_on_shard(shard_id, batch)
            except Exception as error:  # repro: ignore[EXC001] a faulted shard must fail over per request, never crash the burst; the failure feeds the breaker and is re-served below
                self._record_shard_failure(shard_id, error)
                served = [self._serve_with_retry(dispatches[index],
                                                 requests[index], error)
                          for index in indices]
            else:
                self._record_shard_success(shard_id)
            for index, response in zip(indices, served):
                if dispatches[index].disposition == "shed":
                    # Restore the caller's request (the zero-budget rewrite is
                    # an internal routing device) and mark the degradation, so
                    # replay records and oracles see an honest "this answer
                    # was shed by backpressure" instead of a tier-policy
                    # violation on an unconstrained request.
                    response.request = requests[index]
                    response.shed = True
                self._apply_fault_provenance(dispatches[index],
                                             requests[index], response)
                if response.fault is not None:
                    self.routing.faulted += 1
                responses[index] = response

        for index, dispatch in enumerate(dispatches):
            if dispatch.bypass:
                response = self._shed_serve(
                    requests[index], dispatch.shard_id, dispatch.fault)
                self._apply_fault_provenance(dispatch, requests[index],
                                             response)
                self.routing.faulted += 1
                responses[index] = response
        return responses  # type: ignore[return-value]

    @staticmethod
    def _shadow_key(request: RecommendationRequest
                    ) -> Tuple[int, int, Tuple[int, ...]]:
        """The result-cache identity of a request (the fault-shadow key)."""
        return (request.user_entity, request.top_k,
                tuple(sorted(request.exclude_items)))

    def _apply_fault_provenance(self, dispatch: _Dispatch,
                                request: RecommendationRequest,
                                response: RecommendationResponse) -> None:
        """Stamp and propagate fault provenance for one answered request.

        Provenance precedence: whatever the serve path already stamped (shed
        and retry answers), then the dispatch decision (breaker reroutes),
        then the fault shadow of the request's cache key.  Any stamped answer
        taints the key, so answers downstream of fault-perturbed cache state
        stay accounted for.
        """
        if self.breaker is None and self.injector is None:
            return
        key = self._shadow_key(request)
        if response.fault is None:
            response.fault = dispatch.fault or self._fault_shadow.get(key)
        if response.fault is not None:
            self._fault_shadow[key] = response.fault

    # ------------------------------------------------------------------ #
    # fault path: injector shims, breaker accounting, retries, local sheds
    # ------------------------------------------------------------------ #
    def _serve_on_shard(self, shard_id: int,
                        batch: Sequence[RecommendationRequest]
                        ) -> List[RecommendationResponse]:
        """One serve attempt on one shard, through the fault-injection shim."""
        if self.injector is not None:
            self.injector.before_shard_serve(shard_id)
        served = self.worker(shard_id).service.serve_many(batch)
        if self.injector is not None:
            penalty = self.injector.latency_penalty_ms(shard_id)
            if penalty > 0.0:
                for response in served:
                    response.latency_ms += penalty
        return served

    def _record_shard_failure(self, shard_id: int, error: Exception) -> None:
        if self.breaker is not None:
            self.breaker.record_failure(shard_id, detail=type(error).__name__)

    def _record_shard_success(self, shard_id: int) -> None:
        if self.breaker is not None:
            self.breaker.record_success(shard_id)

    def _serve_with_retry(self, dispatch: _Dispatch,
                          original: RecommendationRequest,
                          error: Exception) -> RecommendationResponse:
        """Re-serve one request after its shard failed mid-burst.

        Walks the replica chain (then any healthy stand-in) in deterministic
        order, bounded by ``config.max_retries``, charging an exponential
        backoff to the *reported* latency only (virtual time never stalls on
        a retry).  When the budget runs out the request degrades into the
        shed path with ``fault="retry_exhausted"`` — it is always answered.
        """
        request = dispatch.request
        chain = self.replica_chain(request.user_entity)
        candidates = [shard for shard in chain
                      if shard != dispatch.shard_id
                      and self.health.is_available(shard)
                      and self._breaker_allows(shard)]
        for shard in self.health.available_shards():
            if (shard != dispatch.shard_id and shard not in candidates
                    and self._breaker_allows(shard)):
                candidates.append(shard)
        backoff_ms = self.config.retry_backoff_ms
        attempts = 0
        waited_ms = 0.0
        for shard_id in candidates:
            if attempts >= self.config.max_retries:
                break
            attempts += 1
            waited_ms += backoff_ms
            backoff_ms *= 2.0
            self.routing.retries += 1
            if self.injector is not None:
                self.injector.record_defense(
                    "retry", f"shard:{shard_id}",
                    detail=f"user {request.user_entity}, attempt {attempts}")
            try:
                response = self._serve_on_shard(self._claim(shard_id),
                                                [request])[0]
            except Exception as retry_error:  # repro: ignore[EXC001] a failed retry feeds the breaker and moves on to the next candidate; exhaustion degrades to the shed path below
                self._record_shard_failure(shard_id, retry_error)
                continue
            self._record_shard_success(shard_id)
            if dispatch.disposition == "shed":
                response.request = original
                response.shed = True
            if response.fault is None:
                # A successful retry still serves off-primary state: the
                # answer is only as fresh as the replica's cache, so it
                # carries (ledger-explained) provenance rather than claiming
                # bit-identity with the clean replay.
                response.fault = "retried"
            response.latency_ms += waited_ms
            return response
        if self.injector is not None:
            self.injector.record_defense(
                "retry_exhausted", f"user:{original.user_entity}",
                detail=f"{attempts} retries after {type(error).__name__}")
        return self._shed_serve(original, dispatch.shard_id,
                                "retry_exhausted", extra_latency_ms=waited_ms)

    def _shed_serve(self, request: RecommendationRequest, shard_id: int,
                    fault: Optional[str], *,
                    extra_latency_ms: float = 0.0) -> RecommendationResponse:
        """The router's local degraded answer, with explicit fault provenance.

        Serves the zero-budget rewrite on the anchor shard's cheap fallback
        tiers with the injector *bypassed* — this models the router answering
        from replicated cache/embedding state, which is what guarantees 100%
        of requests are answered even when every shard is faulted.
        """
        shed_request = dataclasses.replace(request, latency_budget_ms=0.0)
        response = self.worker(shard_id).service.serve_many([shed_request])[0]
        response.request = request
        response.shed = True
        response.fault = fault
        response.latency_ms += extra_latency_ms
        if self.injector is not None and fault == "circuit_open":
            self.injector.record_defense(
                "circuit_open_shed", f"shard:{shard_id}",
                detail=f"user {request.user_entity}")
        return response

    def serve(self, request: RecommendationRequest) -> RecommendationResponse:
        """Answer one request (a singleton burst through the same router)."""
        return self.serve_many([request])[0]

    # ------------------------------------------------------------------ #
    # request helpers (same surface as RecommendationService)
    # ------------------------------------------------------------------ #
    def build_requests(self, user_entities, top_k=None, exclude_items=None,
                       latency_budget_ms=None) -> List[RecommendationRequest]:
        return self._reference.build_requests(
            user_entities, top_k=top_k, exclude_items=exclude_items,
            latency_budget_ms=latency_budget_ms)

    def warm_up(self, user_entities, top_k=None) -> List[RecommendationResponse]:
        """Pre-populate each shard's caches for its slice of the audience."""
        return self.serve_many(self.build_requests(user_entities, top_k=top_k))

    def invalidate_user(self, user_entity: int) -> int:
        """Drop the user's cached state on *every* shard.

        Failover and overflow mean a user's results may live on any replica,
        so invalidation fans out; returns the number of dropped cache entries
        across the cluster.
        """
        return sum(worker.service.invalidate_user(user_entity)
                   for worker in self.workers)

    def invalidate_entities(self, entities) -> int:
        """Scoped cluster-wide invalidation after a streaming delta.

        Fans :meth:`RecommendationService.invalidate_entities` out to every
        shard (replicas may cache any user); returns the total number of
        dropped result-cache entries.
        """
        touched = set(entities)
        return sum(worker.service.invalidate_entities(touched)
                   for worker in self.workers)

    # ------------------------------------------------------------------ #
    # live generation swap
    # ------------------------------------------------------------------ #
    def replace_shard_service(self, shard_id: int,
                              service: RecommendationService, *,
                              carry_cache: bool = True,
                              carry_telemetry: bool = True
                              ) -> RecommendationService:
        """Swap one shard's serving facade in place (live generation flip).

        Called between bursts by the :class:`repro.live.EpochSwapCoordinator`;
        the shard slot, ring position, health state and admission queue all
        stay put — only the facade behind them changes.  By default the new
        service inherits the outgoing one's result cache and telemetry
        objects: cached answers of untouched users survive the flip (still
        reporting the generation that computed them, via
        ``CachedResult.generation``) and the shard's rolling telemetry window
        spans the swap.  Returns the replaced service.
        """
        worker = self.worker(shard_id)
        outgoing = worker.service
        if carry_cache:
            service.cache = outgoing.cache
        if carry_telemetry:
            service.telemetry = outgoing.telemetry
        worker.service = service
        return outgoing

    def shard_generations(self) -> Dict[int, int]:
        """Artifact generation currently served by each shard."""
        return {worker.shard_id: getattr(worker.service, "generation", 0)
                for worker in self.workers}

    # ------------------------------------------------------------------ #
    # elastic membership (autoscaling)
    # ------------------------------------------------------------------ #
    def clone_reference_service(self, *, name: Optional[str] = None
                                ) -> RecommendationService:
        """A fresh shard service over the reference worker's frozen tables.

        Mirrors the per-shard cloning of :meth:`from_cadrl`: same policy
        object, same representations, same search hyper-parameters and the
        same fallback model, but its *own* :class:`PathRecommender` (private
        milestone/action caches), result cache and telemetry — exactly what a
        newly provisioned worker process would boot with.  Carries the
        reference shard's current artifact generation.
        """
        reference = self._reference
        source = reference.recommender
        recommender = PathRecommender(
            source.graph, source.category_environment.category_graph,
            source.representations,
            source.policy, guidance=source.guidance,
            max_path_length=source.max_path_length,
            max_entity_actions=source.entity_environment.max_actions,
            max_category_actions=source.category_environment.max_actions,
            use_dual_agent=source.use_dual_agent,
            config=source.config)
        return RecommendationService(
            source.graph, source.category_environment.category_graph,
            source.representations,
            source.policy, recommender=recommender,
            transe=reference.transe, config=reference.config,
            clock=self._clock,
            name=name or f"{self.name}/shard-{self._next_shard_id}",
            generation=reference.generation)

    def add_shard(self, service: Optional[RecommendationService] = None, *,
                  warm_migrate: bool = True) -> ScaleReport:
        """Grow the cluster by one shard, live, between bursts.

        The ring's bounded-remap guarantee means only the keys the new shard
        now owns move — an expected ``1/(n+1)`` of the population, all of
        them *to* the new shard.  With ``warm_migrate`` the displaced result
        cache entries follow their keys (expiry deadlines intact), so the new
        shard starts warm for exactly the users it just took over instead of
        recomputing answers the cluster already holds.  ``service`` defaults
        to :meth:`clone_reference_service`.
        """
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        worker = ShardWorker(shard_id=shard_id,
                             service=service or self.clone_reference_service(
                                 name=f"{self.name}/shard-{shard_id}"))
        self.workers.append(worker)
        self._workers_by_id[shard_id] = worker
        self.health.add_shard(shard_id)
        self.ring.add_shard(shard_id)
        migrated = 0
        if warm_migrate:
            target = worker.service.cache
            for donor in self.workers:
                if donor.shard_id == shard_id:
                    continue
                displaced = donor.service.cache.extract_entries(
                    lambda key: self.ring.primary(key[0]) == shard_id)
                migrated += target.absorb(displaced)
        return ScaleReport(action="add", shard_id=shard_id,
                           num_shards=self.num_shards,
                           migrated_entries=migrated)

    def remove_shard(self, shard_id: int, *,
                     warm_migrate: bool = True) -> ScaleReport:
        """Decommission one shard, handing its hot cache entries to the
        shards that inherit its key ranges.

        Only the removed shard's keys remap (ring guarantee); each of its
        surviving cache entries is pushed to its key's *new* primary unless
        that shard already holds a copy (overflow/failover may have written
        one, and the local copy is at least as fresh).
        """
        worker = self.worker(shard_id)
        if len(self.workers) == 1:
            raise ValueError("cannot remove the last shard of the cluster")
        displaced = worker.service.cache.export_entries()
        self.ring.remove_shard(shard_id)
        self.workers.remove(worker)
        del self._workers_by_id[shard_id]
        self.health.remove_shard(shard_id)
        self.admission.forget_shard(shard_id)
        if self.breaker is not None:
            self.breaker.forget_shard(shard_id)
        migrated = 0
        if warm_migrate:
            for entry in displaced:
                owner = self.worker(self.ring.primary(entry.key[0]))
                migrated += owner.service.cache.absorb([entry])
        return ScaleReport(action="remove", shard_id=shard_id,
                           num_shards=self.num_shards,
                           migrated_entries=migrated)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def telemetry_snapshot(self) -> Dict:
        """Merged cluster telemetry plus routing, admission and health state."""
        snapshot = self.telemetry.snapshot()
        snapshot["routing"] = self.routing.as_dict()
        snapshot["admission"] = self.admission.stats.as_dict()
        snapshot["health"] = self.health.snapshot()
        snapshot["topology"] = {
            "num_shards": self.num_shards,
            "replication_factor": self.config.replication_factor,
            "virtual_nodes": self.config.virtual_nodes,
            "max_queue_per_shard": self.config.max_queue_per_shard,
        }
        snapshot["generations"] = {str(shard): generation for shard, generation
                                   in self.shard_generations().items()}
        if self.breaker is not None:
            snapshot["breaker"] = self.breaker.snapshot()
        return snapshot

    # ------------------------------------------------------------------ #
    # timing-harness surface (duck-types the Table III recommender protocol)
    # ------------------------------------------------------------------ #
    def recommend_items(self, user_entity: int, top_k: int = 10) -> List[int]:
        """Ranked item entities through the full cluster path."""
        return self.serve(RecommendationRequest(user_entity=user_entity,
                                                top_k=top_k)).items

    def find_paths(self, user_entity: int, num_paths: int):
        """Raw path discovery on the user's primary (or failover) shard."""
        chain = self.replica_chain(user_entity)
        available = [shard for shard in chain if self.health.is_available(shard)]
        if not available:
            stand_ins = self.health.available_shards()
            if not stand_ins:
                raise ClusterUnavailableError(
                    f"no healthy shard left in {self.name} "
                    f"(health: {self.health.snapshot()})")
            available = [stand_ins[0]]
        return self.worker(available[0]).service.recommender.find_paths(
            user_entity, num_paths)
