"""Sharded, replicated multi-worker serving with deterministic failover.

The ROADMAP's next step past a fast single node: run N shard workers — each
an independent :class:`repro.serving.RecommendationService` with its own
cache, micro-batcher and telemetry over the shared frozen artifacts — behind
a consistent-hash router with R-way replication, seeded failure injection,
admission control and cluster-wide telemetry:

* :class:`ConsistentHashRing` — user-keyed ring with virtual nodes; stable
  under shard add/remove (bounded key churn), deterministic across processes.
* :class:`HealthModel` / :func:`random_schedule` — shard status registry with
  clock-driven scripted transitions and seeded chaos schedules.
* :class:`AdmissionController` — per-shard queue bounds per dispatch burst;
  overflow spills to replicas, saturation sheds to the fallback tier chain.
* :class:`ClusterTelemetry` — exact cluster percentiles/QPS/tier mix merged
  from the shards' raw telemetry windows.
* :class:`ClusterService` — the facade: same ``serve``/``serve_many`` surface
  as a single service, so :class:`repro.simulate.ReplayDriver` and the whole
  oracle battery run against a cluster unchanged; elastic ``add_shard`` /
  ``remove_shard`` with cache warm-migration along the ring's bounded remap.
* :class:`Autoscaler` / :class:`AutoscaleConfig` — deterministic, seeded
  grow/shrink decisions at virtual-time ticks from shed-rate and
  queue-utilization signals, wrapped around the same serving facade.

Typical use::

    cluster = ClusterService.from_cadrl(
        model, transe=transe,
        config=ClusterConfig(num_shards=4, replication_factor=2))
    cluster.health.fail(1)                      # deterministic failover
    responses = cluster.serve_many(requests)    # 100% still served
    print(cluster.telemetry_snapshot()["routing"])
"""

from .admission import AdmissionController, AdmissionStats
from .autoscale import AutoscaleConfig, Autoscaler, ScaleEvent
from .breaker import BreakerConfig, BreakerTransition, CircuitBreaker
from .config import ClusterConfig
from .health import HealthEvent, HealthModel, ShardStatus, random_schedule
from .ring import ConsistentHashRing, stable_hash64
from .service import (
    ClusterService,
    ClusterUnavailableError,
    RoutingStats,
    ScaleReport,
    ShardWorker,
)
from .telemetry import ClusterTelemetry, merge_telemetry_states

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AutoscaleConfig",
    "Autoscaler",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "ClusterConfig",
    "ClusterService",
    "ClusterTelemetry",
    "ClusterUnavailableError",
    "ConsistentHashRing",
    "HealthEvent",
    "HealthModel",
    "RoutingStats",
    "ScaleEvent",
    "ScaleReport",
    "ShardStatus",
    "ShardWorker",
    "merge_telemetry_states",
    "random_schedule",
    "stable_hash64",
]
