"""Admission control: per-shard queue bounds with shed-don't-stall semantics.

The cluster dispatches traffic in synchronous bursts (one
``ClusterService.serve_many`` call), so a shard's "queue depth" is the number
of requests the current burst has already assigned to it.  The
:class:`AdmissionController` bounds that depth: once a shard is full, further
requests for its keys overflow to their replicas, and when every replica is
saturated the router *sheds* the request into the shard's cheap fallback tier
chain (stale cache → embedding top-k) instead of deepening the queue — the
same backpressure shape a real cluster applies, made deterministic because
admission depends only on request order within the burst.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class AdmissionStats:
    """Cumulative admission counters since construction/reset."""

    admitted: int = 0
    rejected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"admitted": self.admitted, "rejected": self.rejected}


class AdmissionController:
    """Per-burst, per-shard admission bookkeeping.

    ``max_queue_per_shard`` is the largest number of requests one burst may
    assign to a single shard; :meth:`begin_burst` resets the per-shard loads
    (the cumulative :class:`AdmissionStats` survive across bursts).
    """

    def __init__(self, max_queue_per_shard: int = 256) -> None:
        if max_queue_per_shard <= 0:
            raise ValueError("max_queue_per_shard must be positive")
        self.max_queue_per_shard = max_queue_per_shard
        self._loads: Dict[int, int] = {}
        self._peaks: Dict[int, int] = {}
        self.stats = AdmissionStats()

    def begin_burst(self) -> None:
        """Start a fresh dispatch burst: every shard's queue is empty again."""
        self._loads.clear()

    def load(self, shard_id: int) -> int:
        """Requests assigned to a shard within the current burst."""
        return self._loads.get(shard_id, 0)

    def try_admit(self, shard_id: int) -> bool:
        """Reserve one queue slot on the shard if its bound allows it."""
        load = self._loads.get(shard_id, 0)
        if load >= self.max_queue_per_shard:
            self.stats.rejected += 1
            return False
        self._loads[shard_id] = load + 1
        if load + 1 > self._peaks.get(shard_id, 0):
            self._peaks[shard_id] = load + 1
        self.stats.admitted += 1
        return True

    def drain_peaks(self) -> Dict[int, int]:
        """Per-shard peak burst queue depth since the last drain, then reset.

        The autoscaler reads this each tick: peaks (not averages) are what
        predict shedding, because admission rejects on the burst maximum.
        """
        peaks = dict(self._peaks)
        self._peaks.clear()
        return peaks

    def forget_shard(self, shard_id: int) -> None:
        """Drop all bookkeeping for a decommissioned shard."""
        self._loads.pop(shard_id, None)
        self._peaks.pop(shard_id, None)

    def reset_stats(self) -> None:
        self.stats = AdmissionStats()
