"""The declarative cluster specification.

Kept dependency-free (a plain dataclass) so :mod:`repro.pipeline.config` can
embed it in :class:`~repro.pipeline.RunConfig` and round-trip it through JSON
with the same machinery as every other config section.  The default spec is a
single unreplicated shard — i.e. exactly the pre-cluster behaviour — so
existing configurations, artifacts and entry points are unaffected until a
caller asks for ``num_shards > 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass
class ClusterConfig:
    """Topology and routing knobs of a :class:`~repro.cluster.ClusterService`.

    ``failed_shards`` marks shards ``DOWN`` at boot — the deterministic
    failure-injection hook behind ``python -m repro simulate --fail-shard``;
    ``seed`` fixes the hash-ring geometry (which users live on which shard).

    ``max_retries`` bounds how many *other* shards a request may be retried
    on after its serving shard raises mid-burst; ``retry_backoff_ms`` is the
    base of the deterministic exponential backoff charged to the retried
    request's reported latency (virtual time never stalls on it).
    """

    num_shards: int = 1
    replication_factor: int = 1
    virtual_nodes: int = 64
    max_queue_per_shard: int = 256
    seed: int = 0
    failed_shards: Tuple[int, ...] = ()
    max_retries: int = 2
    retry_backoff_ms: float = 5.0

    def __post_init__(self) -> None:
        if not isinstance(self.failed_shards, tuple):
            self.failed_shards = tuple(self.failed_shards)

    def validate(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if not 1 <= self.replication_factor <= self.num_shards:
            raise ValueError("replication_factor must lie in [1, num_shards]")
        if self.virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        if self.max_queue_per_shard <= 0:
            raise ValueError("max_queue_per_shard must be positive")
        bad = [shard for shard in self.failed_shards
               if not 0 <= shard < self.num_shards]
        if bad:
            raise ValueError(f"failed_shards {bad} outside [0, {self.num_shards})")
        if len(set(self.failed_shards)) != len(self.failed_shards):
            raise ValueError("failed_shards must be distinct")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff_ms < 0:
            raise ValueError("retry_backoff_ms must be non-negative")

    @property
    def is_clustered(self) -> bool:
        """Whether this spec asks for more than the single-service default."""
        return self.num_shards > 1
