"""Common feed-forward layers: Linear, Embedding, MLP and Sequential."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from .module import Module
from .tensor import Tensor


class Linear(Module):
    """Affine transform ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to include the additive bias term.
    rng:
        Random generator used for Xavier initialisation (reproducibility).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear dimensions must be positive")
        rng = init.ensure_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.xavier_uniform((in_features, out_features), rng),
                             requires_grad=True, name="linear.weight")
        self.bias = (Tensor(init.zeros((out_features,)), requires_grad=True, name="linear.bias")
                     if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None, std: float = 0.1) -> None:
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("Embedding dimensions must be positive")
        rng = init.ensure_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Tensor(init.normal((num_embeddings, embedding_dim), rng, std=std),
                             requires_grad=True, name="embedding.weight")

    def forward(self, indices) -> Tensor:
        idx = np.asarray(indices, dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight.index_select(idx)


class MLP(Module):
    """Multi-layer perceptron with a configurable activation between layers."""

    def __init__(self, dims: Sequence[int],
                 activation: Callable[[Tensor], Tensor] = F.relu,
                 rng: Optional[np.random.Generator] = None) -> None:
        if len(dims) < 2:
            raise ValueError("MLP requires at least an input and an output dimension")
        rng = init.ensure_rng(rng)
        self.activation = activation
        self.layers: List[Linear] = [
            Linear(dims[i], dims[i + 1], rng=rng) for i in range(len(dims) - 1)
        ]

    def forward(self, x: Tensor) -> Tensor:
        out = x
        for i, layer in enumerate(self.layers):
            out = layer(out)
            if i < len(self.layers) - 1:
                out = self.activation(out)
        return out


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        self.items: List[Module] = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        out = x
        for module in self.items:
            out = module(out)
        return out
