"""Recurrent cells used by the shared policy networks (Eq. 12-14) and the GGNN gate."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .module import Module
from .tensor import Tensor
from .tensor import concat as cat


class LSTMCell(Module):
    """Single-step LSTM cell.

    The dual-agent policy networks encode the walked history with one LSTM per
    agent (Eq. 12-14 in the paper).  The recurrence is the standard
    input/forget/cell/output-gate formulation.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("LSTMCell dimensions must be positive")
        rng = init.ensure_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_dim = 4 * hidden_size
        self.weight_ih = Tensor(init.xavier_uniform((input_size, gate_dim), rng),
                                requires_grad=True, name="lstm.weight_ih")
        self.weight_hh = Tensor(init.xavier_uniform((hidden_size, gate_dim), rng),
                                requires_grad=True, name="lstm.weight_hh")
        self.bias = Tensor(init.zeros((gate_dim,)), requires_grad=True, name="lstm.bias")

    def initial_state(self) -> Tuple[Tensor, Tensor]:
        """Return zero ``(hidden, cell)`` state vectors."""
        return (Tensor(np.zeros(self.hidden_size)), Tensor(np.zeros(self.hidden_size)))

    def forward(self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None
                ) -> Tuple[Tensor, Tensor]:
        if state is None:
            state = self.initial_state()
        hidden, cell = state
        gates = x @ self.weight_ih + hidden @ self.weight_hh + self.bias
        h = self.hidden_size
        input_gate = gates[0:h].sigmoid() if gates.ndim == 1 else gates[:, 0:h].sigmoid()
        forget_gate = gates[h:2 * h].sigmoid() if gates.ndim == 1 else gates[:, h:2 * h].sigmoid()
        candidate = gates[2 * h:3 * h].tanh() if gates.ndim == 1 else gates[:, 2 * h:3 * h].tanh()
        output_gate = gates[3 * h:4 * h].sigmoid() if gates.ndim == 1 else gates[:, 3 * h:].sigmoid()
        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


class GRUCell(Module):
    """Single-step GRU cell, used by the gated aggregation layer of the GGNN."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("GRUCell dimensions must be positive")
        rng = init.ensure_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate_dim = 3 * hidden_size
        self.weight_ih = Tensor(init.xavier_uniform((input_size, gate_dim), rng),
                                requires_grad=True, name="gru.weight_ih")
        self.weight_hh = Tensor(init.xavier_uniform((hidden_size, gate_dim), rng),
                                requires_grad=True, name="gru.weight_hh")
        self.bias = Tensor(init.zeros((gate_dim,)), requires_grad=True, name="gru.bias")

    def forward(self, x: Tensor, hidden: Optional[Tensor] = None) -> Tensor:
        if hidden is None:
            hidden = Tensor(np.zeros(self.hidden_size))
        gates_x = x @ self.weight_ih + self.bias
        gates_h = hidden @ self.weight_hh
        h = self.hidden_size

        def slice_gate(tensor: Tensor, index: int) -> Tensor:
            if tensor.ndim == 1:
                return tensor[index * h:(index + 1) * h]
            return tensor[:, index * h:(index + 1) * h]

        update = (slice_gate(gates_x, 0) + slice_gate(gates_h, 0)).sigmoid()
        reset = (slice_gate(gates_x, 1) + slice_gate(gates_h, 1)).sigmoid()
        candidate = (slice_gate(gates_x, 2) + reset * slice_gate(gates_h, 2)).tanh()
        return (1.0 - update) * hidden + update * candidate


class HistoryEncoder(Module):
    """LSTM-based encoder over a growing history of step vectors.

    This is the component the shared policy networks use to summarise the path
    walked so far.  ``step`` consumes the embedding of the latest step
    (optionally concatenated with the partner agent's previous hidden state,
    which is how history sharing in Eq. 13-14 is realised) and returns the new
    hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def initial_state(self) -> Tuple[Tensor, Tensor]:
        return self.cell.initial_state()

    def forward(self, step_input: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None
                ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        new_hidden, new_cell = self.cell(step_input, state)
        return new_hidden, (new_hidden, new_cell)


def concat_history(own_hidden: Tensor, partner_hidden: Optional[Tensor]) -> Tensor:
    """Concatenate the agent's hidden state with its partner's (history sharing)."""
    if partner_hidden is None:
        return own_hidden
    return cat([own_hidden, partner_hidden], axis=-1)
