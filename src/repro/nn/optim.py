"""Gradient-based optimisers: SGD and Adam, plus gradient clipping."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .tensor import Tensor


def clip_grad_norm(parameters: Sequence[Tensor], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for monitoring training stability).
    """
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float(np.sum(parameter.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad = parameter.grad * scale
    return norm


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Sequence[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface stub
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(parameter.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the optimiser the paper uses for CADRL."""

    def __init__(self, parameters: Sequence[Tensor], lr: float = 1e-4,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for i, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            self._m[i] = self.beta1 * self._m[i] + (1.0 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1.0 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
