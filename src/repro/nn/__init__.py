"""Minimal neural-network substrate (NumPy autograd) used throughout the repo.

This package stands in for PyTorch: it provides a reverse-mode autodiff
:class:`~repro.nn.tensor.Tensor`, standard layers, recurrent cells, parameter
initialisation and the SGD/Adam optimisers the paper relies on.
"""

from . import functional
from . import init
from .init import DEFAULT_SEED, ensure_rng
from .layers import MLP, Embedding, Linear, Sequential
from .module import Module
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .recurrent import GRUCell, HistoryEncoder, LSTMCell, concat_history
from .tensor import Tensor, concat, ones, stack, tensor, zeros

__all__ = [
    "Adam",
    "DEFAULT_SEED",
    "Embedding",
    "GRUCell",
    "HistoryEncoder",
    "LSTMCell",
    "Linear",
    "MLP",
    "Module",
    "Optimizer",
    "SGD",
    "Sequential",
    "Tensor",
    "clip_grad_norm",
    "concat",
    "concat_history",
    "ensure_rng",
    "functional",
    "init",
    "ones",
    "stack",
    "tensor",
    "zeros",
]
