"""A small reverse-mode autodiff engine on top of NumPy.

The paper trains its models (TransE, CGGNN, the shared policy networks) with
PyTorch.  PyTorch is not available in this environment, so this module provides
the minimal-but-complete substrate the rest of the repository needs: a
:class:`Tensor` wrapping an ``ndarray`` with a gradient slot and a backward
graph, plus the arithmetic, matrix, activation, reduction, indexing and shaping
operations used by the models.

The engine is intentionally simple: every operation records a local backward
closure on the output tensor; :meth:`Tensor.backward` runs a topological sort
over the recorded graph and accumulates gradients.  Broadcasting is supported
for elementwise binary operations via :func:`_unbroadcast`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float], "Tensor"]


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a float64 ndarray (without copying when possible)."""
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an autograd tape.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        If ``True`` the tensor participates in gradient accumulation.
    parents:
        The tensors this one was computed from (internal use).
    backward_fn:
        Closure that, given the output gradient, returns one gradient per
        parent (internal use).
    name:
        Optional label used only for debugging.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward_fn: Optional[Callable[[np.ndarray], Tuple[np.ndarray, ...]]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = parents
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a single-element tensor."""
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], Tuple[np.ndarray, ...]],
    ) -> "Tensor":
        requires_grad = any(p.requires_grad for p in parents)
        if not requires_grad:
            return Tensor(data, requires_grad=False)
        return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)

    # ------------------------------------------------------------------ #
    # elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self.data + other_t.data

        def backward(grad: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            return _unbroadcast(grad, self.shape), _unbroadcast(grad, other_t.shape)

        return Tensor._make(out, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self.data - other_t.data

        def backward(grad: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            return _unbroadcast(grad, self.shape), _unbroadcast(-grad, other_t.shape)

        return Tensor._make(out, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self.data * other_t.data

        def backward(grad: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            return (
                _unbroadcast(grad * other_t.data, self.shape),
                _unbroadcast(grad * self.data, other_t.shape),
            )

        return Tensor._make(out, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self.data / other_t.data

        def backward(grad: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            return (
                _unbroadcast(grad / other_t.data, self.shape),
                _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape),
            )

        return Tensor._make(out, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out = self.data**exponent

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(out, (self,), backward)

    # ------------------------------------------------------------------ #
    # matrix operations
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out = self.data @ other_t.data

        def backward(grad: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 2:
                grad_a = grad @ b.T
                grad_b = np.outer(a, grad)
            elif a.ndim == 2 and b.ndim == 1:
                grad_a = np.outer(grad, b)
                grad_b = a.T @ grad
            elif a.ndim == 1 and b.ndim == 1:
                grad_a = grad * b
                grad_b = grad * a
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                grad_a = _unbroadcast(grad_a, a.shape)
                grad_b = _unbroadcast(grad_b, b.shape)
            return grad_a, grad_b

        return Tensor._make(out, (self, other_t), backward)

    __matmul__ = matmul

    def transpose(self) -> "Tensor":
        out = self.data.T

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad.T,)

        return Tensor._make(out, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mimic ndarray API
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        out = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad.reshape(original),)

        return Tensor._make(out, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            grad_arr = np.asarray(grad)
            if axis is not None and not keepdims:
                grad_arr = np.expand_dims(grad_arr, axis)
            return (np.broadcast_to(grad_arr, self.shape).copy(),)

        return Tensor._make(np.asarray(out), (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------ #
    # indexing / gathering
    # ------------------------------------------------------------------ #
    def __getitem__(self, index) -> "Tensor":
        out = self.data[index]

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(np.asarray(out), (self,), backward)

    def index_select(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (first axis) by integer ``indices`` with scatter-add backward."""
        idx = np.asarray(indices, dtype=np.int64)
        out = self.data[idx]

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            return (full,)

        return Tensor._make(out, (self,), backward)

    # ------------------------------------------------------------------ #
    # activations and pointwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad * out,)

        return Tensor._make(out, (self,), backward)

    def log(self) -> "Tensor":
        out = np.log(self.data)

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad / self.data,)

        return Tensor._make(out, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad * out * (1.0 - out),)

        return Tensor._make(out, (self,), backward)

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad * (1.0 - out**2),)

        return Tensor._make(out, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self.data * mask

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad * mask,)

        return Tensor._make(out, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out = np.where(mask, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad * np.where(mask, 1.0, negative_slope),)

        return Tensor._make(out, (self,), backward)

    def clip(self, min_value: float, max_value: float) -> "Tensor":
        out = np.clip(self.data, min_value, max_value)
        mask = (self.data >= min_value) & (self.data <= max_value)

        def backward(grad: np.ndarray) -> Tuple[np.ndarray]:
            return (grad * mask,)

        return Tensor._make(out, (self,), backward)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).  Gradients
        accumulate into ``.grad`` of every reachable tensor with
        ``requires_grad=True``.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            if id(node) in visited:
                return
            visited.add(id(node))
            while stack:
                current, parents_iter = stack[-1]
                advanced = False
                for parent in parents_iter:
                    if id(parent) not in visited and parent.requires_grad:
                        visited.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    topo.append(current)
                    stack.pop()

        visit(self)

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.get(id(node))
            if node_grad is None:
                continue
            if node.requires_grad and node._backward_fn is None:
                # Leaf tensor: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = np.asarray(parent_grad, dtype=np.float64)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    arrays = [t.data for t in tensors]
    out = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]

    def backward(grad: np.ndarray) -> Tuple[np.ndarray, ...]:
        pieces = []
        start = 0
        for size in sizes:
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, start + size)
            pieces.append(grad[tuple(slicer)])
            start += size
        return tuple(pieces)

    return Tensor._make(out, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient routing."""
    arrays = [t.data for t in tensors]
    out = np.stack(arrays, axis=axis)

    def backward(grad: np.ndarray) -> Tuple[np.ndarray, ...]:
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(out, tuple(tensors), backward)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    """Return a tensor of zeros."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    """Return a tensor of ones."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
