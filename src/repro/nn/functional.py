"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .init import DEFAULT_SEED
from .tensor import Tensor

# Shared fallback stream for dropout masks: seeded once from DEFAULT_SEED so
# runs are reproducible, module-level so successive calls still draw fresh
# masks (a per-call seeded generator would repeat the same mask every call).
_fallback_dropout_rng: Optional[np.random.Generator] = None


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    return x.tanh()


def relu(x: Tensor) -> Tensor:
    """Elementwise rectified linear unit."""
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Elementwise leaky ReLU, used by the category-aware attention (Eq. 8)."""
    return x.leaky_relu(negative_slope)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(np.max(x.data, axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(np.max(x.data, axis=axis, keepdims=True))
    log_norm = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_norm


def dropout(x: Tensor, rate: float, rng: Optional[np.random.Generator] = None,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``rate`` is 0."""
    if not training or rate <= 0.0:
        return x
    if rng is None:
        global _fallback_dropout_rng
        if _fallback_dropout_rng is None:
            _fallback_dropout_rng = np.random.default_rng(DEFAULT_SEED)
        rng = _fallback_dropout_rng
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def cross_entropy_with_logits(logits: Tensor, target_index: int) -> Tensor:
    """Negative log-likelihood of ``target_index`` under ``softmax(logits)``.

    ``logits`` is a 1-D tensor of unnormalised scores.
    """
    log_probs = log_softmax(logits, axis=-1)
    return -log_probs[target_index]


def binary_cross_entropy_with_logits(logits: Tensor, targets: Tensor) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits."""
    # log(1 + exp(-|x|)) + max(x, 0) - x * t
    probs = logits.sigmoid().clip(1e-9, 1.0 - 1e-9)
    loss = -(targets * probs.log() + (1.0 - targets) * (1.0 - probs).log())
    return loss.mean()


def cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> float:
    """Cosine similarity between two plain vectors (used by the Rpe reward, Eq. 19)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom < eps:
        return 0.0
    return float(np.dot(a, b) / denom)


def kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-12) -> float:
    """KL(p || q) for two discrete distributions (used by the Rpc reward, Eq. 17)."""
    p = np.clip(np.asarray(p, dtype=np.float64).ravel(), eps, None)
    q = np.clip(np.asarray(q, dtype=np.float64).ravel(), eps, None)
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))


def one_hot(index: int, size: int) -> np.ndarray:
    """One-hot row vector of length ``size``."""
    vec = np.zeros(size, dtype=np.float64)
    vec[index] = 1.0
    return vec


def pad_to(vectors: Sequence[np.ndarray], length: int, dim: int) -> np.ndarray:
    """Stack ``vectors`` into a ``(length, dim)`` matrix, zero-padding the tail."""
    out = np.zeros((length, dim), dtype=np.float64)
    for i, vec in enumerate(vectors[:length]):
        out[i, : len(vec)] = vec
    return out
