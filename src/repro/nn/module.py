"""Module base class: parameter registration, traversal and (de)serialisation."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Module:
    """Base class for every neural component in this repository.

    Parameters are :class:`Tensor` attributes with ``requires_grad=True``;
    sub-modules are ``Module`` attributes.  Both are discovered by attribute
    scanning, mirroring the familiar ``torch.nn.Module`` contract.
    """

    def parameters(self) -> List[Tensor]:
        """Return every trainable tensor reachable from this module."""
        return [tensor for _, tensor in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> List[Tuple[str, Tensor]]:
        """Return ``(qualified_name, tensor)`` pairs for all trainable tensors."""
        found: List[Tuple[str, Tensor]] = []
        for name, value in vars(self).items():
            qualified = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                found.append((qualified, value))
            elif isinstance(value, Module):
                found.extend(value.named_parameters(prefix=f"{qualified}."))
            elif isinstance(value, (list, tuple)):
                for i, element in enumerate(value):
                    if isinstance(element, Tensor) and element.requires_grad:
                        found.append((f"{qualified}.{i}", element))
                    elif isinstance(element, Module):
                        found.extend(element.named_parameters(prefix=f"{qualified}.{i}."))
            elif isinstance(value, dict):
                for key, element in value.items():
                    if isinstance(element, Tensor) and element.requires_grad:
                        found.append((f"{qualified}.{key}", element))
                    elif isinstance(element, Module):
                        found.extend(element.named_parameters(prefix=f"{qualified}.{key}."))
        return found

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every sub-module."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for element in value:
                    if isinstance(element, Module):
                        yield from element.modules()

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(parameter.size for parameter in self.parameters()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name → array snapshot of all parameters (copies)."""
        return {name: tensor.data.copy() for name, tensor in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        Raises ``KeyError`` if a parameter is missing and ``ValueError`` on a
        shape mismatch, so silent corruption is impossible.
        """
        for name, tensor in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter in state dict: {name!r}")
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {tensor.data.shape}, got {value.shape}"
                )
            tensor.data = value.copy()

    # Subclasses implement __call__/forward with their own signatures.
    def forward(self, *args, **kwargs):  # pragma: no cover - interface stub
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
