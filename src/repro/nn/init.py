"""Parameter initialisation schemes and the shared fallback seed."""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Seed used when a module is constructed without an explicit ``rng``.
#: Deriving the fallback generator from a constant keeps two bare
#: constructions bit-identical (the repo-wide determinism convention);
#: callers that want independent weights must inject their own generator.
DEFAULT_SEED = 0x5EED


def ensure_rng(rng: Optional[np.random.Generator] = None) -> np.random.Generator:
    """Return ``rng`` unchanged, or a fresh generator seeded with :data:`DEFAULT_SEED`."""
    return rng if rng is not None else np.random.default_rng(DEFAULT_SEED)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    fan_in = shape[0] if len(shape) > 0 else 1
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation, appropriate before ReLU layers."""
    fan_in = shape[0] if len(shape) > 0 else 1
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Small-variance Gaussian initialisation, used for embedding tables."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """Zero initialisation, used for biases."""
    return np.zeros(shape, dtype=np.float64)
