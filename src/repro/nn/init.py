"""Parameter initialisation schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    fan_in = shape[0] if len(shape) > 0 else 1
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation, appropriate before ReLU layers."""
    fan_in = shape[0] if len(shape) > 0 else 1
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Small-variance Gaussian initialisation, used for embedding tables."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """Zero initialisation, used for biases."""
    return np.zeros(shape, dtype=np.float64)
