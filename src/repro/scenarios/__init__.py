"""repro.scenarios — composable adversarial & lifelike workloads + explorer.

The scenario layer turns :mod:`repro.simulate`'s single-shape traces into an
experiment grid: :class:`Scenario` pipelines of seeded, JSON round-trippable
workload transforms (phase schedules, diurnal cycles, flash crowds, user
cohorts, cache-busting adversaries, shard-targeted hot keys), a named
registry with committed specs under ``examples/scenarios/``, and an
:class:`Explorer` that sweeps scenarios × cluster configs through k seeded
episodes each and emits a deterministic :class:`ComparisonMatrix`.
"""

from .combinators import (CacheBuster, CohortCorrelation, DiurnalModulation,
                          FlashCrowd, HotShardTargeting, Phase, PhaseSchedule,
                          Scenario, ScenarioContext, ScenarioError,
                          transform_from_dict)
from .explorer import (ClusterSpec, ComparisonMatrix, EpisodeStats,
                       CellResult, Explorer, ExplorerConfig, render_matrix)
from .registry import (get_scenario, load_scenario, register, scenario_names)

__all__ = [
    "CacheBuster", "CohortCorrelation", "DiurnalModulation", "FlashCrowd",
    "HotShardTargeting", "Phase", "PhaseSchedule", "Scenario",
    "ScenarioContext", "ScenarioError", "transform_from_dict",
    "ClusterSpec", "ComparisonMatrix", "EpisodeStats", "CellResult",
    "Explorer", "ExplorerConfig", "render_matrix",
    "get_scenario", "load_scenario", "register", "scenario_names",
]
