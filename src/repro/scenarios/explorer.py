"""The Explorer: k seeded episodes per (scenario × cluster config) cell.

One replay is an anecdote.  The :class:`Explorer` turns the repo's rails into
an experiment grid: for every cell of ``scenarios × cluster specs`` it runs
``episodes`` independent seeded episodes — generate a trace, transform it
through the scenario, replay it in virtual time through a fresh cluster via
the existing :class:`~repro.simulate.replay.ReplayDriver`, audit it with the
oracle battery — and accumulates per-episode statistics (shed rate, p95/p99,
cache hit rate, tier mix, peak-shard load share, oracle findings) into a
:class:`ComparisonMatrix` with a text and JSON report.

Everything runs in virtual time off seeded generators, so the matrix is a
pure function of ``(scenarios, specs, ExplorerConfig)``:
:meth:`ComparisonMatrix.signature` hashes the canonical JSON and two runs
with the same inputs must produce bit-identical signatures — the property
the CI ``scenario-matrix`` job asserts.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster.config import ClusterConfig
from ..simulate.oracles import run_oracles
from ..simulate.replay import ReplayConfig, ReplayDriver, TraceClock
from ..simulate.report import replay_telemetry
from ..simulate.workload import (UserPopulation, Workload, WorkloadConfig,
                                 generate_workload)
from .combinators import Scenario, ScenarioContext


def _mean(values: Sequence[float]) -> float:
    """Plain mean; NaN when there is nothing to average (never 0.0)."""
    finite = [value for value in values if math.isfinite(value)]
    if not finite:
        return float("nan")
    return sum(finite) / len(finite)


@dataclass(frozen=True)
class ClusterSpec:
    """One named cluster topology column of the comparison matrix."""

    name: str
    num_shards: int = 1
    replication_factor: int = 1
    virtual_nodes: int = 64
    max_queue_per_shard: int = 256
    seed: int = 0

    def to_cluster_config(self) -> ClusterConfig:
        return ClusterConfig(
            num_shards=self.num_shards,
            replication_factor=self.replication_factor,
            virtual_nodes=self.virtual_nodes,
            max_queue_per_shard=self.max_queue_per_shard,
            seed=self.seed)


@dataclass
class ExplorerConfig:
    """How many episodes per cell, and the shape of each episode's trace."""

    episodes: int = 3
    seed: int = 0
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    replay: ReplayConfig = field(default_factory=ReplayConfig)
    #: Exact-replay oracle sample per episode (None checks every full-search
    #: record — expensive; CI uses a small sample).
    full_search_sample: Optional[int] = 25

    def validate(self) -> None:
        if self.episodes <= 0:
            raise ValueError("episodes must be positive")
        self.workload.validate()
        self.replay.validate()

    def episode_seed(self, episode: int) -> int:
        """Workload seed for one episode — base seed plus episode index."""
        return self.seed + self.workload.seed + episode


@dataclass(frozen=True)
class EpisodeStats:
    """Everything measured about one seeded episode of one cell."""

    episode: int
    seed: int
    requests: int
    answered: int
    shed: int
    shed_rate: float
    cache_hit_rate: float
    p95_ms: float
    p99_ms: float
    tier_mix: Dict[str, float]
    peak_shard_share: float
    oracle_mismatches: int
    workload_signature: str
    replay_signature: str


@dataclass
class CellResult:
    """One (scenario × cluster spec) cell: its episodes plus aggregates."""

    scenario: str
    spec: str
    episodes: List[EpisodeStats] = field(default_factory=list)

    def aggregates(self) -> Dict[str, float]:
        return {
            "episodes": float(len(self.episodes)),
            "mean_shed_rate": _mean([e.shed_rate for e in self.episodes]),
            "mean_cache_hit_rate": _mean([e.cache_hit_rate
                                          for e in self.episodes]),
            "mean_p95_ms": _mean([e.p95_ms for e in self.episodes]),
            "mean_p99_ms": _mean([e.p99_ms for e in self.episodes]),
            "mean_peak_shard_share": _mean([e.peak_shard_share
                                            for e in self.episodes]),
            "oracle_mismatches": float(sum(e.oracle_mismatches
                                           for e in self.episodes)),
        }


@dataclass
class ComparisonMatrix:
    """The full grid: scenario rows × cluster-spec columns."""

    scenarios: Tuple[str, ...]
    specs: Tuple[str, ...]
    cells: List[CellResult] = field(default_factory=list)

    def cell(self, scenario: str, spec: str) -> CellResult:
        for candidate in self.cells:
            if candidate.scenario == scenario and candidate.spec == spec:
                return candidate
        raise KeyError(f"no cell ({scenario!r}, {spec!r})")

    def total_oracle_mismatches(self) -> int:
        return sum(episode.oracle_mismatches
                   for cell in self.cells for episode in cell.episodes)

    def total_shed(self) -> int:
        return sum(episode.shed
                   for cell in self.cells for episode in cell.episodes)

    def all_answered(self) -> bool:
        """Every request of every episode got an answer (shed counts too —
        shedding degrades provenance, it never drops the request)."""
        return all(episode.answered == episode.requests
                   for cell in self.cells for episode in cell.episodes)

    # ------------------------------------------------------------------ #
    # serialisation & identity
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "scenarios": list(self.scenarios),
            "specs": list(self.specs),
            "cells": [{
                "scenario": cell.scenario,
                "spec": cell.spec,
                "aggregates": cell.aggregates(),
                "episodes": [asdict(episode) for episode in cell.episodes],
            } for cell in self.cells],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def signature(self) -> str:
        """SHA-256 over the canonical matrix — bit-identical across same-seed
        runs because nothing in the cells reads the wall clock."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def render_matrix(matrix: ComparisonMatrix) -> str:
    """The comparison matrix as an aligned text table (one row per cell)."""
    header = (f"{'scenario':<14} {'cluster':<12} {'shed%':>7} {'hit%':>7} "
              f"{'p95ms':>8} {'peak-shard%':>12} {'oracle':>7}")
    lines = ["=== scenario × cluster comparison matrix ===", header,
             "-" * len(header)]
    for cell in matrix.cells:
        stats = cell.aggregates()
        mismatches = int(stats["oracle_mismatches"])
        lines.append(
            f"{cell.scenario:<14} {cell.spec:<12} "
            f"{100.0 * stats['mean_shed_rate']:>6.1f}% "
            f"{100.0 * stats['mean_cache_hit_rate']:>6.1f}% "
            f"{stats['mean_p95_ms']:>8.2f} "
            f"{100.0 * stats['mean_peak_shard_share']:>11.1f}% "
            f"{'ok' if mismatches == 0 else f'{mismatches} BAD':>7}")
    lines.append(f"signature {matrix.signature()}")
    return "\n".join(lines)


class Explorer:
    """Sweeps scenarios × cluster specs, k seeded episodes per cell.

    ``make_service`` builds a fresh service for one episode:
    ``make_service(cluster_config, clock)`` — typically a closure over a
    trained :class:`repro.pipeline.PipelineResult` calling its
    ``cluster_service``.  A fresh service (and fresh :class:`TraceClock`) per
    episode keeps episodes independent: no cache state or telemetry leaks
    between cells, which is what makes the matrix order-insensitive and
    bit-reproducible.
    """

    def __init__(self, make_service: Callable[[ClusterConfig, TraceClock],
                                              object],
                 population: UserPopulation, graph=None,
                 config: Optional[ExplorerConfig] = None) -> None:
        self.make_service = make_service
        self.population = population
        self.graph = graph
        self.config = config or ExplorerConfig()
        self.config.validate()

    # ------------------------------------------------------------------ #
    def run(self, scenarios: Sequence[Scenario],
            specs: Sequence[ClusterSpec],
            progress: Optional[Callable[[str], None]] = None) -> ComparisonMatrix:
        matrix = ComparisonMatrix(
            scenarios=tuple(scenario.name for scenario in scenarios),
            specs=tuple(spec.name for spec in specs))
        for scenario in scenarios:
            for spec in specs:
                cell = CellResult(scenario=scenario.name, spec=spec.name)
                for episode in range(self.config.episodes):
                    cell.episodes.append(
                        self.run_episode(scenario, spec, episode))
                matrix.cells.append(cell)
                if progress is not None:
                    stats = cell.aggregates()
                    progress(f"{scenario.name} × {spec.name}: "
                             f"shed {100 * stats['mean_shed_rate']:.1f}%, "
                             f"hit {100 * stats['mean_cache_hit_rate']:.1f}%, "
                             f"{int(stats['oracle_mismatches'])} oracle "
                             f"mismatches")
        return matrix

    def run_episode(self, scenario: Scenario, spec: ClusterSpec,
                    episode: int) -> EpisodeStats:
        """One seeded episode: generate → transform → replay → audit."""
        seed = self.config.episode_seed(episode)
        clock = TraceClock()
        service = self.make_service(spec.to_cluster_config(), clock)
        workload = generate_workload(
            self.population,
            replace(self.config.workload, seed=seed),
            self.graph)
        context = ScenarioContext(graph=self.graph,
                                  population=self.population,
                                  ring=getattr(service, "ring", None))
        shaped = scenario.apply(workload, context)
        result = ReplayDriver(service, clock=clock).replay(
            shaped, self.config.replay)
        reports = run_oracles(
            service, result.records,
            full_search_sample=self.config.full_search_sample, seed=seed)
        return self._stats(service, shaped, result, reports, episode, seed)

    # ------------------------------------------------------------------ #
    def _stats(self, service, workload: Workload, result, reports,
               episode: int, seed: int) -> EpisodeStats:
        records = result.records
        shed = sum(record.shed for record in records)
        total = max(1, len(records))
        latency = replay_telemetry(result).snapshot()["latency_ms"]
        return EpisodeStats(
            episode=episode, seed=seed,
            requests=len(workload), answered=len(records), shed=shed,
            shed_rate=shed / total,
            cache_hit_rate=result.cache_hit_rate(),
            p95_ms=latency["p95"], p99_ms=latency["p99"],
            tier_mix={tier: count / total
                      for tier, count in sorted(result.tier_counts().items())},
            peak_shard_share=self._peak_shard_share(service, len(records)),
            oracle_mismatches=sum(report.mismatches for report in reports),
            workload_signature=workload.signature(),
            replay_signature=result.signature())

    @staticmethod
    def _peak_shard_share(service, served: int) -> float:
        """Largest per-shard share of the episode's served requests.

        Reads each shard worker's cumulative request counter (the service is
        fresh per episode, so the counters are this episode's).  NaN for
        non-cluster services or empty episodes — share of nothing is not 0.
        """
        workers = getattr(service, "workers", None)
        if not workers or served <= 0:
            return float("nan")
        counts = [worker.service.telemetry.requests for worker in workers]
        return max(counts) / served
