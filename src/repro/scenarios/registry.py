"""A named registry of scenarios, plus spec-file resolution for the CLI.

Builtins cover the lifelike and adversarial shapes the ROADMAP names —
diurnal cycles, spliced phase schedules, flash crowds, coordinated crawlers,
cache-busting adversaries, shard-targeted hot keys — each a plain
:class:`~repro.scenarios.combinators.Scenario` value you could equally have
committed as JSON.  ``load_scenario`` resolves a CLI argument either way: a
registered name, or a path to a ``*.json`` spec (committed examples live
under ``examples/scenarios/``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Tuple, Union

from .combinators import (CacheBuster, CohortCorrelation, DiurnalModulation,
                          FlashCrowd, HotShardTargeting, Phase, PhaseSchedule,
                          Scenario, ScenarioError)

_BUILTINS: Dict[str, Callable[[], Scenario]] = {}


def register(name: str, factory: Callable[[], Scenario]) -> None:
    """Add a named scenario factory (last registration wins)."""
    _BUILTINS[name] = factory


def scenario_names() -> Tuple[str, ...]:
    """The registered names, sorted (for help text and error messages)."""
    return tuple(sorted(_BUILTINS))


def get_scenario(name: str) -> Scenario:
    factory = _BUILTINS.get(name)
    if factory is None:
        raise ScenarioError(f"unknown scenario {name!r} "
                            f"(registered: {list(scenario_names())})")
    return factory()


def load_scenario(name_or_path: Union[str, Path]) -> Scenario:
    """Resolve a CLI scenario argument: registry name or JSON spec path.

    Registry names win; anything else must be a readable spec file, so a
    typo'd name fails with the full list of valid choices rather than a
    confusing file-not-found.
    """
    text = str(name_or_path)
    if text in _BUILTINS:
        return get_scenario(text)
    path = Path(text)
    if path.is_file():
        return Scenario.load(path)
    raise ScenarioError(f"{text!r} is neither a registered scenario "
                        f"({list(scenario_names())}) nor a spec file")


# --------------------------------------------------------------------------- #
# builtins
# --------------------------------------------------------------------------- #
register("baseline", lambda: Scenario(
    name="baseline", description="the untouched generated trace"))

register("diurnal", lambda: Scenario(
    name="diurnal",
    description="two day/night cycles over the trace span",
    transforms=(DiurnalModulation(period=0.5, amplitude=0.8),)))

register("phase-mix", lambda: Scenario(
    name="phase-mix",
    description="calm uniform open, 5x poisson rush hour, calm close",
    transforms=(PhaseSchedule(phases=(
        Phase(start=0.0, arrival="uniform", rate_multiplier=0.5),
        Phase(start=0.4, arrival="poisson", rate_multiplier=5.0),
        Phase(start=0.8, arrival="poisson", rate_multiplier=0.5),
    )),)))

register("flash-crowd", lambda: Scenario(
    name="flash-crowd",
    description="an 8x item-popularity shock onto 3 hot users mid-trace",
    transforms=(FlashCrowd(start=0.4, duration=0.2, rate_multiplier=8.0,
                           hot_users=3, target_fraction=0.8),)))

register("crawler", lambda: Scenario(
    name="crawler",
    description="a coordinated crawler: one cohort per session window, "
                "every request a fresh cache key",
    transforms=(CohortCorrelation(num_cohorts=4, session=0.1),
                CacheBuster(fraction=0.75, rotation=48))))

register("cache-buster", lambda: Scenario(
    name="cache-buster",
    description="an adversary rotating exclude_items/top_k to defeat the "
                "result cache",
    transforms=(CacheBuster(fraction=0.9, rotation=64, rotate_top_k=True),)))

register("hot-shard", lambda: Scenario(
    name="hot-shard",
    description="a hot-key attack concentrating 85% of traffic on one "
                "ring shard",
    transforms=(HotShardTargeting(target_shard=0, fraction=0.85),)))
