"""Workload combinators: composable, seeded transforms over request traces.

A :class:`Scenario` is a named, ordered pipeline of trace transforms applied
to a generated :class:`~repro.simulate.workload.Workload`.  Each transform is
a frozen dataclass with a ``kind`` discriminator — JSON round-trippable and
content-``signature()``-able exactly like :class:`repro.faults.FaultPlan` —
and every random decision inside a transform is drawn from a generator seeded
by the transform's own ``seed`` field, so the same scenario applied to the
same trace produces the identical transformed trace bit for bit.

All time fields are **fractions of the trace span** (first to last arrival),
so a committed scenario spec stays meaningful whatever the trace length — the
same convention as ``FaultPlan``'s ``"timebase": "fraction"``.  A trace whose
span is zero (empty or single-request traces, or all arrivals coincident)
has no timeline to reshape, so time-based transforms leave it unchanged.

The combinator battery:

* :class:`PhaseSchedule` — splice arrival processes over time: the trace is
  cut into phases at span fractions and every inter-arrival gap is re-drawn
  from the phase's process (uniform or Poisson) at the phase's rate
  multiplier.  A request arriving exactly on a phase boundary belongs to the
  *later* phase (half-open ``[start, next)`` windows).
* :class:`DiurnalModulation` — deterministic sinusoidal rate modulation:
  gaps shrink at the cycle's peak and stretch in its trough, the classic
  day/night traffic shape.
* :class:`FlashCrowd` — an item-popularity shock: inside a window the
  arrival rate multiplies and a fraction of requests is retargeted onto the
  trace's few most popular users with bare (exclusion-free) requests, so one
  cache key family suddenly dominates.
* :class:`CohortCorrelation` — correlated user cohorts: users are split into
  seeded cohorts and each session window draws all its traffic from a single
  cohort — region- or tenant-skewed traffic instead of i.i.d. users.
* :class:`CacheBuster` — an adversary that defeats the result cache: a
  fraction of requests gets a rotating single-item exclusion (and optionally
  a rotated ``top_k``), so almost every request is a distinct cache key and
  the full-search tier eats the load.
* :class:`HotShardTargeting` — a shard-targeted hot-key attack: requests are
  retargeted onto users whose consistent-hash primary is one chosen shard,
  computed against the cluster's actual :class:`repro.cluster.ConsistentHashRing`
  geometry.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..simulate.workload import SimulatedRequest, Workload, WorkloadConfig

SCENARIO_VERSION = 1

#: Arrival processes a :class:`Phase` may splice in.  ``bursty`` is excluded
#: on purpose: its two-state chain is a whole-trace property, not a per-gap
#: draw — compose :class:`PhaseSchedule` with a bursty base workload instead.
PHASE_PROCESSES = ("uniform", "poisson")


class ScenarioError(ValueError):
    """A scenario spec is invalid or cannot be applied to this trace."""


@dataclass(frozen=True)
class ScenarioContext:
    """What a transform may consult about the world it reshapes.

    Everything is optional: transforms that need a missing piece raise
    :class:`ScenarioError` naming it.  ``ring`` (the serving cluster's
    actual hash ring) overrides :class:`HotShardTargeting`'s own ring
    parameters, so CLI/Explorer runs always target the topology that will
    really serve the trace.
    """

    graph: Optional[object] = None          # KnowledgeGraph (duck-typed)
    population: Optional[object] = None     # simulate.UserPopulation
    ring: Optional[object] = None           # cluster.ConsistentHashRing

    def item_pool(self) -> Tuple[int, ...]:
        """Sorted item entity ids (needs ``graph``)."""
        if self.graph is None:
            raise ScenarioError("this transform needs a graph in the "
                                "ScenarioContext (item ids)")
        from ..kg.entities import EntityType

        return tuple(sorted(self.graph.entities.ids_of_type(EntityType.ITEM)))

    def user_pool(self, requests: Sequence[SimulatedRequest]) -> Tuple[int, ...]:
        """Candidate users: the population when given, else the trace's own."""
        if self.population is not None:
            return tuple(sorted(set(self.population.warm_users)
                                | set(self.population.cold_users)))
        return tuple(sorted({request.user_entity for request in requests}))

    def excludes_for(self, user: int,
                     had_excludes: bool) -> Tuple[int, ...]:
        """Exclusions for a retargeted request.

        A retargeted request keeps the *shape* "excludes my purchases" only
        when the graph is around to answer what the new user purchased;
        otherwise the exclusions are dropped (an exclusion set tailored to
        the original user would be meaningless noise on the new one).
        """
        if had_excludes and self.graph is not None:
            return tuple(sorted(self.graph.purchased_items(user)))
        return ()


# --------------------------------------------------------------------------- #
# shared trace helpers
# --------------------------------------------------------------------------- #
def _span(requests: Sequence[SimulatedRequest]) -> float:
    """First-to-last arrival span; 0.0 when there is no timeline to reshape."""
    if len(requests) < 2:
        return 0.0
    span = requests[-1].arrival_s - requests[0].arrival_s
    return span if math.isfinite(span) and span > 0.0 else 0.0


def _check_fraction(name: str, value: float,
                    closed_top: bool = True) -> None:
    top_ok = value <= 1.0 if closed_top else value < 1.0
    if not (math.isfinite(value) and 0.0 <= value and top_ok):
        bound = "[0, 1]" if closed_top else "[0, 1)"
        raise ScenarioError(f"{name} must lie in {bound}, got {value!r}")


# --------------------------------------------------------------------------- #
# transforms
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Phase:
    """One slice of a :class:`PhaseSchedule`.

    ``start`` is the slice's opening boundary as a fraction of the trace
    span; the slice runs to the next phase's start (the last one to the end
    of the trace).  ``rate_multiplier`` scales the workload's configured
    ``mean_qps`` inside the slice.
    """

    start: float
    arrival: str = "poisson"
    rate_multiplier: float = 1.0

    def __post_init__(self) -> None:
        _check_fraction("phase start", self.start)
        if self.arrival not in PHASE_PROCESSES:
            raise ScenarioError(f"phase arrival must be one of "
                                f"{PHASE_PROCESSES}, got {self.arrival!r}")
        if not (math.isfinite(self.rate_multiplier)
                and self.rate_multiplier > 0.0):
            raise ScenarioError("phase rate_multiplier must be finite and "
                                "positive")


@dataclass(frozen=True)
class PhaseSchedule:
    """Re-time the trace by splicing arrival processes over span fractions.

    Request order and shapes are untouched; only arrival times change.  The
    phase owning a request is chosen by the request's *original* arrival
    (half-open windows — a request exactly on a boundary opens the later
    phase), then every inter-arrival gap is re-drawn from the owning phase's
    process with mean gap ``1 / (mean_qps * rate_multiplier)``.
    """

    phases: Tuple[Phase, ...]
    seed: int = 0
    kind: str = "phase_schedule"

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(
            phase if isinstance(phase, Phase) else Phase(**phase)
            for phase in self.phases))
        if not self.phases:
            raise ScenarioError("a phase schedule needs at least one phase")
        starts = [phase.start for phase in self.phases]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ScenarioError("phase starts must be strictly increasing")
        if starts[0] != 0.0:
            raise ScenarioError("the first phase must start at 0.0")

    def apply(self, requests: Tuple[SimulatedRequest, ...],
              config: WorkloadConfig,
              context: ScenarioContext) -> Tuple[SimulatedRequest, ...]:
        span = _span(requests)
        if span == 0.0:
            return requests
        origin = requests[0].arrival_s
        boundaries = np.array([origin + phase.start * span
                               for phase in self.phases])
        rng = np.random.default_rng(self.seed)
        base_gap = 1.0 / config.mean_qps
        retimed: List[SimulatedRequest] = []
        now = origin
        for index, request in enumerate(requests):
            # side="right" puts a boundary-exact arrival into the later phase.
            slot = int(np.searchsorted(boundaries, request.arrival_s,
                                       side="right")) - 1
            phase = self.phases[max(slot, 0)]
            if index > 0:
                gap = base_gap / phase.rate_multiplier
                if phase.arrival == "poisson":
                    gap = float(rng.exponential(gap))
                now += gap
            retimed.append(replace(request, arrival_s=float(now)))
        return tuple(retimed)


@dataclass(frozen=True)
class DiurnalModulation:
    """Deterministic sinusoidal rate modulation (day/night cycles).

    The instantaneous rate factor at original arrival time ``t`` is
    ``1 + amplitude * sin(2π((t - t0)/(period·span) + phase))`` and every
    inter-arrival gap is divided by the factor at its request's original
    arrival — peaks compress traffic, troughs stretch it.  ``amplitude`` must
    stay below 1 so the factor stays positive and time keeps moving forward.
    """

    period: float = 0.5        # cycle length as a fraction of the span
    amplitude: float = 0.8
    phase: float = 0.0         # cycle offset in turns
    kind: str = "diurnal"

    def __post_init__(self) -> None:
        if not (math.isfinite(self.period) and self.period > 0.0):
            raise ScenarioError("diurnal period must be finite and positive")
        _check_fraction("diurnal amplitude", self.amplitude, closed_top=False)
        if not math.isfinite(self.phase):
            raise ScenarioError("diurnal phase must be finite")

    def apply(self, requests: Tuple[SimulatedRequest, ...],
              config: WorkloadConfig,
              context: ScenarioContext) -> Tuple[SimulatedRequest, ...]:
        span = _span(requests)
        if span == 0.0:
            return requests
        origin = requests[0].arrival_s
        period_s = self.period * span

        def factor(at_s: float) -> float:
            turns = (at_s - origin) / period_s + self.phase
            return 1.0 + self.amplitude * math.sin(2.0 * math.pi * turns)

        retimed = [requests[0]]
        now = origin
        for previous, request in zip(requests, requests[1:]):
            gap = (request.arrival_s - previous.arrival_s) / factor(request.arrival_s)
            now += gap
            retimed.append(replace(request, arrival_s=float(now)))
        return tuple(retimed)


@dataclass(frozen=True)
class FlashCrowd:
    """An item-popularity shock: a sudden crowd piles onto few hot keys.

    Inside ``[start, start + duration)`` (span fractions) arrivals compress
    by ``rate_multiplier`` and each request is, with probability
    ``target_fraction``, retargeted onto one of the trace's ``hot_users``
    most-requested users with an exclusion-free request — the cache-key
    concentration a viral item produces.  Requests after the window keep
    their absolute arrivals, so the spike is followed by the original lull.
    """

    start: float = 0.4
    duration: float = 0.2
    rate_multiplier: float = 8.0
    hot_users: int = 3
    target_fraction: float = 0.8
    seed: int = 0
    kind: str = "flash_crowd"

    def __post_init__(self) -> None:
        _check_fraction("flash-crowd start", self.start)
        _check_fraction("flash-crowd duration", self.duration)
        if not (math.isfinite(self.rate_multiplier)
                and self.rate_multiplier >= 1.0):
            raise ScenarioError("flash-crowd rate_multiplier must be >= 1")
        if self.hot_users <= 0:
            raise ScenarioError("flash-crowd hot_users must be positive")
        _check_fraction("flash-crowd target_fraction", self.target_fraction)

    def apply(self, requests: Tuple[SimulatedRequest, ...],
              config: WorkloadConfig,
              context: ScenarioContext) -> Tuple[SimulatedRequest, ...]:
        span = _span(requests)
        if span == 0.0 or not requests:
            return requests
        origin = requests[0].arrival_s
        window_start = origin + self.start * span
        window_end = window_start + self.duration * span
        counts: Dict[int, int] = {}
        for request in requests:
            counts[request.user_entity] = counts.get(request.user_entity, 0) + 1
        # Deterministic popularity order: by descending count, then user id.
        ranked = sorted(counts, key=lambda user: (-counts[user], user))
        hot = ranked[: self.hot_users]
        rng = np.random.default_rng(self.seed)
        transformed: List[SimulatedRequest] = []
        for request in requests:
            if not window_start <= request.arrival_s < window_end:
                transformed.append(request)
                continue
            arrival = (window_start
                       + (request.arrival_s - window_start) / self.rate_multiplier)
            updates = {"arrival_s": float(arrival)}
            if rng.random() < self.target_fraction:
                user = hot[int(rng.integers(len(hot)))]
                updates.update(user_entity=user, exclude_items=())
            transformed.append(replace(request, **updates))
        return tuple(transformed)


@dataclass(frozen=True)
class CohortCorrelation:
    """Correlated user cohorts: each session window speaks for one cohort.

    Users are split into ``num_cohorts`` seeded cohorts; the trace is cut
    into sessions of ``session`` span fractions, each session draws a cohort
    (seeded), and every request in the session is retargeted onto a seeded
    member of that cohort — region-skewed or tenant-batched traffic instead
    of independently mixed users.
    """

    num_cohorts: int = 4
    session: float = 0.1       # session window length as a span fraction
    seed: int = 0
    kind: str = "cohorts"

    def __post_init__(self) -> None:
        if self.num_cohorts <= 0:
            raise ScenarioError("num_cohorts must be positive")
        if not (math.isfinite(self.session) and 0.0 < self.session <= 1.0):
            raise ScenarioError("cohort session must lie in (0, 1]")

    def apply(self, requests: Tuple[SimulatedRequest, ...],
              config: WorkloadConfig,
              context: ScenarioContext) -> Tuple[SimulatedRequest, ...]:
        if not requests:
            return requests
        users = context.user_pool(requests)
        rng = np.random.default_rng(self.seed)
        shuffled = [users[i] for i in rng.permutation(len(users))]
        cohorts = [shuffled[i::self.num_cohorts]
                   for i in range(min(self.num_cohorts, len(shuffled)))]
        span = _span(requests)
        origin = requests[0].arrival_s
        session_s = self.session * span
        if session_s > 0.0:
            num_sessions = int(math.floor(span / session_s)) + 1
        else:
            num_sessions = 1   # zero-span trace: one session covers everything
        chosen = rng.integers(len(cohorts), size=num_sessions)
        transformed: List[SimulatedRequest] = []
        for request in requests:
            if session_s > 0.0:
                slot = min(int((request.arrival_s - origin) / session_s),
                           num_sessions - 1)
            else:
                slot = 0
            cohort = cohorts[int(chosen[slot])]
            user = cohort[int(rng.integers(len(cohort)))]
            transformed.append(replace(
                request, user_entity=user,
                exclude_items=context.excludes_for(
                    user, bool(request.exclude_items))))
        return tuple(transformed)


@dataclass(frozen=True)
class CacheBuster:
    """An adversary rotating cache keys so the result cache never helps.

    With probability ``fraction`` a request gains a single-item exclusion
    drawn from a seeded rotation of ``rotation`` real item ids (and, when
    ``rotate_top_k`` is on, a ``top_k`` cycled through the workload's
    configured choices).  Every rotated request is a fresh cache key for the
    same user, so hit rates collapse and the full-search tier carries the
    trace — the worst case for capacity planning.  Needs ``context.graph``
    for the item pool.
    """

    fraction: float = 0.9
    rotation: int = 64
    rotate_top_k: bool = True
    seed: int = 0
    kind: str = "cache_buster"

    def __post_init__(self) -> None:
        _check_fraction("cache-buster fraction", self.fraction)
        if self.rotation <= 0:
            raise ScenarioError("cache-buster rotation must be positive")

    def apply(self, requests: Tuple[SimulatedRequest, ...],
              config: WorkloadConfig,
              context: ScenarioContext) -> Tuple[SimulatedRequest, ...]:
        if not requests:
            return requests
        pool = context.item_pool()
        if not pool:
            raise ScenarioError("cache_buster found no item entities in the "
                                "graph")
        rng = np.random.default_rng(self.seed)
        size = min(self.rotation, len(pool))
        wheel = [pool[i] for i in rng.choice(len(pool), size=size,
                                             replace=False)]
        top_k_wheel = tuple(sorted(set(config.top_k_choices)))
        transformed: List[SimulatedRequest] = []
        turned = 0
        for request in requests:
            if rng.random() >= self.fraction:
                transformed.append(request)
                continue
            item = wheel[turned % len(wheel)]
            updates = {"exclude_items": tuple(sorted(
                set(request.exclude_items) | {item}))}
            if self.rotate_top_k:
                updates["top_k"] = int(top_k_wheel[turned % len(top_k_wheel)])
            turned += 1
            transformed.append(replace(request, **updates))
        return tuple(transformed)


@dataclass(frozen=True)
class HotShardTargeting:
    """A shard-targeted hot-key attack against the consistent-hash ring.

    With probability ``fraction`` a request is retargeted onto a user whose
    ring *primary* is ``target_shard``.  The ring is the serving cluster's
    own when the context carries one (the CLI and the Explorer always pass
    it); otherwise it is rebuilt from the spec's ``num_shards`` /
    ``virtual_nodes`` / ``ring_seed`` — the same triple
    :class:`repro.cluster.ClusterService` boots from, so a committed spec
    targets the real topology.
    """

    target_shard: int = 0
    fraction: float = 0.85
    num_shards: int = 4
    virtual_nodes: int = 64
    ring_seed: int = 0
    seed: int = 0
    kind: str = "hot_shard"

    def __post_init__(self) -> None:
        _check_fraction("hot-shard fraction", self.fraction)
        if self.num_shards <= 0:
            raise ScenarioError("hot-shard num_shards must be positive")
        if self.virtual_nodes <= 0:
            raise ScenarioError("hot-shard virtual_nodes must be positive")
        if self.target_shard < 0:
            raise ScenarioError("hot-shard target_shard must be non-negative")

    def _ring(self, context: ScenarioContext):
        if context.ring is not None:
            return context.ring
        from ..cluster import ConsistentHashRing

        return ConsistentHashRing(range(self.num_shards),
                                  virtual_nodes=self.virtual_nodes,
                                  seed=self.ring_seed)

    def apply(self, requests: Tuple[SimulatedRequest, ...],
              config: WorkloadConfig,
              context: ScenarioContext) -> Tuple[SimulatedRequest, ...]:
        if not requests:
            return requests
        ring = self._ring(context)
        if self.target_shard not in ring.shards:
            raise ScenarioError(f"target shard {self.target_shard} is not on "
                                f"the ring (shards: {list(ring.shards)})")
        owned = ring.keys_for_shard(context.user_pool(requests),
                                    self.target_shard)
        if not owned:
            raise ScenarioError(f"no candidate user hashes to shard "
                                f"{self.target_shard}; widen the population "
                                f"or pick another target")
        rng = np.random.default_rng(self.seed)
        transformed: List[SimulatedRequest] = []
        for request in requests:
            if rng.random() >= self.fraction:
                transformed.append(request)
                continue
            user = owned[int(rng.integers(len(owned)))]
            transformed.append(replace(
                request, user_entity=user,
                exclude_items=context.excludes_for(
                    user, bool(request.exclude_items))))
        return tuple(transformed)


Transform = Union[PhaseSchedule, DiurnalModulation, FlashCrowd,
                  CohortCorrelation, CacheBuster, HotShardTargeting]

_TRANSFORM_TYPES: Dict[str, type] = {
    "phase_schedule": PhaseSchedule,
    "diurnal": DiurnalModulation,
    "flash_crowd": FlashCrowd,
    "cohorts": CohortCorrelation,
    "cache_buster": CacheBuster,
    "hot_shard": HotShardTargeting,
}


def transform_from_dict(payload: Dict) -> Transform:
    """Rebuild one transform from its JSON dict (``kind`` selects the type)."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = _TRANSFORM_TYPES.get(kind)
    if cls is None:
        raise ScenarioError(f"unknown transform kind {kind!r} "
                            f"(choose from {sorted(_TRANSFORM_TYPES)})")
    if cls is PhaseSchedule and "phases" in data:
        data["phases"] = tuple(Phase(**phase) if isinstance(phase, dict)
                               else phase for phase in data["phases"])
    try:
        return cls(**data)
    except TypeError as error:
        raise ScenarioError(f"bad {kind} spec {payload!r}: {error}") from error


# --------------------------------------------------------------------------- #
# the scenario: an ordered transform pipeline with an identity
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scenario:
    """A named, ordered, serialisable pipeline of workload transforms.

    ``apply`` runs the transforms in order over a trace, then normalises the
    result: requests are stably re-sorted by arrival time and re-indexed
    ``0..n-1``, so any transform output is a well-formed replayable trace.
    An empty transform tuple is the identity scenario — useful as the
    baseline cell of an Explorer sweep.
    """

    name: str
    transforms: Tuple[Transform, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("a scenario needs a non-empty name")
        object.__setattr__(self, "transforms", tuple(self.transforms))

    def apply(self, workload: Workload,
              context: Optional[ScenarioContext] = None) -> Workload:
        context = context or ScenarioContext()
        requests = workload.requests
        for transform in self.transforms:
            requests = transform.apply(requests, workload.config, context)
        ordered = sorted(requests, key=lambda request: request.arrival_s)
        reindexed = tuple(replace(request, index=index)
                          for index, request in enumerate(ordered))
        return Workload(config=workload.config, requests=reindexed)

    # ------------------------------------------------------------------ #
    # serialisation & identity (the FaultPlan conventions)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {"version": SCENARIO_VERSION, "name": self.name,
                "description": self.description,
                "transforms": [asdict(transform)
                               for transform in self.transforms]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "Scenario":
        version = payload.get("version", SCENARIO_VERSION)
        if version != SCENARIO_VERSION:
            raise ScenarioError(f"unsupported scenario version {version!r}")
        name = payload.get("name")
        if not name:
            raise ScenarioError("scenario payload has no name")
        return cls(name=name, description=payload.get("description", ""),
                   transforms=tuple(transform_from_dict(entry)
                                    for entry in payload.get("transforms", ())))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        return cls.from_json(Path(path).read_text())

    def signature(self) -> str:
        """SHA-256 over the canonical serialisation — spec identity in one line."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
