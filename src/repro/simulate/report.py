"""Report layer: turn replay records into a summary dict and a text report.

The latency/QPS/tier aggregation reuses :class:`repro.serving.ServingTelemetry`
— the records are fed into a fresh telemetry instance whose clock follows the
trace's arrival times, so the replay report and the live service dashboards
speak the same schema (``latency_ms.p50/p95/p99``, ``tiers``, hit rates).
Percentage formatting reuses :func:`repro.eval.metrics.as_percentages`, the
same helper the paper-table code uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..eval.metrics import as_percentages
from ..serving.telemetry import ServingTelemetry
from .oracles import OracleReport
from .replay import ReplayResult, TraceClock


def replay_telemetry(result: ReplayResult) -> ServingTelemetry:
    """Feed the replay records into a fresh telemetry over trace time."""
    clock = TraceClock()
    telemetry = ServingTelemetry(window=max(2, len(result.records)), clock=clock)
    for record in result.records:
        clock.advance_to(record.arrival_s)
        telemetry.record(record.latency_ms, record.tier, cache_hit=record.cache_hit)
    return telemetry


def summarize(result: ReplayResult,
              oracle_reports: Optional[Sequence[OracleReport]] = None) -> Dict:
    """One dict with everything a test or a dashboard wants to scrape."""
    telemetry = replay_telemetry(result)
    snapshot = telemetry.snapshot()
    total = max(1, len(result.records))
    summary = {
        "requests": len(result.records),
        "distinct_users": len({record.user_entity for record in result.records}),
        "trace_duration_s": result.workload.duration_s,
        "trace_qps": snapshot["qps"],
        "wall_seconds": result.wall_seconds,
        "replay_qps": result.replay_qps(),
        "latency_ms": snapshot["latency_ms"],
        "cache_hit_rate": result.cache_hit_rate(),
        "tier_mix": {tier: count / total
                     for tier, count in sorted(result.tier_counts().items())},
        "source_tier_mix": {tier: count / total
                            for tier, count in sorted(result.source_tier_counts().items())},
    }
    if oracle_reports is not None:
        summary["oracles"] = {report.oracle: {"checked": report.checked,
                                              "mismatches": report.mismatches}
                              for report in oracle_reports}
    return summary


def render_report(summary: Dict) -> str:
    """Human-readable report (percentages via the Table-I formatting helper)."""
    lines: List[str] = ["=== replay report ==="]
    lines.append(f"requests            {summary['requests']:>8d} "
                 f"({summary['distinct_users']} distinct users)")
    lines.append(f"trace duration      {summary['trace_duration_s']:>8.2f}s "
                 f"({summary['trace_qps']:.0f} QPS offered)")
    lines.append(f"replay wall time    {summary['wall_seconds']:>8.2f}s "
                 f"({summary['replay_qps']:.0f} QPS served)")
    latency = summary["latency_ms"]
    rendered_latency = "  ".join(f"{label}={value:.2f}"
                                 for label, value in latency.items())
    lines.append(f"latency ms          {rendered_latency}")
    lines.append(f"cache hit rate      {100.0 * summary['cache_hit_rate']:>7.1f}%")
    for title, key in (("tier mix", "tier_mix"), ("source tiers", "source_tier_mix")):
        shares = as_percentages(summary[key])
        rendered = "  ".join(f"{tier}={share:.1f}%" for tier, share in shares.items())
        lines.append(f"{title:<19s} {rendered}")
    for oracle, outcome in summary.get("oracles", {}).items():
        status = ("ok" if outcome["mismatches"] == 0
                  else f"{outcome['mismatches']} MISMATCHES")
        lines.append(f"oracle              {oracle}: "
                     f"checked {outcome['checked']}, {status}")
    return "\n".join(lines)
