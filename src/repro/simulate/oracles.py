"""Correctness oracles: replayed results checked against ground truth.

Serving a request can legitimately answer from four tiers, and "correct" means
something different per tier.  Each oracle re-derives the expected answer for
the tiers it understands and reports mismatches as :class:`OracleFinding`\\ s:

* :class:`FullSearchOracle` — responses whose payload was computed by the full
  beam search (``source_tier == FULL``, i.e. fresh full searches *and* cache
  hits on them) must match a direct ``PathRecommender.recommend`` call
  exactly, item for item and in order.
* :class:`FallbackValidityOracle` — every response must satisfy the universal
  invariants (unique items, at most ``top_k`` of them, exclusions respected,
  only item entities); embedding-tier payloads must additionally reproduce the
  deterministic fallback ranking, and tier choice must match policy (cold
  users never get the full search, unconstrained warm misses always do).
* :class:`StaleConsistencyOracle` — a stale response must replay, verbatim,
  the most recent non-stale answer served for the same cache key earlier in
  the trace.
* :class:`CrossGenerationOracle` — in a live-updated replay every response
  is stamped with the artifact generation that computed it; each answer must
  be valid *against that generation's tables* (pre-swap answers against
  generation N, post-swap against N+1, never a torn mix of both).
* :class:`FaultToleranceOracle` — under an injected fault plan, every request
  is still answered, and every answer is either bit-identical (items) to the
  fault-free same-seed replay or carries degraded ``fault`` provenance that a
  fault-ledger entry explains.  Divergence without provenance, and provenance
  without a matching ledgered cause, are both findings.

``run_oracles`` wires the first three to a service and a record list;
``run_live_oracles`` runs the live battery over a generation ledger;
``run_fault_oracles`` audits a faulted replay against its clean twin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..serving.fallback import ServingTier
from .replay import RequestRecord


@dataclass(frozen=True)
class OracleFinding:
    """One violated expectation, anchored to a trace index."""

    oracle: str
    index: int
    user_entity: int
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"[{self.oracle}] request #{self.index} "
                f"(user {self.user_entity}): {self.message}")


@dataclass
class OracleReport:
    """Outcome of one oracle pass over a record list."""

    oracle: str
    checked: int = 0
    findings: List[OracleFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def mismatches(self) -> int:
        return len(self.findings)

    def add(self, record: RequestRecord, message: str) -> None:
        self.findings.append(OracleFinding(oracle=self.oracle, index=record.index,
                                           user_entity=record.user_entity,
                                           message=message))

    def summary(self) -> str:
        status = "ok" if self.ok else f"{self.mismatches} mismatches"
        return f"{self.oracle}: checked {self.checked} requests, {status}"


class FullSearchOracle:
    """Exact-match oracle for payloads produced by the full beam search."""

    name = "full_search_oracle"

    def __init__(self, recommender) -> None:
        self.recommender = recommender

    def check(self, records: Sequence[RequestRecord],
              sample_size: Optional[int] = None, seed: int = 0) -> OracleReport:
        """Recompute a (sampled) set of FULL-provenance answers and compare.

        ``sample_size`` bounds the number of re-searches (they cost a full
        beam search each); ``None`` checks every eligible record.
        """
        report = OracleReport(oracle=self.name)
        eligible = [record for record in records
                    if record.source_tier is ServingTier.FULL]
        if sample_size is not None and sample_size < len(eligible):
            rng = np.random.default_rng(seed)
            chosen = rng.choice(len(eligible), size=sample_size, replace=False)
            eligible = [eligible[i] for i in sorted(chosen)]
        # Records sharing a cache key share one expected answer — memoise so a
        # Zipf-skewed trace (many cache hits per key) costs one beam search
        # per distinct key instead of one per record.
        expected_by_key: dict = {}
        for record in eligible:
            report.checked += 1
            key = record.cache_key()
            expected_items = expected_by_key.get(key)
            if expected_items is None:
                expected = self.recommender.recommend(
                    record.user_entity, exclude_items=set(record.exclude_items),
                    top_k=record.top_k)
                expected_items = tuple(path.item_entity for path in expected)
                expected_by_key[key] = expected_items
            if record.items != expected_items:
                report.add(record, f"served items {list(record.items)} != "
                                   f"direct search {list(expected_items)}")
        return report


class FallbackValidityOracle:
    """Universal invariants plus relaxed per-tier checks for degraded answers."""

    name = "fallback_validity_oracle"

    def __init__(self, service) -> None:
        self.service = service
        self.graph = service.graph

    def check(self, records: Sequence[RequestRecord]) -> OracleReport:
        report = OracleReport(oracle=self.name)
        expected_by_key: dict = {}
        for record in records:
            report.checked += 1
            self._check_universal(record, report)
            if record.source_tier is ServingTier.EMBEDDING:
                self._check_embedding(record, report, expected_by_key)
            self._check_tier_policy(record, report)
        return report

    # ------------------------------------------------------------------ #
    def _check_universal(self, record: RequestRecord, report: OracleReport) -> None:
        items = record.items
        if len(items) > record.top_k:
            report.add(record, f"{len(items)} items exceed top_k={record.top_k}")
        if len(set(items)) != len(items):
            report.add(record, f"duplicate items in {list(items)}")
        leaked = set(items) & set(record.exclude_items)
        if leaked:
            report.add(record, f"excluded items served: {sorted(leaked)}")
        non_items = [entity for entity in items
                     if not self.graph.entities.is_item(entity)]
        if non_items:
            report.add(record, f"non-item entities served: {non_items}")
        for path in record.paths:
            if path.item_entity != (path.hops[-1][1] if path.hops else None):
                report.add(record, f"path does not end at its item: {path}")
            if path.length < self.service.recommender.config.min_path_length:
                report.add(record, f"path shorter than min_path_length: {path}")

    def _check_embedding(self, record: RequestRecord, report: OracleReport,
                         expected_by_key: dict) -> None:
        """Embedding answers are deterministic — recompute (once per key) and compare."""
        key = record.cache_key()
        expected = expected_by_key.get(key)
        if expected is None:
            expected = tuple(self.service.tiers.fallback_items(record))
            expected_by_key[key] = expected
        if record.items != expected:
            report.add(record, f"embedding items {list(record.items)} != "
                               f"recomputed ranking {list(expected)}")

    def _check_tier_policy(self, record: RequestRecord, report: OracleReport) -> None:
        cold = self.service.tiers.is_cold(record.user_entity)
        if cold and record.source_tier is ServingTier.FULL:
            report.add(record, "cold user served a full-search payload")
        if (not cold and not record.cache_hit
                and record.latency_budget_ms is None
                and not record.shed
                and record.tier is not ServingTier.FULL):
            # Shed answers are exempt: cluster backpressure legitimately
            # degrades an unconstrained request into the fallback chain, and
            # the record says so explicitly.
            report.add(record, f"unconstrained warm miss served from "
                               f"'{record.tier.value}' instead of full search")
        if record.shed and record.tier is ServingTier.FULL:
            # A shed request may still hit the shard's fresh cache (free and
            # full quality), but it must never run the full search it was
            # shed to avoid.
            report.add(record, "shed request ran the full beam search "
                               "instead of the fallback tier chain")


class StaleConsistencyOracle:
    """Stale answers must replay an earlier answer for the same cache key."""

    name = "stale_consistency_oracle"

    def __init__(self, service) -> None:
        self.service = service

    def check(self, records: Sequence[RequestRecord],
              strict: bool = False) -> OracleReport:
        """Compare each stale answer to the last in-window cached answer.

        A cache entry may legitimately predate ``records`` (``warm_up()``, a
        previous replay against the same service), in which case the oracle
        has nothing to compare against; such stale answers are counted as
        checked but only flagged under ``strict=True`` — use strict mode when
        ``records`` is known to span the service's whole serving history.
        """
        report = OracleReport(oracle=self.name)
        last_cached: dict = {}
        for record in records:
            key = record.cache_key()
            if record.tier is ServingTier.STALE:
                report.checked += 1
                earlier = last_cached.get(key)
                if earlier is None:
                    if strict:
                        report.add(record, "stale answer with no earlier "
                                           "cached result for its cache key")
                elif record.items != earlier:
                    report.add(record, f"stale items {list(record.items)} != "
                                       f"cached answer {list(earlier)}")
            elif self._updates_cache(record):
                last_cached[key] = record.items
        return report

    def _updates_cache(self, record: RequestRecord) -> bool:
        """Which responses reflect the cache content for their key.

        Full searches and cold-user embedding answers are written to the
        cache; cache hits echo its current content.  Warm over-budget
        embedding answers are deliberately *not* cached by the service, so
        they must not count as the entry a later stale hit will replay.
        """
        if record.tier in (ServingTier.FULL, ServingTier.CACHE):
            return True
        return (record.tier is ServingTier.EMBEDDING
                and self.service.tiers.is_cold(record.user_entity))


class CrossGenerationOracle:
    """Every answer must be consistent with the generation that produced it.

    ``views`` maps generation number → a service-like view (``.graph``,
    ``.recommender``, ``.tiers``) over exactly that generation's frozen
    tables (:meth:`repro.live.LiveSession.generation_views` builds them).
    For each record the oracle:

    * requires the stamped generation to exist in the ledger;
    * re-checks the universal invariants against *that* generation's graph —
      in particular, every served item must be an item entity of that
      generation, which catches torn mixes: an item introduced by generation
      N+1 has an entity id beyond generation N's tables, so it can never
      legally appear in a generation-N answer;
    * recomputes FULL-provenance payloads with that generation's recommender
      (sampled, memoised per ``(generation, cache key)``) and
      EMBEDDING-provenance payloads with its fallback ranker;
    * checks tier policy against that generation's cold-user set.
    """

    name = "cross_generation_oracle"

    def __init__(self, views) -> None:
        if not views:
            raise ValueError("the oracle needs at least one generation view")
        self.views = dict(views)

    def check(self, records: Sequence[RequestRecord],
              full_search_sample: Optional[int] = None,
              seed: int = 0) -> OracleReport:
        report = OracleReport(oracle=self.name)
        eligible_full = [record for record in records
                         if record.source_tier is ServingTier.FULL]
        sampled_full = set(record.index for record in eligible_full)
        if (full_search_sample is not None
                and full_search_sample < len(eligible_full)):
            rng = np.random.default_rng(seed)
            chosen = rng.choice(len(eligible_full), size=full_search_sample,
                                replace=False)
            sampled_full = {eligible_full[i].index for i in chosen}
        expected_by_key: dict = {}
        for record in records:
            report.checked += 1
            view = self.views.get(record.generation)
            if view is None:
                report.add(record, f"answer stamped with unknown generation "
                                   f"{record.generation} (ledger has "
                                   f"{sorted(self.views)})")
                continue
            self._check_universal(record, view, report)
            if (record.source_tier is ServingTier.FULL
                    and record.index in sampled_full):
                self._check_full(record, view, report, expected_by_key)
            elif record.source_tier is ServingTier.EMBEDDING:
                self._check_embedding(record, view, report, expected_by_key)
            self._check_tier_policy(record, view, report)
        return report

    # ------------------------------------------------------------------ #
    def _check_universal(self, record: RequestRecord, view,
                         report: OracleReport) -> None:
        items = record.items
        if len(items) > record.top_k:
            report.add(record, f"{len(items)} items exceed top_k={record.top_k}")
        if len(set(items)) != len(items):
            report.add(record, f"duplicate items in {list(items)}")
        leaked = set(items) & set(record.exclude_items)
        if leaked:
            report.add(record, f"excluded items served: {sorted(leaked)}")
        # The generation-scoped item check: entity ids beyond this
        # generation's tables (or non-item ids) prove a torn answer.
        torn = [entity for entity in items
                if entity not in view.graph.entities
                or not view.graph.entities.is_item(entity)]
        if torn:
            report.add(record, f"items invalid for generation "
                               f"{record.generation}: {torn}")

    def _check_full(self, record: RequestRecord, view, report: OracleReport,
                    expected_by_key: dict) -> None:
        key = (record.generation, record.cache_key())
        expected = expected_by_key.get(key)
        if expected is None:
            paths = view.recommender.recommend(
                record.user_entity, exclude_items=set(record.exclude_items),
                top_k=record.top_k)
            expected = tuple(path.item_entity for path in paths)
            expected_by_key[key] = expected
        if record.items != expected:
            report.add(record, f"generation {record.generation} full search "
                               f"gives {list(expected)}, served "
                               f"{list(record.items)}")

    def _check_embedding(self, record: RequestRecord, view,
                         report: OracleReport, expected_by_key: dict) -> None:
        key = (record.generation, "embed", record.cache_key())
        expected = expected_by_key.get(key)
        if expected is None:
            expected = tuple(view.tiers.fallback_items(record))
            expected_by_key[key] = expected
        if record.items != expected:
            report.add(record, f"generation {record.generation} embedding "
                               f"ranking gives {list(expected)}, served "
                               f"{list(record.items)}")

    def _check_tier_policy(self, record: RequestRecord, view,
                           report: OracleReport) -> None:
        if (view.tiers.is_cold(record.user_entity)
                and record.source_tier is ServingTier.FULL):
            report.add(record, f"user cold in generation {record.generation} "
                               "served a full-search payload")


class ScalingOracle:
    """Scale events may change provenance, never answers.

    Runs over an autoscaled replay (``autoscaler`` is a
    :class:`repro.cluster.Autoscaler`) and checks two families of invariants:

    * **event-chain structure** — the recorded :class:`~repro.cluster.ScaleEvent`
      sequence must be a walk of ±1 steps starting at the autoscaler's initial
      shard count, staying inside ``[min_shards, max_shards]``, with strictly
      increasing tick indices and non-decreasing trace times;
    * **answer stability across scaling** — every shard serves the same frozen
      tables, so two answers computed by the same tier for the same cache key
      must be identical no matter which shard (pre- or post-scaling) produced
      them; and a fresh cache hit must echo the latest computed answer for its
      key — if warm migration handed the entry to a new owner, the payload must
      have survived the move bit-for-bit.  (Like the stale oracle, hits whose
      entry predates the record list — ``warm_up()``, an earlier replay — have
      nothing in-trace to compare against and are only counted.)
    """

    name = "scaling_oracle"

    def __init__(self, autoscaler) -> None:
        self.autoscaler = autoscaler

    def check(self, records: Sequence[RequestRecord]) -> OracleReport:
        report = OracleReport(oracle=self.name)
        self._check_events(report)
        self._check_records(records, report)
        return report

    # ------------------------------------------------------------------ #
    def _structural(self, report: OracleReport, message: str) -> None:
        """A finding about the event ledger itself, not any one request."""
        report.findings.append(OracleFinding(
            oracle=self.name, index=-1, user_entity=-1, message=message))

    def _check_events(self, report: OracleReport) -> None:
        config = self.autoscaler.config
        shards = self.autoscaler.initial_shards
        last_tick = 0
        last_at = float("-inf")
        for event in self.autoscaler.events:
            if event.action not in ("up", "down"):
                self._structural(report, f"unknown action {event.action!r} "
                                         f"at tick {event.tick}")
                continue
            step = 1 if event.action == "up" else -1
            if event.from_shards != shards:
                self._structural(report,
                                 f"tick {event.tick}: event starts from "
                                 f"{event.from_shards} shards but the chain "
                                 f"stands at {shards}")
            if event.to_shards != event.from_shards + step:
                self._structural(report,
                                 f"tick {event.tick}: scale-{event.action} "
                                 f"went {event.from_shards} → "
                                 f"{event.to_shards}, not a ±1 step")
            if not config.min_shards <= event.to_shards <= config.max_shards:
                self._structural(report,
                                 f"tick {event.tick}: {event.to_shards} shards "
                                 f"violates [{config.min_shards}, "
                                 f"{config.max_shards}]")
            if event.tick <= last_tick:
                self._structural(report,
                                 f"tick {event.tick} not after tick {last_tick}")
            if event.at_s < last_at:
                self._structural(report,
                                 f"tick {event.tick}: trace time {event.at_s} "
                                 f"moved backwards")
            shards = event.to_shards
            last_tick = event.tick
            last_at = event.at_s
        if self.autoscaler.num_shards != shards:
            self._structural(report,
                             f"event chain ends at {shards} shards but the "
                             f"cluster has {self.autoscaler.num_shards}")

    def _check_records(self, records: Sequence[RequestRecord],
                       report: OracleReport) -> None:
        stable: dict = {}        # (source tier, cache key) -> first answer
        computed: dict = {}      # cache key -> latest computed answer
        for record in records:
            report.checked += 1
            key = record.cache_key()
            identity = (record.source_tier.value, key)
            earlier = stable.get(identity)
            if earlier is None:
                stable[identity] = record.items
            elif record.items != earlier:
                report.add(record,
                           f"{record.source_tier.value} answer changed across "
                           f"scaling: {list(earlier)} then "
                           f"{list(record.items)}")
            if record.tier is ServingTier.CACHE:
                expected = computed.get(key)
                if expected is not None and record.items != expected:
                    report.add(record,
                               f"cache hit {list(record.items)} != latest "
                               f"computed answer {list(expected)} (entry "
                               f"corrupted in flight?)")
            elif record.tier is ServingTier.FULL or (
                    record.tier is ServingTier.EMBEDDING
                    and self.autoscaler.tiers.is_cold(record.user_entity)):
                # The responses the service writes to the cache — what any
                # later fresh hit (possibly on another shard, post-migration)
                # must reproduce.
                computed[key] = record.items


class FaultToleranceOracle:
    """Self-healing audit: a faulted replay against its fault-free twin.

    ``baseline_records`` come from a same-seed replay of the identical stack
    with no faults injected; ``ledger`` is the run's
    :class:`repro.faults.FaultLedger` (anything exposing ``kinds()``).  The
    oracle enforces the fault-tolerance contract:

    * **100% answered** — the faulted replay serves exactly as many requests
      as the clean one (faults may degrade answers, never drop them);
    * **explained divergence only** — an answer whose items differ from the
      clean replay must carry ``fault`` provenance, and that provenance must
      map to at least one ledgered fault kind that can cause it;
    * **no phantom provenance** — a ``fault`` stamp whose explaining fault
      kind never fired (per the ledger) is itself a finding.

    Items are the identity: a retried answer may legitimately come off a
    replica with different tier/cache placement, but the *payload* must match
    the clean replay unless provenance says otherwise.
    """

    name = "fault_tolerance_oracle"

    #: fault provenance value → ledger entry kinds that explain it.
    PROVENANCE_EXPLANATIONS = {
        "circuit_open": frozenset({"breaker_open"}),
        "retried": frozenset({"retry"}),
        "retry_exhausted": frozenset({"shard_exception", "latency_stall",
                                      "shard_down"}),
        "quarantined": frozenset({"quarantine"}),
        "swap_interrupted": frozenset({"crash_mid_swap"}),
    }

    def __init__(self, baseline_records: Sequence[RequestRecord],
                 ledger=None) -> None:
        self.baseline = list(baseline_records)
        self.ledger = ledger

    def check(self, records: Sequence[RequestRecord]) -> OracleReport:
        report = OracleReport(oracle=self.name)
        if len(records) != len(self.baseline):
            report.findings.append(OracleFinding(
                oracle=self.name, index=len(records), user_entity=-1,
                message=f"faulted replay answered {len(records)} requests, "
                        f"clean replay answered {len(self.baseline)} — every "
                        f"request must be answered under faults"))
        ledger_kinds = (set(self.ledger.kinds())
                        if self.ledger is not None else set())
        for record, base in zip(records, self.baseline):
            report.checked += 1
            if record.fault is None:
                if record.items != base.items:
                    report.add(record,
                               f"items {list(record.items)} diverge from the "
                               f"fault-free replay's {list(base.items)} with "
                               f"no fault provenance")
                continue
            explains = self.PROVENANCE_EXPLANATIONS.get(record.fault)
            if explains is None:
                report.add(record,
                           f"unknown fault provenance {record.fault!r}")
            elif not explains & ledger_kinds:
                report.add(record,
                           f"fault provenance {record.fault!r} but no "
                           f"explaining fault in the ledger (needs one of "
                           f"{sorted(explains)}; ledger has "
                           f"{sorted(ledger_kinds)})")
        return report


def run_oracles(service, records: Sequence[RequestRecord],
                full_search_sample: Optional[int] = None,
                seed: int = 0) -> List[OracleReport]:
    """Run the full oracle battery against one service's replay records."""
    return [
        FullSearchOracle(service.recommender).check(
            records, sample_size=full_search_sample, seed=seed),
        FallbackValidityOracle(service).check(records),
        StaleConsistencyOracle(service).check(records),
    ]


def run_live_oracles(session, records: Sequence[RequestRecord],
                     full_search_sample: Optional[int] = None,
                     seed: int = 0) -> List[OracleReport]:
    """The oracle battery for a live (multi-generation) replay.

    ``session`` is a :class:`repro.live.LiveSession` (anything exposing
    ``generation_views()``).  The cross-generation oracle subsumes the
    single-generation full-search/validity checks — each applied against the
    generation that actually answered — and the stale-consistency oracle
    remains sound unchanged: a stale answer replays a cached record verbatim,
    generation stamp included.
    """
    views = session.generation_views()
    return [
        CrossGenerationOracle(views).check(
            records, full_search_sample=full_search_sample, seed=seed),
        StaleConsistencyOracle(session).check(records),
    ]


def run_autoscale_oracles(autoscaler, records: Sequence[RequestRecord],
                          full_search_sample: Optional[int] = None,
                          seed: int = 0) -> List[OracleReport]:
    """The oracle battery for an autoscaled replay.

    ``autoscaler`` is a :class:`repro.cluster.Autoscaler`; it exposes the
    reference ``recommender``/``tiers``/``graph`` surface, so the standard
    battery applies unchanged, and the :class:`ScalingOracle` additionally
    checks the scale-event ledger and answer stability across resharding.
    """
    return run_oracles(autoscaler, records,
                       full_search_sample=full_search_sample,
                       seed=seed) + [ScalingOracle(autoscaler).check(records)]


def run_fault_oracles(records: Sequence[RequestRecord],
                      baseline_records: Sequence[RequestRecord],
                      ledger=None) -> List[OracleReport]:
    """The fault-replay battery: the self-healing contract check.

    Runs over the *faulted* records; ``baseline_records`` come from the
    fault-free same-seed replay of an identical stack, ``ledger`` from the
    run's :class:`repro.faults.FaultInjector`.  Answer validity under
    degradation is covered by the standard battery run on the clean twin —
    this battery audits the delta between the two runs.
    """
    return [FaultToleranceOracle(baseline_records, ledger).check(records)]
