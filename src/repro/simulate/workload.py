"""Deterministic, seeded workload generation for the serving stack.

A :class:`Workload` is a replayable trace of :class:`SimulatedRequest`\\ s with
explicit arrival times, generated from a :class:`UserPopulation` and a
:class:`WorkloadConfig`.  The generator plants the regularities real
recommendation traffic has:

* **Skewed popularity** — request frequency over warm users follows a Zipf
  law (a seeded permutation assigns ranks), so a few users dominate the trace
  and the result cache has something to exploit.
* **Cold-start traffic** — a configurable fraction of requests comes from a
  cold population (entities without purchase edges), exercising the embedding
  fallback tier.
* **Arrival processes** — uniform (evenly spaced), Poisson (exponential
  inter-arrivals) or bursty (a two-state modulated Poisson process), so the
  replay driver can form realistic micro-batches.
* **Request shape variety** — mixed ``top_k`` values, a fraction of requests
  excluding the user's known purchases, and a fraction carrying a tight
  latency budget (with or without stale tolerance) to trigger the fallback
  tiers.

Everything is driven by one ``numpy`` generator seeded from the config, so the
same config reproduces the identical trace bit for bit — ``signature()``
hashes the canonical JSON serialisation to make that checkable in one line.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..kg.entities import EntityType
from ..kg.graph import KnowledgeGraph
from ..serving.service import RecommendationRequest

ARRIVAL_PROCESSES = ("uniform", "poisson", "bursty")


class WorkloadSchemaError(ValueError):
    """A serialised workload payload does not match the trace schema.

    Raised by :meth:`Workload.from_dict` (and therefore ``from_json``/
    ``load``) on unknown or missing keys and on config values that fail
    :meth:`WorkloadConfig.validate` — a hand-edited trace file fails loudly
    at load time instead of silently dropping keys or replaying garbage.
    """


@dataclass(frozen=True)
class SimulatedRequest:
    """One trace entry: a serving request plus its arrival time.

    ``exclude_items`` is a sorted tuple (not a set) so the trace serialises
    canonically; :meth:`to_request` converts to the serving request type.
    """

    index: int
    arrival_s: float
    user_entity: int
    top_k: int
    exclude_items: Tuple[int, ...] = ()
    latency_budget_ms: Optional[float] = None
    allow_stale: bool = True

    def to_request(self) -> RecommendationRequest:
        return RecommendationRequest(
            user_entity=self.user_entity, top_k=self.top_k,
            exclude_items=frozenset(self.exclude_items),
            latency_budget_ms=self.latency_budget_ms,
            allow_stale=self.allow_stale)

    def to_dict(self) -> Dict:
        return {
            "index": self.index,
            "arrival_s": self.arrival_s,
            "user_entity": self.user_entity,
            "top_k": self.top_k,
            "exclude_items": list(self.exclude_items),
            "latency_budget_ms": self.latency_budget_ms,
            "allow_stale": self.allow_stale,
        }

    #: Trace-entry schema: every serialised request must carry the required
    #: keys, may carry the optional ones, and nothing else.
    REQUIRED_KEYS = frozenset({"index", "arrival_s", "user_entity", "top_k"})
    OPTIONAL_KEYS = frozenset({"exclude_items", "latency_budget_ms",
                               "allow_stale"})

    @classmethod
    def from_dict(cls, payload: Dict) -> "SimulatedRequest":
        missing = cls.REQUIRED_KEYS - payload.keys()
        if missing:
            raise WorkloadSchemaError(
                f"request entry is missing keys {sorted(missing)}: {payload!r}")
        unknown = payload.keys() - cls.REQUIRED_KEYS - cls.OPTIONAL_KEYS
        if unknown:
            raise WorkloadSchemaError(
                f"request entry has unknown keys {sorted(unknown)} "
                f"(schema: {sorted(cls.REQUIRED_KEYS | cls.OPTIONAL_KEYS)})")
        arrival = float(payload["arrival_s"])
        if not math.isfinite(arrival):
            raise WorkloadSchemaError(
                f"request entry {payload['index']!r} has a non-finite "
                f"arrival_s {payload['arrival_s']!r}")
        return cls(
            index=int(payload["index"]),
            arrival_s=float(payload["arrival_s"]),
            user_entity=int(payload["user_entity"]),
            top_k=int(payload["top_k"]),
            exclude_items=tuple(int(i) for i in payload.get("exclude_items", ())),
            latency_budget_ms=(None if payload.get("latency_budget_ms") is None
                               else float(payload["latency_budget_ms"])),
            allow_stale=bool(payload.get("allow_stale", True)),
        )


@dataclass(frozen=True)
class UserPopulation:
    """The audience a workload draws from.

    ``warm_users`` have purchase history in the KG (full-search eligible);
    ``cold_users`` have none and will be served from the embedding tier.
    """

    warm_users: Tuple[int, ...]
    cold_users: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.warm_users and not self.cold_users:
            raise ValueError("population must contain at least one user")

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph,
                   extra_cold_users: Sequence[int] = ()) -> "UserPopulation":
        """Split the KG's user entities by purchase history.

        ``extra_cold_users`` lets callers add stand-ins for never-seen users
        (any entity with a representation but no purchase edges qualifies as
        cold for the tier chooser).
        """
        warm: List[int] = []
        cold: List[int] = []
        for user in graph.entities.ids_of_type(EntityType.USER):
            (warm if graph.purchased_items(user) else cold).append(user)
        return cls(warm_users=tuple(warm),
                   cold_users=tuple(cold) + tuple(extra_cold_users))


@dataclass
class WorkloadConfig:
    """Knobs of the workload generator (deterministic per ``seed``)."""

    num_requests: int = 1000
    seed: int = 0
    # arrivals
    arrival: str = "poisson"           # one of ARRIVAL_PROCESSES
    mean_qps: float = 200.0
    burst_factor: float = 10.0         # arrival-rate multiplier inside bursts
    burst_fraction: float = 0.1        # probability of entering a burst state
    burst_persistence: float = 0.9     # probability of staying in current state
    # who asks
    zipf_exponent: float = 1.1         # popularity skew across warm users (> 1)
    cold_fraction: float = 0.1         # fraction of requests from cold users
    # what they ask for
    top_k_choices: Tuple[int, ...] = (5, 10)
    exclude_purchased_fraction: float = 0.25
    tight_budget_fraction: float = 0.15
    tight_budget_ms: float = 1.0
    allow_stale_probability: float = 0.5

    def validate(self) -> None:
        # Every numeric comparison below is guarded by an explicit isfinite
        # check first: ``nan <= 0`` is False, so without it a NaN rate would
        # sail through and surface later as numpy warnings mid-generation.
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(f"arrival must be one of {ARRIVAL_PROCESSES}")
        for name in ("mean_qps", "burst_factor", "burst_fraction",
                     "burst_persistence", "zipf_exponent", "cold_fraction",
                     "exclude_purchased_fraction", "tight_budget_fraction",
                     "tight_budget_ms", "allow_stale_probability"):
            if not math.isfinite(getattr(self, name)):
                raise ValueError(f"{name} must be finite, "
                                 f"got {getattr(self, name)!r}")
        if self.mean_qps <= 0:
            raise ValueError("mean_qps must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be at least 1")
        if not (0.0 <= self.burst_fraction <= 1.0):
            raise ValueError("burst_fraction must lie in [0, 1]")
        if not (0.0 <= self.burst_persistence < 1.0):
            raise ValueError("burst_persistence must lie in [0, 1)")
        if self.zipf_exponent <= 0.0:
            raise ValueError("zipf_exponent must be positive")
        if not (0.0 <= self.cold_fraction <= 1.0):
            raise ValueError("cold_fraction must lie in [0, 1]")
        if not self.top_k_choices or any(k <= 0 for k in self.top_k_choices):
            raise ValueError("top_k_choices must be non-empty positive ints")
        for name in ("exclude_purchased_fraction", "tight_budget_fraction",
                     "allow_stale_probability"):
            if not (0.0 <= getattr(self, name) <= 1.0):
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.tight_budget_ms < 0:
            raise ValueError("tight_budget_ms must be non-negative")


@dataclass
class Workload:
    """A replayable request trace plus the config that generated it."""

    config: WorkloadConfig
    requests: Tuple[SimulatedRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[SimulatedRequest]:
        return iter(self.requests)

    @property
    def duration_s(self) -> float:
        """Trace-time span from first to last arrival."""
        if not self.requests:
            return float("nan")  # an empty trace has no span to measure
        return self.requests[-1].arrival_s - self.requests[0].arrival_s

    def distinct_users(self) -> int:
        return len({request.user_entity for request in self.requests})

    # ------------------------------------------------------------------ #
    # serialisation & identity
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "config": asdict(self.config),
            "requests": [request.to_dict() for request in self.requests],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Workload":
        unknown = payload.keys() - {"config", "requests"}
        if unknown:
            raise WorkloadSchemaError(
                f"workload payload has unknown keys {sorted(unknown)} "
                f"(schema: ['config', 'requests'])")
        missing = {"config", "requests"} - payload.keys()
        if missing:
            raise WorkloadSchemaError(
                f"workload payload is missing keys {sorted(missing)}")
        config_payload = dict(payload["config"])
        known_fields = {spec.name for spec in fields(WorkloadConfig)}
        unknown = config_payload.keys() - known_fields
        if unknown:
            raise WorkloadSchemaError(
                f"workload config has unknown keys {sorted(unknown)} "
                f"(schema: {sorted(known_fields)})")
        if "top_k_choices" in config_payload:
            config_payload["top_k_choices"] = tuple(config_payload["top_k_choices"])
        config = WorkloadConfig(**config_payload)
        try:
            config.validate()
        except ValueError as error:
            raise WorkloadSchemaError(
                f"workload config is invalid: {error}") from error
        return cls(
            config=config,
            requests=tuple(SimulatedRequest.from_dict(entry)
                           for entry in payload["requests"]),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        # repr-roundtripped floats keep the JSON canonical per trace.
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Workload":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def signature(self) -> str:
        """SHA-256 over the canonical serialisation — trace identity in one line."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# generation
# --------------------------------------------------------------------------- #
def _inter_arrivals(config: WorkloadConfig, rng: np.random.Generator) -> np.ndarray:
    """Per-request inter-arrival gaps (seconds) for the configured process."""
    n = config.num_requests
    base_gap = 1.0 / config.mean_qps
    if config.arrival == "uniform":
        return np.full(n, base_gap)
    if config.arrival == "poisson":
        return rng.exponential(base_gap, size=n)
    # bursty: a two-state modulated Poisson process.  The state chain persists
    # with ``burst_persistence`` and re-samples the burst state with
    # probability ``burst_fraction`` otherwise, so bursts arrive in runs.
    gaps = np.empty(n)
    in_burst = False
    burst_gap = base_gap / config.burst_factor
    for i in range(n):
        if rng.random() >= config.burst_persistence:
            in_burst = rng.random() < config.burst_fraction
        gaps[i] = rng.exponential(burst_gap if in_burst else base_gap)
    return gaps


def _zipf_weights(count: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_workload(population: UserPopulation, config: WorkloadConfig,
                      graph: Optional[KnowledgeGraph] = None) -> Workload:
    """Generate a deterministic trace over ``population`` according to ``config``.

    ``graph`` is only needed when ``exclude_purchased_fraction > 0``: the
    excluded sets are the user's purchase edges (the standard "don't recommend
    what I already own" constraint).
    """
    config.validate()
    rng = np.random.default_rng(config.seed)

    warm = np.array(population.warm_users, dtype=np.int64)
    cold = np.array(population.cold_users, dtype=np.int64)
    if warm.size:
        # A seeded permutation assigns Zipf ranks, so which users are popular
        # is itself part of the seed.
        warm = warm[rng.permutation(warm.size)]
        warm_weights = _zipf_weights(warm.size, config.zipf_exponent)
    cold_fraction = config.cold_fraction if cold.size else 0.0
    if not warm.size:
        cold_fraction = 1.0

    arrivals = np.cumsum(_inter_arrivals(config, rng))
    top_k_choices = np.array(config.top_k_choices, dtype=np.int64)

    requests: List[SimulatedRequest] = []
    for index in range(config.num_requests):
        is_cold = rng.random() < cold_fraction
        if is_cold:
            user = int(cold[rng.integers(cold.size)])
        else:
            user = int(warm[rng.choice(warm.size, p=warm_weights)])
        top_k = int(top_k_choices[rng.integers(top_k_choices.size)])

        exclude: Tuple[int, ...] = ()
        if (not is_cold and graph is not None
                and rng.random() < config.exclude_purchased_fraction):
            exclude = tuple(sorted(graph.purchased_items(user)))

        budget: Optional[float] = None
        allow_stale = True
        if rng.random() < config.tight_budget_fraction:
            budget = config.tight_budget_ms
            allow_stale = bool(rng.random() < config.allow_stale_probability)

        requests.append(SimulatedRequest(
            index=index, arrival_s=float(arrivals[index]), user_entity=user,
            top_k=top_k, exclude_items=exclude, latency_budget_ms=budget,
            allow_stale=allow_stale))
    return Workload(config=config, requests=tuple(requests))
