"""Replay a workload trace through a recommendation service.

The :class:`ReplayDriver` feeds a :class:`~repro.simulate.workload.Workload`
through anything with the :class:`repro.serving.RecommendationService` facade
(``serve_many`` over ``RecommendationRequest``\\ s) and collects one
:class:`RequestRecord` per request — tier, provenance, cache hit, latency and
the returned items — which the oracles and the report layer consume.

Two replay modes:

* **open-loop** (default) — requests are dispatched in arrival order and
  grouped into micro-batches by trace time: every request arriving within
  ``batch_window_s`` of the batch's first request joins its ``serve_many``
  call.  Bursty arrival processes therefore produce large batches and quiet
  periods produce singletons, exercising the micro-batcher the way wall-clock
  traffic would — without any real sleeping, so replays stay fast and
  deterministic.
* **closed-loop** — arrival times are ignored and requests are driven
  back-to-back in fixed-size batches, measuring sustainable throughput.

Replays are bit-for-bit deterministic **when run in virtual time**: construct
the service with a :class:`TraceClock` and hand the same clock to the driver,
which advances it to each batch's arrival time.  Cache TTL and stale dynamics
then follow trace time instead of wall time, per-request latencies read as
0 ms (virtual time measures behaviour, not speed), and the tier chooser's
full-search cost estimate stays pinned at its configured prior
(``ServingConfig.assumed_full_search_ms`` — zero-latency observations are
discarded), so budget-based tier routing is a pure function of the trace and
the same seed reproduces the identical result trace (checkable via
:meth:`ReplayResult.signature`).  Without a trace clock the service measures
real latencies — useful for throughput reports, but tier choices near the
latency-budget boundary may then legitimately differ between runs.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..rl.trajectory import RecommendationPath
from ..serving.fallback import ServingTier
from .workload import SimulatedRequest, Workload


class TraceClock:
    """A manually advanced monotonic clock for virtual-time replays.

    Inject one instance into both the service (``clock=trace_clock``) and the
    :class:`ReplayDriver`; the driver then moves time to each batch's arrival
    timestamp and the whole serving stack (cache TTLs, telemetry, the
    full-search cost estimator) experiences the trace's timeline.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a monotonic clock cannot move backwards")
        self.now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Move to ``timestamp`` if it is in the future (never backwards)."""
        self.now = max(self.now, float(timestamp))


@dataclass(frozen=True)
class RequestRecord:
    """Everything observed about one replayed request."""

    index: int
    arrival_s: float
    user_entity: int
    top_k: int
    exclude_items: Tuple[int, ...]
    latency_budget_ms: Optional[float]
    allow_stale: bool
    tier: ServingTier
    source_tier: ServingTier
    cache_hit: bool
    latency_ms: float
    items: Tuple[int, ...]
    paths: Tuple[RecommendationPath, ...] = ()
    #: The answer was degraded by cluster backpressure (admission shedding),
    #: not by the request's own latency budget.
    shed: bool = False
    #: Artifact generation whose tables computed the payload (live updates);
    #: 0 for single-generation services.
    generation: int = 0
    #: Fault provenance copied from the response (``None`` on the fault-free
    #: path): which defense degraded this answer — see
    #: :class:`repro.serving.RecommendationResponse`.
    fault: Optional[str] = None

    def cache_key(self) -> Tuple[int, int, frozenset]:
        """The result-cache key this request mapped to."""
        return (self.user_entity, self.top_k, frozenset(self.exclude_items))


@dataclass
class ReplayConfig:
    """How a trace is driven through the service."""

    mode: str = "open"            # "open" honours arrival times, "closed" doesn't
    batch_window_s: float = 0.05  # open-loop micro-batch window (trace time)
    batch_size: int = 32          # closed-loop batch size
    max_batch_size: int = 256     # open-loop safety bound per serve_many call
    record_paths: bool = True     # keep explanation paths on the records

    def validate(self) -> None:
        if self.mode not in ("open", "closed"):
            raise ValueError("mode must be 'open' or 'closed'")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be non-negative")
        if self.batch_size <= 0 or self.max_batch_size <= 0:
            raise ValueError("batch sizes must be positive")


@dataclass
class ReplayResult:
    """The records of one replay plus wall-clock bookkeeping."""

    workload: Workload
    replay_config: ReplayConfig
    records: List[RequestRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ #
    # aggregates (the report layer builds on these)
    # ------------------------------------------------------------------ #
    def tier_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.tier.value] = counts.get(record.tier.value, 0) + 1
        return counts

    def source_tier_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.source_tier.value] = counts.get(record.source_tier.value, 0) + 1
        return counts

    def cache_hit_rate(self) -> float:
        """Hit fraction over the replayed requests; NaN for an empty replay."""
        if not self.records:
            return float("nan")
        return sum(record.cache_hit for record in self.records) / len(self.records)

    def latencies_ms(self) -> List[float]:
        return [record.latency_ms for record in self.records]

    def replay_qps(self) -> float:
        """Served requests per wall-clock second; NaN when undefined.

        A replay with no records, or one whose wall-clock span is zero or
        near-zero (single-request traces, mocked clocks), has no meaningful
        rate — returning 0.0 would read as "infinitely slow" and dividing by
        a near-zero span as "infinitely fast", so the answer is NaN (the
        repository-wide "NaN not 0.0" convention for undefined measurements).
        """
        if not self.records or self.wall_seconds <= 0.0:
            return float("nan")
        return len(self.records) / self.wall_seconds

    def signature(self) -> str:
        """Hash of the *served results* (items, tiers, hits) — latency excluded.

        Two replays of the same workload against identically-initialised
        services must produce the same signature; wall-clock latency is the
        only non-deterministic observation and is deliberately left out.
        """
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(repr((record.index, record.user_entity, record.top_k,
                                record.exclude_items, record.tier.value,
                                record.source_tier.value, record.cache_hit,
                                record.shed, record.generation, record.fault,
                                record.items)).encode("utf-8"))
        return digest.hexdigest()


class ReplayDriver:
    """Drives workload traces through one service instance.

    ``clock`` enables virtual-time replay: pass the :class:`TraceClock` the
    service was constructed with and the driver advances it to each batch's
    arrival time before serving, making the replay deterministic.

    ``wall_timer`` measures the replay's real elapsed time for the throughput
    report (``ReplayResult.wall_seconds``); it is injected — defaulting to
    ``time.perf_counter`` — so the driver itself never reads the wall clock
    directly and tests can substitute a deterministic timer.
    """

    def __init__(self, service, clock: Optional[TraceClock] = None,
                 wall_timer: Callable[[], float] = time.perf_counter) -> None:
        if not (hasattr(service, "serve_many") or hasattr(service, "serve")):
            raise TypeError("service must expose serve_many() or serve()")
        self.service = service
        self.clock = clock
        self.wall_timer = wall_timer

    # ------------------------------------------------------------------ #
    def replay(self, workload: Workload,
               config: Optional[ReplayConfig] = None) -> ReplayResult:
        """Feed the whole trace through the service and collect records."""
        config = config or ReplayConfig()
        config.validate()
        result = ReplayResult(workload=workload, replay_config=config)
        start = self.wall_timer()
        for batch in self._batches(workload, config):
            if self.clock is not None:
                self.clock.advance_to(batch[0].arrival_s)
            responses = self._serve_batch([entry.to_request() for entry in batch])
            for entry, response in zip(batch, responses):
                result.records.append(RequestRecord(
                    index=entry.index,
                    arrival_s=entry.arrival_s,
                    user_entity=entry.user_entity,
                    top_k=entry.top_k,
                    exclude_items=entry.exclude_items,
                    latency_budget_ms=entry.latency_budget_ms,
                    allow_stale=entry.allow_stale,
                    tier=response.tier,
                    source_tier=response.source_tier,
                    cache_hit=response.cache_hit,
                    latency_ms=response.latency_ms,
                    items=tuple(response.items),
                    paths=tuple(response.paths) if config.record_paths else (),
                    shed=getattr(response, "shed", False),
                    generation=getattr(response, "generation", 0),
                    fault=getattr(response, "fault", None),
                ))
        result.wall_seconds = self.wall_timer() - start
        return result

    # ------------------------------------------------------------------ #
    def _serve_batch(self, requests: Sequence) -> Sequence:
        if hasattr(self.service, "serve_many"):
            return self.service.serve_many(requests)
        return [self.service.serve(request) for request in requests]

    @staticmethod
    def _batches(workload: Workload,
                 config: ReplayConfig) -> Iterable[List[SimulatedRequest]]:
        """Group the trace into serve_many batches per the replay mode."""
        if config.mode == "closed":
            entries = list(workload)
            for offset in range(0, len(entries), config.batch_size):
                yield entries[offset:offset + config.batch_size]
            return
        batch: List[SimulatedRequest] = []
        window_start = 0.0
        for entry in workload:
            if batch and (entry.arrival_s - window_start > config.batch_window_s
                          or len(batch) >= config.max_batch_size):
                yield batch
                batch = []
            if not batch:
                window_start = entry.arrival_s
            batch.append(entry)
        if batch:
            yield batch
