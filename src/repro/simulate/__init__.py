"""Deterministic traffic simulation and load replay for the serving stack.

The package turns "does the serving stack survive load?" into a scripted,
seeded experiment:

* :mod:`~repro.simulate.workload` — seeded workload generation: Zipf-skewed
  user popularity, cold-start fractions and uniform/Poisson/bursty arrival
  processes, serialised as replayable :class:`Workload` traces with a content
  ``signature()`` for determinism checks.
* :mod:`~repro.simulate.replay` — the :class:`ReplayDriver` feeds a trace
  through a :class:`repro.serving.RecommendationService` (open- or
  closed-loop) and collects per-request :class:`RequestRecord`\\ s.
* :mod:`~repro.simulate.oracles` — correctness oracles replaying served
  answers against direct ``PathRecommender`` searches (exact for full-search
  payloads, relaxed validity invariants for the fallback tiers).
* :mod:`~repro.simulate.report` — summary + text report built on the
  existing serving telemetry types.

Typical use::

    population = UserPopulation.from_graph(service.graph)
    workload = generate_workload(population, WorkloadConfig(seed=7), service.graph)
    result = ReplayDriver(service).replay(workload)
    reports = run_oracles(service, result.records)
    print(render_report(summarize(result, reports)))
"""

from .oracles import (
    CrossGenerationOracle,
    FallbackValidityOracle,
    FaultToleranceOracle,
    FullSearchOracle,
    OracleFinding,
    OracleReport,
    ScalingOracle,
    StaleConsistencyOracle,
    run_autoscale_oracles,
    run_fault_oracles,
    run_live_oracles,
    run_oracles,
)
from .replay import ReplayConfig, ReplayDriver, ReplayResult, RequestRecord, TraceClock
from .report import render_report, replay_telemetry, summarize
from .workload import (
    ARRIVAL_PROCESSES,
    SimulatedRequest,
    UserPopulation,
    Workload,
    WorkloadConfig,
    WorkloadSchemaError,
    generate_workload,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "CrossGenerationOracle",
    "FallbackValidityOracle",
    "FaultToleranceOracle",
    "FullSearchOracle",
    "OracleFinding",
    "OracleReport",
    "ReplayConfig",
    "ReplayDriver",
    "ReplayResult",
    "RequestRecord",
    "ScalingOracle",
    "SimulatedRequest",
    "StaleConsistencyOracle",
    "TraceClock",
    "UserPopulation",
    "Workload",
    "WorkloadConfig",
    "WorkloadSchemaError",
    "generate_workload",
    "render_report",
    "replay_telemetry",
    "run_autoscale_oracles",
    "run_fault_oracles",
    "run_live_oracles",
    "run_oracles",
    "summarize",
]
